"""Integer linear program model.

An :class:`IlpModel` holds integer (or continuous) variables with bounds, a
set of linear constraints and a linear objective.  The PaQL translator builds
one of these per package (sub)query; the solvers in this package consume it.

The model is deliberately solver-agnostic: it can be exported to the dense
matrix form used by the LP backend, or to the standard ``A_ub/A_eq`` form of
:func:`scipy.optimize.linprog`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SolverError


class ConstraintSense(enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "="


class ObjectiveSense(enum.Enum):
    """Optimisation direction."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"

    def better(self, a: float, b: float) -> bool:
        """Whether objective value ``a`` is strictly better than ``b``."""
        return a < b if self is ObjectiveSense.MINIMIZE else a > b

    @property
    def worst_value(self) -> float:
        return float("inf") if self is ObjectiveSense.MINIMIZE else float("-inf")


@dataclass
class Variable:
    """A decision variable.

    Attributes:
        name: Unique variable name within the model.
        lower: Lower bound (>= 0 for package multiplicities).
        upper: Upper bound; ``None`` means unbounded above.
        is_integer: Whether the variable is integrality-constrained.
    """

    name: str
    lower: float = 0.0
    upper: float | None = None
    is_integer: bool = True
    index: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.upper is not None and self.upper < self.lower:
            raise SolverError(
                f"variable {self.name!r}: upper bound {self.upper} < lower bound {self.lower}"
            )


@dataclass
class Constraint:
    """A linear constraint ``sum_i coefficients[i] * x_i  <sense>  rhs``.

    Coefficients are stored sparsely as a mapping from variable index to
    coefficient.
    """

    name: str
    coefficients: dict[int, float]
    sense: ConstraintSense
    rhs: float

    def evaluate(self, values: np.ndarray) -> float:
        """Evaluate the left-hand side under a full assignment ``values``."""
        return float(sum(coef * values[idx] for idx, coef in self.coefficients.items()))

    def is_satisfied(self, values: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Whether the constraint holds under ``values`` (with tolerance)."""
        lhs = self.evaluate(values)
        if self.sense is ConstraintSense.LE:
            return lhs <= self.rhs + tolerance
        if self.sense is ConstraintSense.GE:
            return lhs >= self.rhs - tolerance
        return abs(lhs - self.rhs) <= tolerance

    def violation(self, values: np.ndarray) -> float:
        """Return how much the constraint is violated (0 when satisfied)."""
        lhs = self.evaluate(values)
        if self.sense is ConstraintSense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is ConstraintSense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)


@dataclass
class Objective:
    """A linear objective ``optimise sum_i coefficients[i] * x_i``."""

    sense: ObjectiveSense
    coefficients: dict[int, float] = field(default_factory=dict)

    def evaluate(self, values: np.ndarray) -> float:
        return float(sum(coef * values[idx] for idx, coef in self.coefficients.items()))


class IlpModel:
    """A mutable integer linear program.

    Typical usage::

        model = IlpModel(name="example")
        x = [model.add_variable(f"x{i}", upper=1) for i in range(3)]
        model.add_constraint({0: 1.0, 1: 1.0, 2: 1.0}, ConstraintSense.EQ, 2, name="count")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 3.0, 1: 1.0, 2: 2.0})
    """

    def __init__(self, name: str = "ilp"):
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective = Objective(ObjectiveSense.MINIMIZE, {})
        self._names: set[str] = set()
        self._dense_cache: "DenseForm | None" = None

    # -- construction -----------------------------------------------------------

    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float | None = None,
        is_integer: bool = True,
    ) -> Variable:
        """Add a variable and return it (its ``index`` identifies it in constraints)."""
        if name in self._names:
            raise SolverError(f"duplicate variable name: {name!r}")
        variable = Variable(name, lower, upper, is_integer, index=len(self.variables))
        self.variables.append(variable)
        self._names.add(name)
        self._dense_cache = None
        return variable

    def add_constraint(
        self,
        coefficients: Mapping[int, float],
        sense: ConstraintSense,
        rhs: float,
        name: str | None = None,
    ) -> Constraint:
        """Add a linear constraint over variable indices."""
        cleaned = {int(i): float(c) for i, c in coefficients.items() if c != 0.0}
        for idx in cleaned:
            if not 0 <= idx < len(self.variables):
                raise SolverError(f"constraint references unknown variable index {idx}")
        constraint = Constraint(
            name or f"c{len(self.constraints)}", cleaned, sense, float(rhs)
        )
        self.constraints.append(constraint)
        self._dense_cache = None
        return constraint

    def set_objective(self, sense: ObjectiveSense, coefficients: Mapping[int, float]) -> None:
        """Set the linear objective.  An empty mapping yields a feasibility problem."""
        cleaned = {int(i): float(c) for i, c in coefficients.items() if c != 0.0}
        for idx in cleaned:
            if not 0 <= idx < len(self.variables):
                raise SolverError(f"objective references unknown variable index {idx}")
        self.objective = Objective(sense, cleaned)
        self._dense_cache = None

    # -- introspection -----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def is_pure_feasibility(self) -> bool:
        return not self.objective.coefficients

    def variable_by_name(self, name: str) -> Variable:
        for variable in self.variables:
            if variable.name == name:
                return variable
        raise SolverError(f"variable {name!r} not found")

    def objective_value(self, values: np.ndarray) -> float:
        """Evaluate the objective under a full assignment."""
        return self.objective.evaluate(values)

    def check_feasible(self, values: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Whether ``values`` satisfies all bounds, integrality and constraints."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.num_variables,):
            return False
        for variable in self.variables:
            v = values[variable.index]
            if v < variable.lower - tolerance:
                return False
            if variable.upper is not None and v > variable.upper + tolerance:
                return False
            if variable.is_integer and abs(v - round(v)) > tolerance:
                return False
        return all(c.is_satisfied(values, tolerance) for c in self.constraints)

    def total_violation(self, values: np.ndarray) -> float:
        """Sum of constraint violations under ``values`` (useful in tests)."""
        return float(sum(c.violation(values) for c in self.constraints))

    # -- export -------------------------------------------------------------------

    def to_dense(self) -> "DenseForm":
        """Export to dense ``A_ub x <= b_ub``, ``A_eq x = b_eq`` matrices.

        The export is memoized: repeated calls return the same
        :class:`DenseForm` instance until the model is mutated through
        :meth:`add_variable`, :meth:`add_constraint` or :meth:`set_objective`.
        Callers must treat the returned arrays as read-only (branch-and-bound
        shares them across every node, varying only the bounds).  Code that
        mutates a :class:`Variable` or :class:`Constraint` in place must call
        :meth:`invalidate_dense_cache` afterwards.
        """
        if self._dense_cache is None:
            self._dense_cache = self._build_dense()
        return self._dense_cache

    def invalidate_dense_cache(self) -> None:
        """Drop the memoized dense export (needed after in-place mutation)."""
        self._dense_cache = None

    def _build_dense(self) -> "DenseForm":
        n = self.num_variables
        ub_rows: list[np.ndarray] = []
        ub_rhs: list[float] = []
        eq_rows: list[np.ndarray] = []
        eq_rhs: list[float] = []
        for constraint in self.constraints:
            row = np.zeros(n)
            for idx, coef in constraint.coefficients.items():
                row[idx] = coef
            if constraint.sense is ConstraintSense.LE:
                ub_rows.append(row)
                ub_rhs.append(constraint.rhs)
            elif constraint.sense is ConstraintSense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-constraint.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(constraint.rhs)

        objective = np.zeros(n)
        for idx, coef in self.objective.coefficients.items():
            objective[idx] = coef
        if self.objective.sense is ObjectiveSense.MAXIMIZE:
            objective = -objective

        bounds = [
            (v.lower, v.upper if v.upper is not None else None) for v in self.variables
        ]
        return DenseForm(
            c=objective,
            a_ub=np.array(ub_rows) if ub_rows else np.empty((0, n)),
            b_ub=np.array(ub_rhs),
            a_eq=np.array(eq_rows) if eq_rows else np.empty((0, n)),
            b_eq=np.array(eq_rhs),
            bounds=bounds,
            maximize=self.objective.sense is ObjectiveSense.MAXIMIZE,
        )

    def copy(self) -> "IlpModel":
        """Return a deep copy of the model (constraints and bounds included)."""
        clone = IlpModel(name=self.name)
        for variable in self.variables:
            clone.add_variable(variable.name, variable.lower, variable.upper, variable.is_integer)
        for constraint in self.constraints:
            clone.add_constraint(
                dict(constraint.coefficients), constraint.sense, constraint.rhs, name=constraint.name
            )
        clone.set_objective(self.objective.sense, dict(self.objective.coefficients))
        return clone

    def __repr__(self) -> str:
        return (
            f"IlpModel(name={self.name!r}, variables={self.num_variables}, "
            f"constraints={self.num_constraints}, sense={self.objective.sense.value})"
        )


@dataclass
class DenseForm:
    """Dense matrix export of an :class:`IlpModel` (always a minimisation).

    ``bounds`` is either the list-of-pairs form produced by
    :meth:`IlpModel.to_dense` (``None`` meaning unbounded) or a
    ``(lower_array, upper_array)`` pair using ``±inf`` — the latter is what
    branch-and-bound uses to derive per-node forms without copying the
    matrices (see :meth:`with_bounds`).
    """

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    bounds: "list[tuple[float, float | None]] | tuple[np.ndarray, np.ndarray]"
    maximize: bool

    def objective_from_min(self, min_value: float) -> float:
        """Convert the minimised objective value back to the model's sense."""
        return -min_value if self.maximize else min_value

    def bound_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Bounds as ``(lower, upper)`` float arrays using ``±inf``.

        Always returns fresh arrays: the tuple form aliases bounds that may be
        shared across branch-and-bound nodes, so handing out the live arrays
        would let a caller silently corrupt sibling nodes.
        """
        if isinstance(self.bounds, tuple):
            return self.bounds[0].copy(), self.bounds[1].copy()
        n = len(self.c)
        lower = np.empty(n)
        upper = np.empty(n)
        for j, (low, up) in enumerate(self.bounds):
            lower[j] = -np.inf if low is None else low
            upper[j] = np.inf if up is None else up
        return lower, upper

    def with_bounds(self, lower: np.ndarray, upper: np.ndarray) -> "DenseForm":
        """A view of this form with different variable bounds.

        The objective and constraint arrays are shared, not copied — this is
        the cheap path branch-and-bound uses to materialise a child node.
        """
        return DenseForm(
            c=self.c,
            a_ub=self.a_ub,
            b_ub=self.b_ub,
            a_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=(lower, upper),
            maximize=self.maximize,
        )
