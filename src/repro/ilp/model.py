"""Integer linear program model.

An :class:`IlpModel` holds integer (or continuous) variables with bounds, a
set of linear constraints and a linear objective.  The PaQL translator builds
one of these per package (sub)query; the solvers in this package consume it.

Constraints and the objective store their coefficients as parallel
``indices``/``values`` arrays (coefficient triplets), not Python dicts: a
DIRECT translation of a large relation creates one column per candidate
tuple, and contiguous arrays keep that affordable (a dict entry costs ~10x
the bytes of an array entry) while making evaluation a vectorised dot
product.  The model is deliberately solver-agnostic: :meth:`IlpModel.to_matrix`
exports the sparse-first :class:`~repro.ilp.matrix_form.MatrixForm` IR that
every LP/ILP backend consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SolverError
from repro.ilp.matrix_form import DenseForm, MatrixForm, assemble_matrix, choose_sparse

__all__ = [
    "ConstraintSense",
    "ObjectiveSense",
    "Variable",
    "Constraint",
    "Objective",
    "IlpModel",
    "MatrixForm",
    "DenseForm",
]


class ConstraintSense(enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "="


class ObjectiveSense(enum.Enum):
    """Optimisation direction."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"

    def better(self, a: float, b: float) -> bool:
        """Whether objective value ``a`` is strictly better than ``b``."""
        return a < b if self is ObjectiveSense.MINIMIZE else a > b

    @property
    def worst_value(self) -> float:
        return float("inf") if self is ObjectiveSense.MINIMIZE else float("-inf")


@dataclass
class Variable:
    """A decision variable.

    Attributes:
        name: Unique variable name within the model.
        lower: Lower bound (>= 0 for package multiplicities).
        upper: Upper bound; ``None`` means unbounded above.
        is_integer: Whether the variable is integrality-constrained.
    """

    name: str
    lower: float = 0.0
    upper: float | None = None
    is_integer: bool = True
    index: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.upper is not None and self.upper < self.lower:
            raise SolverError(
                f"variable {self.name!r}: upper bound {self.upper} < lower bound {self.lower}"
            )


def _coefficient_arrays(
    coefficients: Mapping[int, float]
) -> tuple[np.ndarray, np.ndarray]:
    """Convert a coefficient mapping to sorted (indices, values) arrays, dropping zeros."""
    if not coefficients:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    indices = np.fromiter(coefficients.keys(), dtype=np.int64, count=len(coefficients))
    values = np.fromiter(coefficients.values(), dtype=np.float64, count=len(coefficients))
    # Structural zero-dropping: exactly-0.0 marks a non-entry of the sparse
    # triplets (a tolerance would silently drop small real coefficients).
    nonzero = values.astype(bool)
    if not nonzero.all():
        indices, values = indices[nonzero], values[nonzero]
    order = np.argsort(indices, kind="stable")
    return indices[order], values[order]


def _validate_arrays(
    indices: np.ndarray, values: np.ndarray, num_variables: int, what: str
) -> tuple[np.ndarray, np.ndarray]:
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if indices.shape != values.shape:
        raise SolverError(
            f"{what}: indices and values have mismatched lengths "
            f"({len(indices)} vs {len(values)})"
        )
    if indices.size:
        if indices.min() < 0 or indices.max() >= num_variables:
            raise SolverError(f"{what} references an unknown variable index")
        if np.unique(indices).size != indices.size:
            raise SolverError(f"{what} contains duplicate variable indices")
    # Structural zero-dropping, as in _coefficient_arrays.
    nonzero = values.astype(bool)
    if not nonzero.all():
        indices, values = indices[nonzero], values[nonzero]
    return indices, values


class Constraint:
    """A linear constraint ``values · x[indices]  <sense>  rhs``.

    Coefficients are stored as parallel ``indices``/``values`` arrays.  The
    dict view :attr:`coefficients` is materialised lazily for compatibility
    and introspection; hot paths (evaluation, matrix assembly) never touch it.
    """

    __slots__ = ("name", "indices", "values", "sense", "rhs", "_coefficients")

    def __init__(
        self,
        name: str,
        coefficients: Mapping[int, float] | None,
        sense: ConstraintSense,
        rhs: float,
        *,
        indices: np.ndarray | None = None,
        values: np.ndarray | None = None,
    ):
        self.name = name
        if indices is None:
            indices, values = _coefficient_arrays(coefficients or {})
        self.indices = indices
        self.values = values
        self.sense = sense
        self.rhs = float(rhs)
        self._coefficients: dict[int, float] | None = None

    @property
    def coefficients(self) -> dict[int, float]:
        """Mapping view of the coefficients (built lazily, then cached)."""
        if self._coefficients is None:
            self._coefficients = dict(zip(self.indices.tolist(), self.values.tolist()))
        return self._coefficients

    def __getstate__(self) -> dict:
        """Ship the constraint without its lazy dict view.

        ``_coefficients`` duplicates the indices/values arrays as a Python
        dict; inside a pickled :class:`SolveTask` it would roughly double the
        per-constraint payload for state the worker can rebuild lazily.
        """
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_coefficients"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def evaluate(self, values: np.ndarray) -> float:
        """Evaluate the left-hand side under a full assignment ``values``."""
        if not self.indices.size:
            return 0.0
        return float(self.values @ values[self.indices])

    def is_satisfied(self, values: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Whether the constraint holds under ``values`` (with tolerance)."""
        lhs = self.evaluate(values)
        if self.sense is ConstraintSense.LE:
            return lhs <= self.rhs + tolerance
        if self.sense is ConstraintSense.GE:
            return lhs >= self.rhs - tolerance
        return abs(lhs - self.rhs) <= tolerance

    def violation(self, values: np.ndarray) -> float:
        """Return how much the constraint is violated (0 when satisfied)."""
        lhs = self.evaluate(values)
        if self.sense is ConstraintSense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is ConstraintSense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)

    def __repr__(self) -> str:
        return (
            f"Constraint(name={self.name!r}, nnz={self.nnz}, "
            f"sense={self.sense.value!r}, rhs={self.rhs})"
        )


class Objective:
    """A linear objective ``optimise values · x[indices]``."""

    __slots__ = ("sense", "indices", "values", "_coefficients")

    def __init__(
        self,
        sense: ObjectiveSense,
        coefficients: Mapping[int, float] | None = None,
        *,
        indices: np.ndarray | None = None,
        values: np.ndarray | None = None,
    ):
        self.sense = sense
        if indices is None:
            indices, values = _coefficient_arrays(coefficients or {})
        self.indices = indices
        self.values = values
        self._coefficients: dict[int, float] | None = None

    @property
    def coefficients(self) -> dict[int, float]:
        """Mapping view of the coefficients (built lazily, then cached)."""
        if self._coefficients is None:
            self._coefficients = dict(zip(self.indices.tolist(), self.values.tolist()))
        return self._coefficients

    def __getstate__(self) -> dict:
        """Ship the objective without its lazy dict view (see Constraint)."""
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_coefficients"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def evaluate(self, values: np.ndarray) -> float:
        if not self.indices.size:
            return 0.0
        return float(self.values @ values[self.indices])

    def __repr__(self) -> str:
        return f"Objective(sense={self.sense.value!r}, nnz={self.indices.size})"


class IlpModel:
    """A mutable integer linear program.

    Typical usage::

        model = IlpModel(name="example")
        x = [model.add_variable(f"x{i}", upper=1) for i in range(3)]
        model.add_constraint({0: 1.0, 1: 1.0, 2: 1.0}, ConstraintSense.EQ, 2, name="count")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 3.0, 1: 1.0, 2: 2.0})
    """

    def __init__(self, name: str = "ilp"):
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective = Objective(ObjectiveSense.MINIMIZE, {})
        #: Storage override for :meth:`to_matrix`: ``True`` forces CSR,
        #: ``False`` forces dense, ``None`` (default) decides by size/density.
        self.sparse_matrix: bool | None = None
        self._names: dict[str, Variable] = {}
        self._matrix_cache: dict[bool, MatrixForm] = {}
        self._variable_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- construction -----------------------------------------------------------

    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float | None = None,
        is_integer: bool = True,
    ) -> Variable:
        """Add a variable and return it (its ``index`` identifies it in constraints)."""
        if name in self._names:
            raise SolverError(f"duplicate variable name: {name!r}")
        variable = Variable(name, lower, upper, is_integer, index=len(self.variables))
        self.variables.append(variable)
        self._names[name] = variable
        self._invalidate()
        return variable

    def add_constraint(
        self,
        coefficients: Mapping[int, float],
        sense: ConstraintSense,
        rhs: float,
        name: str | None = None,
    ) -> Constraint:
        """Add a linear constraint over variable indices."""
        indices, values = _coefficient_arrays(
            {int(i): float(c) for i, c in coefficients.items()}
        )
        if indices.size and (indices.min() < 0 or indices.max() >= len(self.variables)):
            raise SolverError("constraint references unknown variable index")
        constraint = Constraint(
            name or f"c{len(self.constraints)}",
            None,
            sense,
            float(rhs),
            indices=indices,
            values=values,
        )
        self.constraints.append(constraint)
        self._invalidate()
        return constraint

    def add_constraint_arrays(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        sense: ConstraintSense,
        rhs: float,
        name: str | None = None,
    ) -> Constraint:
        """Add a constraint from parallel coefficient arrays (the fast path).

        ``indices`` must be unique; zero coefficients are dropped.  This is
        how the PaQL translator feeds per-tuple coefficient vectors into the
        model without materialising intermediate dicts.
        """
        indices, values = _validate_arrays(
            indices, values, len(self.variables), f"constraint {name or len(self.constraints)}"
        )
        constraint = Constraint(
            name or f"c{len(self.constraints)}",
            None,
            sense,
            float(rhs),
            indices=indices,
            values=values,
        )
        self.constraints.append(constraint)
        self._invalidate()
        return constraint

    def set_objective(self, sense: ObjectiveSense, coefficients: Mapping[int, float]) -> None:
        """Set the linear objective.  An empty mapping yields a feasibility problem."""
        indices, values = _coefficient_arrays(
            {int(i): float(c) for i, c in coefficients.items()}
        )
        if indices.size and (indices.min() < 0 or indices.max() >= len(self.variables)):
            raise SolverError("objective references unknown variable index")
        self.objective = Objective(sense, None, indices=indices, values=values)
        self._invalidate()

    def set_objective_arrays(
        self, sense: ObjectiveSense, indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Set the objective from parallel coefficient arrays (the fast path)."""
        indices, values = _validate_arrays(indices, values, len(self.variables), "objective")
        self.objective = Objective(sense, None, indices=indices, values=values)
        self._invalidate()

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Ship the model without its memoized matrix export.

        The cached :class:`MatrixForm` (and its form-level working caches)
        is derived, process-local state; a worker that unpickles the model
        re-exports it on demand.  Dropping it keeps solve-task payloads lean
        and guarantees no scratch objects are shared across processes.
        """
        state = self.__dict__.copy()
        state["_matrix_cache"] = {}
        state["_variable_arrays"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._matrix_cache = {}
        self._variable_arrays = None

    # -- introspection -----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def constraint_nnz(self) -> int:
        """Structural non-zeros across all constraints."""
        return sum(c.nnz for c in self.constraints)

    @property
    def is_pure_feasibility(self) -> bool:
        return self.objective.indices.size == 0

    def variable_by_name(self, name: str) -> Variable:
        """O(1) lookup of a variable by its unique name."""
        try:
            return self._names[name]
        except KeyError:
            raise SolverError(f"variable {name!r} not found") from None

    def objective_value(self, values: np.ndarray) -> float:
        """Evaluate the objective under a full assignment."""
        return self.objective.evaluate(values)

    def bound_and_integrality_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(lower, upper, is_integer)`` arrays over all variables (memoized).

        ``upper`` uses ``+inf`` for unbounded variables.  The arrays are
        shared — treat them as read-only.
        """
        if self._variable_arrays is None:
            n = len(self.variables)
            lower = np.empty(n)
            upper = np.empty(n)
            is_integer = np.empty(n, dtype=bool)
            for j, variable in enumerate(self.variables):
                lower[j] = variable.lower
                upper[j] = np.inf if variable.upper is None else variable.upper
                is_integer[j] = variable.is_integer
            self._variable_arrays = (lower, upper, is_integer)
        return self._variable_arrays

    def check_feasible(self, values: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Whether ``values`` satisfies all bounds, integrality and constraints."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.num_variables,):
            return False
        lower, upper, is_integer = self.bound_and_integrality_arrays()
        if np.any(values < lower - tolerance) or np.any(values > upper + tolerance):
            return False
        if np.any(is_integer & (np.abs(values - np.rint(values)) > tolerance)):
            return False
        return all(c.is_satisfied(values, tolerance) for c in self.constraints)

    def total_violation(self, values: np.ndarray) -> float:
        """Sum of constraint violations under ``values`` (useful in tests)."""
        return float(sum(c.violation(values) for c in self.constraints))

    # -- export -------------------------------------------------------------------

    def to_matrix(self, sparse: bool | None = None) -> MatrixForm:
        """Export to the :class:`MatrixForm` IR (``A_ub x <= b_ub``, ``A_eq x = b_eq``).

        Assembly is O(nnz): per-constraint coefficient arrays are concatenated
        into triplets and handed to the CSR builder (or scattered into a dense
        array for tiny/dense models — see :mod:`repro.ilp.matrix_form` for the
        fallback policy).  ``sparse`` overrides that policy; ``None`` defers to
        :attr:`sparse_matrix` and then to the automatic choice.

        The export is memoized per storage kind: repeated calls return the
        same :class:`MatrixForm` instance until the model is mutated through
        :meth:`add_variable`, :meth:`add_constraint` or :meth:`set_objective`.
        Callers must treat the returned arrays as read-only (branch-and-bound
        shares them across every node, varying only the bounds).  Code that
        mutates a :class:`Variable` or :class:`Constraint` in place must call
        :meth:`invalidate_matrix_cache` afterwards.
        """
        if sparse is None:
            sparse = self.sparse_matrix
        if sparse is None:
            entries = self.num_constraints * self.num_variables
            sparse = choose_sparse(entries, self.constraint_nnz)
        cached = self._matrix_cache.get(sparse)
        if cached is None:
            cached = self._build_matrix(sparse)
            self._matrix_cache[sparse] = cached
        return cached

    def to_dense(self) -> MatrixForm:
        """Backward-compatible alias for :meth:`to_matrix` (automatic storage)."""
        return self.to_matrix()

    def invalidate_matrix_cache(self) -> None:
        """Drop the memoized matrix export (needed after in-place mutation)."""
        self._matrix_cache = {}
        self._variable_arrays = None

    # PR 1 name, kept for compatibility.
    invalidate_dense_cache = invalidate_matrix_cache

    def _invalidate(self) -> None:
        self.invalidate_matrix_cache()

    def _build_matrix(self, make_sparse: bool) -> MatrixForm:
        n = self.num_variables
        ub_cols: list[np.ndarray] = []
        ub_data: list[np.ndarray] = []
        ub_rhs: list[float] = []
        eq_cols: list[np.ndarray] = []
        eq_data: list[np.ndarray] = []
        eq_rhs: list[float] = []
        for constraint in self.constraints:
            if constraint.sense is ConstraintSense.LE:
                ub_cols.append(constraint.indices)
                ub_data.append(constraint.values)
                ub_rhs.append(constraint.rhs)
            elif constraint.sense is ConstraintSense.GE:
                ub_cols.append(constraint.indices)
                ub_data.append(-constraint.values)
                ub_rhs.append(-constraint.rhs)
            else:
                eq_cols.append(constraint.indices)
                eq_data.append(constraint.values)
                eq_rhs.append(constraint.rhs)

        def build(cols: list[np.ndarray], data: list[np.ndarray]):
            num_rows = len(cols)
            if not num_rows:
                return assemble_matrix(
                    0, n,
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0),
                    make_sparse,
                )
            lengths = [len(c) for c in cols]
            row_ids = np.repeat(np.arange(num_rows, dtype=np.int64), lengths)
            col_ids = np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
            values = np.concatenate(data) if data else np.empty(0)
            return assemble_matrix(num_rows, n, row_ids, col_ids, values, make_sparse)

        objective = np.zeros(n)
        objective[self.objective.indices] = self.objective.values
        if self.objective.sense is ObjectiveSense.MAXIMIZE:
            objective = -objective

        bounds = [
            (v.lower, v.upper if v.upper is not None else None) for v in self.variables
        ]
        return MatrixForm(
            c=objective,
            a_ub=build(ub_cols, ub_data),
            b_ub=np.array(ub_rhs),
            a_eq=build(eq_cols, eq_data),
            b_eq=np.array(eq_rhs),
            bounds=bounds,
            maximize=self.objective.sense is ObjectiveSense.MAXIMIZE,
        )

    def copy(self) -> "IlpModel":
        """Return a deep copy of the model (constraints and bounds included)."""
        clone = IlpModel(name=self.name)
        for variable in self.variables:
            clone.add_variable(variable.name, variable.lower, variable.upper, variable.is_integer)
        for constraint in self.constraints:
            clone.add_constraint_arrays(
                constraint.indices.copy(),
                constraint.values.copy(),
                constraint.sense,
                constraint.rhs,
                name=constraint.name,
            )
        clone.set_objective_arrays(
            self.objective.sense,
            self.objective.indices.copy(),
            self.objective.values.copy(),
        )
        return clone

    def __repr__(self) -> str:
        return (
            f"IlpModel(name={self.name!r}, variables={self.num_variables}, "
            f"constraints={self.num_constraints}, sense={self.objective.sense.value})"
        )
