"""Solver status codes, statistics and solution containers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.ilp.simplex import SimplexBasis


class SolverStatus(enum.Enum):
    """Outcome of an LP or ILP solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # A feasible incumbent exists but optimality was not proven.
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    CAPACITY_EXCEEDED = "capacity_exceeded"  # Problem too large for configured limits.
    TIME_LIMIT = "time_limit"
    NUMERICAL_ERROR = "numerical_error"      # Solver state went singular / non-finite.
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """Whether a variable assignment accompanies this status."""
        return self in (SolverStatus.OPTIMAL, SolverStatus.FEASIBLE)

    @property
    def is_failure(self) -> bool:
        """Whether the solve failed for a non-infeasibility reason."""
        return self in (
            SolverStatus.CAPACITY_EXCEEDED,
            SolverStatus.TIME_LIMIT,
            SolverStatus.NUMERICAL_ERROR,
            SolverStatus.ERROR,
        )


@dataclass
class SolveStats:
    """Statistics accumulated during a solve.

    ``simplex_iterations`` and ``warm_start_hits`` are only populated by the
    SIMPLEX LP backend: the former counts pivots/bound-flips summed over all
    LP solves, the latter counts LP solves that successfully reoptimised from
    a parent basis instead of starting cold.  Their ratio to ``lp_solves``
    is what the benchmark harness uses to prove basis reuse is working.

    ``vars_fixed`` / ``rows_removed`` / ``presolve_ms`` describe the root
    presolve reduction of a branch-and-bound solve (zero when presolve is
    disabled or achieved nothing); ``numerical_retries`` counts node LPs that
    came back :attr:`SolverStatus.NUMERICAL_ERROR` from a warm start and were
    retried cold.

    The factorised-basis counters are SIMPLEX-only: ``refactorizations``
    counts fresh LU factorisations summed over all LP solves, ``eta_peak`` is
    the longest eta file any solve reached between refactorisations, and
    ``pricing_rule`` records the resolved entering-variable rule (with
    ``"+bland"`` appended when the anti-cycling fallback ever engaged).
    ``objective_cutoffs`` counts branch-and-bound nodes whose presolve used
    the incumbent objective as a dual bound; ``coefficients_tightened``
    counts ``<=``-row coefficients strengthened against integral columns.
    """

    nodes_explored: int = 0
    lp_solves: int = 0
    incumbent_updates: int = 0
    best_bound: float = float("nan")
    wall_time_seconds: float = 0.0
    gap: float = float("nan")
    simplex_iterations: int = 0
    warm_start_hits: int = 0
    vars_fixed: int = 0
    rows_removed: int = 0
    presolve_ms: float = 0.0
    numerical_retries: int = 0
    refactorizations: int = 0
    eta_peak: int = 0
    pricing_rule: str = ""
    objective_cutoffs: int = 0
    coefficients_tightened: int = 0

    @property
    def warm_start_rate(self) -> float:
        """Fraction of LP solves that reused a parent basis (0.0 when none ran)."""
        if self.lp_solves == 0:
            return 0.0
        return self.warm_start_hits / self.lp_solves


@dataclass
class Solution:
    """Result of solving an :class:`~repro.ilp.model.IlpModel`.

    Attributes:
        status: Solve outcome.
        values: Variable assignment (empty array when no solution exists).
        objective_value: Objective under ``values`` in the model's own sense
            (NaN when no solution exists).
        stats: Solver statistics.
        root_basis: Optimal simplex basis of the root LP relaxation (a
            :class:`~repro.ilp.simplex.SimplexBasis`), exported by
            branch-and-bound on SIMPLEX-backend solves.  A caller about to
            solve a *related* model of the same shape (e.g. a SKETCHREFINE
            backtracking retry of the same group) can pass it back as a warm
            start.  ``None`` for other backends/solvers.
    """

    status: SolverStatus
    values: np.ndarray = field(default_factory=lambda: np.empty(0))
    objective_value: float = float("nan")
    stats: SolveStats = field(default_factory=SolveStats)
    root_basis: "SimplexBasis | None" = None

    @property
    def is_optimal(self) -> bool:
        return self.status is SolverStatus.OPTIMAL

    @property
    def has_solution(self) -> bool:
        return self.status.has_solution

    def value_of(self, index: int) -> float:
        """Return the value of variable ``index`` (0.0 when no solution)."""
        if not self.has_solution or index >= len(self.values):
            return 0.0
        return float(self.values[index])

    def integral_values(self) -> np.ndarray:
        """Return the assignment rounded to the nearest integers."""
        return np.rint(self.values).astype(np.int64)

    @classmethod
    def infeasible(cls, stats: SolveStats | None = None) -> "Solution":
        return cls(SolverStatus.INFEASIBLE, stats=stats or SolveStats())

    @classmethod
    def failure(cls, status: SolverStatus, stats: SolveStats | None = None) -> "Solution":
        return cls(status, stats=stats or SolveStats())
