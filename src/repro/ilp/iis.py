"""Irreducible infeasible set (IIS) approximation.

Section 4.4 of the paper proposes "dropping partitioning attributes" as a
mitigation for false infeasibility, guided by the solver's IIS facility: most
commercial solvers can report a minimal set of constraints whose removal makes
the problem feasible.  This module provides that facility for our own solver
with a classic deletion filter:

1. start from the full constraint set (known infeasible),
2. repeatedly try removing one constraint; if the remainder is still
   infeasible, the constraint is redundant for infeasibility and stays
   removed, otherwise it is essential and is kept,
3. what remains is an irreducible infeasible subset.

Feasibility checks are done on the LP relaxation, which is sound for the
package-query constraint structure (integer infeasibility caused purely by
integrality is out of scope, as it is for CPLEX's default IIS as well).
"""

from __future__ import annotations

from repro.ilp.lp_backend import LpBackend, solve_lp
from repro.ilp.model import IlpModel
from repro.ilp.status import SolverStatus


def find_iis(model: IlpModel, lp_backend: LpBackend = LpBackend.HIGHS) -> list[str]:
    """Return the names of an irreducible infeasible subset of constraints.

    Returns an empty list when the model's LP relaxation is actually feasible
    (i.e. there is nothing to explain).
    """
    if _relaxation_feasible(model, lp_backend):
        return []

    keep: list[int] = list(range(model.num_constraints))
    index = 0
    while index < len(keep):
        candidate = keep[:index] + keep[index + 1 :]
        if not _subset_feasible(model, candidate, lp_backend):
            # Still infeasible without this constraint: drop it permanently.
            keep.pop(index)
        else:
            index += 1
    return [model.constraints[i].name for i in keep]


def constraint_columns(model: IlpModel, constraint_names: list[str]) -> set[int]:
    """Return the set of variable indices referenced by the named constraints.

    Used by the false-infeasibility mitigation to decide which partitioning
    attributes participate in the conflicting constraints.
    """
    names = set(constraint_names)
    columns: set[int] = set()
    for constraint in model.constraints:
        if constraint.name in names:
            columns.update(constraint.indices.tolist())
    return columns


def _relaxation_feasible(model: IlpModel, lp_backend: LpBackend) -> bool:
    return solve_lp(model, lp_backend).status is not SolverStatus.INFEASIBLE


def _subset_feasible(model: IlpModel, constraint_indices: list[int], lp_backend: LpBackend) -> bool:
    # Probe models are rebuilt through the coefficient-triplet fast path
    # (sharing the source constraints' index/value arrays), not by
    # materialising per-constraint dicts: the deletion filter builds O(m)
    # probes, so dict round-trips would make it quadratic in nnz.
    subset = IlpModel(name=f"{model.name}_iis_probe")
    for variable in model.variables:
        subset.add_variable(variable.name, variable.lower, variable.upper, variable.is_integer)
    for i in constraint_indices:
        constraint = model.constraints[i]
        subset.add_constraint_arrays(
            constraint.indices, constraint.values, constraint.sense, constraint.rhs,
            name=constraint.name,
        )
    subset.set_objective_arrays(
        model.objective.sense, model.objective.indices, model.objective.values
    )
    return _relaxation_feasible(subset, lp_backend)
