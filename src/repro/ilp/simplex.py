"""A dense two-phase primal simplex solver.

This is a self-contained LP solver used as a fallback / cross-check for the
HiGHS backend.  It handles:

* minimisation of ``c @ x``,
* inequality constraints ``A_ub x <= b_ub`` and equalities ``A_eq x = b_eq``,
* finite lower bounds and optional upper bounds per variable.

Bounds are normalised away (shift to zero lower bound, upper bounds become
rows), then the problem is put in standard equality form with slack variables
and solved with the classic two-phase method using Bland's anti-cycling rule.

It is intentionally simple — dense tableau, O(m·n) pivots — because the
sub-problems SKETCHREFINE sends to it are small.  Large problems should use
the HiGHS backend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

_EPSILON = 1e-9
_MAX_ITERATIONS_FACTOR = 50


class SimplexStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class SimplexResult:
    """Outcome of a dense simplex solve (objective in minimisation sense)."""

    status: SimplexStatus
    x: np.ndarray
    objective: float


def solve_dense_simplex(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds: list[tuple[float, float | None]],
) -> SimplexResult:
    """Minimise ``c @ x`` subject to the given constraints and bounds."""
    c = np.asarray(c, dtype=np.float64)
    n = len(c)
    a_ub = np.asarray(a_ub, dtype=np.float64).reshape(-1, n) if np.size(a_ub) else np.empty((0, n))
    b_ub = np.asarray(b_ub, dtype=np.float64).reshape(-1)
    a_eq = np.asarray(a_eq, dtype=np.float64).reshape(-1, n) if np.size(a_eq) else np.empty((0, n))
    b_eq = np.asarray(b_eq, dtype=np.float64).reshape(-1)

    # Shift variables so every lower bound becomes zero: x = y + lower.
    lowers = np.array([low for low, _ in bounds], dtype=np.float64)
    uppers = [up for _, up in bounds]
    shifted_b_ub = b_ub - a_ub @ lowers if len(b_ub) else b_ub
    shifted_b_eq = b_eq - a_eq @ lowers if len(b_eq) else b_eq
    constant_term = float(c @ lowers)

    # Upper bounds become additional <= rows on the shifted variables.
    extra_rows = []
    extra_rhs = []
    for j, upper in enumerate(uppers):
        if upper is None:
            continue
        row = np.zeros(n)
        row[j] = 1.0
        extra_rows.append(row)
        extra_rhs.append(upper - lowers[j])
    if extra_rows:
        a_ub_full = np.vstack([a_ub, np.array(extra_rows)]) if a_ub.size else np.array(extra_rows)
        b_ub_full = np.concatenate([shifted_b_ub, np.array(extra_rhs)])
    else:
        a_ub_full = a_ub
        b_ub_full = shifted_b_ub

    y, status, objective = _two_phase(c, a_ub_full, b_ub_full, a_eq, shifted_b_eq)
    if status is not SimplexStatus.OPTIMAL:
        return SimplexResult(status, np.empty(0), float("nan"))
    x = y + lowers
    return SimplexResult(SimplexStatus.OPTIMAL, x, objective + constant_term)


def _two_phase(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
) -> tuple[np.ndarray, SimplexStatus, float]:
    """Two-phase simplex on ``min c@y`` with y >= 0."""
    n = len(c)
    num_ub = a_ub.shape[0]
    num_eq = a_eq.shape[0]
    m = num_ub + num_eq

    # Standard form: A y' = b with slacks on the <= rows, b >= 0.
    a = np.zeros((m, n + num_ub))
    b = np.zeros(m)
    if num_ub:
        a[:num_ub, :n] = a_ub
        a[:num_ub, n : n + num_ub] = np.eye(num_ub)
        b[:num_ub] = b_ub
    if num_eq:
        a[num_ub:, :n] = a_eq
        b[num_ub:] = b_eq

    # Make rhs non-negative.
    for i in range(m):
        if b[i] < 0:
            a[i, :] *= -1
            b[i] *= -1

    total_vars = n + num_ub

    # Phase 1: add artificial variables and minimise their sum.
    a_phase1 = np.hstack([a, np.eye(m)])
    c_phase1 = np.concatenate([np.zeros(total_vars), np.ones(m)])
    basis = list(range(total_vars, total_vars + m))
    tableau, basis, status = _simplex_core(a_phase1, b, c_phase1, basis)
    if status is not SimplexStatus.OPTIMAL:
        return np.empty(0), status, float("nan")
    phase1_objective = tableau[-1, -1]
    if phase1_objective > 1e-7:
        return np.empty(0), SimplexStatus.INFEASIBLE, float("nan")

    # Drive artificial variables out of the basis where possible.
    a_current = tableau[:-1, : total_vars + m]
    b_current = tableau[:-1, -1]
    for row, var in enumerate(basis):
        if var < total_vars:
            continue
        pivot_col = next(
            (j for j in range(total_vars) if abs(a_current[row, j]) > _EPSILON), None
        )
        if pivot_col is None:
            continue
        _pivot(tableau, row, pivot_col)
        basis[row] = pivot_col

    # Phase 2: original objective on the (artificial-free) columns.
    a2 = tableau[:-1, :total_vars]
    b2 = tableau[:-1, -1]
    c2 = np.concatenate([c, np.zeros(num_ub)])
    # Rows whose basic variable is still artificial correspond to redundant
    # constraints; they are kept with their (zero-valued) artificial basic
    # variable treated as a zero column in phase 2.
    keep_rows = [i for i, var in enumerate(basis) if var < total_vars]
    if len(keep_rows) < len(basis):
        a2 = a2[keep_rows]
        b2 = b2[keep_rows]
        basis = [basis[i] for i in keep_rows]

    tableau2, basis, status = _simplex_core(a2, b2, c2, basis)
    if status is not SimplexStatus.OPTIMAL:
        return np.empty(0), status, float("nan")

    solution = np.zeros(total_vars)
    for row, var in enumerate(basis):
        if var < total_vars:
            solution[var] = tableau2[row, -1]
    objective = float(c2 @ solution)
    return solution[:n], SimplexStatus.OPTIMAL, objective


def _simplex_core(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, basis: list[int]
) -> tuple[np.ndarray, list[int], SimplexStatus]:
    """Run primal simplex from a given basic feasible solution.

    Returns the final tableau (with the objective row last), the final basis,
    and the status.
    """
    m, n = a.shape
    tableau = np.zeros((m + 1, n + 1))
    tableau[:m, :n] = a
    tableau[:m, -1] = b
    tableau[-1, :n] = c

    # Price out the initial basis so reduced costs are consistent.
    for row, var in enumerate(basis):
        if abs(tableau[-1, var]) > _EPSILON:
            tableau[-1, :] -= tableau[-1, var] * tableau[row, :] / tableau[row, var]

    max_iterations = _MAX_ITERATIONS_FACTOR * (m + n + 1)
    for _ in range(max_iterations):
        reduced_costs = tableau[-1, :n]
        entering = next((j for j in range(n) if reduced_costs[j] < -_EPSILON), None)
        if entering is None:
            # Optimal: flip objective row sign convention (we track -z in the corner).
            tableau[-1, -1] = -tableau[-1, -1]
            return tableau, basis, SimplexStatus.OPTIMAL

        ratios = []
        for i in range(m):
            coef = tableau[i, entering]
            if coef > _EPSILON:
                ratios.append((tableau[i, -1] / coef, basis[i], i))
        if not ratios:
            return tableau, basis, SimplexStatus.UNBOUNDED
        # Bland's rule: smallest ratio, ties broken by smallest basic-variable index.
        ratios.sort(key=lambda item: (item[0], item[1]))
        leaving_row = ratios[0][2]

        _pivot(tableau, leaving_row, entering)
        basis[leaving_row] = entering

    return tableau, basis, SimplexStatus.ITERATION_LIMIT


def _pivot(tableau: np.ndarray, row: int, column: int) -> None:
    """Perform a Gauss-Jordan pivot on (row, column) in place."""
    tableau[row, :] /= tableau[row, column]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, column]) > _EPSILON:
            tableau[i, :] -= tableau[i, column] * tableau[row, :]
