"""A bounded-variable revised simplex solver with warm-start support.

This is a self-contained LP solver used as a fallback / cross-check for the
HiGHS backend.  Unlike the dense tableau method it replaced, it is built for
the workload SKETCHREFINE and branch-and-bound actually generate: *many small
LPs that differ from each other by a single variable bound*.

Five design points make repeated solves cheap:

* **Native bound handling.**  Per-variable lower/upper bounds are represented
  as nonbasic-at-bound statuses (``AT_LOWER`` / ``AT_UPPER``), not as extra
  constraint rows.  A 0/1-multiplicity package query with ``m`` global
  constraints works with an ``m × m`` basis instead of an ``(m + n) × (m + n)``
  tableau.
* **One working matrix per problem, not per solve.**  The standard-form
  matrix ``[A | I_slack | I_art]`` is assembled once into a
  :class:`_WorkMatrix` and cached on the :class:`~repro.ilp.matrix_form
  .MatrixForm` (see :func:`solve_form_simplex`), so the thousands of
  bound-only reoptimisations of a branch-and-bound tree share a single
  immutable copy instead of re-filling an ``m × (n + mu + m)`` array per node.
* **Sparse column storage.**  When the model's matrix form is sparse, the
  working matrix is kept in CSC (``data``/``indices``/``indptr``): pricing is
  a CSR transpose mat-vec, and the partial-pricing candidate list gathers
  reduced costs from pre-extracted column triplets.  Dense models keep the
  dense fast path — the representation follows the form's own storage choice.
* **LU-factorised basis.**  The basis is held as a
  :class:`~repro.ilp.factor.BasisFactor` — LU factors (partial pivoting)
  plus an eta file of pivot updates — and every solve against it goes through
  FTRAN/BTRAN (:meth:`~repro.ilp.factor.BasisFactor.ftran` /
  :meth:`~repro.ilp.factor.BasisFactor.btran` /
  :meth:`~repro.ilp.factor.BasisFactor.btran_row`).  Pivots append an O(m)
  eta instead of the dense O(m²) inverse update; refactorisation is periodic
  (:data:`_REFACTOR_INTERVAL` etas) and stability-triggered (an untrustworthy
  eta pivot forces a fresh factorisation).
* **Basis export + dual-simplex reoptimisation over factors.**  Every optimal
  solve returns a :class:`SimplexBasis` which a later solve of a *related*
  problem consumes as a warm start, re-entering through the dual simplex.
  The exported basis carries an O(eta) fork of the final factor, so a child
  solve installs it without refactorising; a deterministic residual check
  (``ftran(B @ 1) ≈ 1``) rejects stale factors, and invalid bases (shape
  mismatch, singular basis matrix, unrestorable dual feasibility) fall back
  to a cold two-phase solve.

**Pricing ladder.**  :class:`PricingRule` selects the entering-variable rule:
Dantzig (most negative reduced cost) for narrow forms, devex reference
weights past :data:`_DEVEX_COLUMN_THRESHOLD` working columns (the ``AUTO``
default resolves between the two), and exact steepest-edge as an opt-in.
Past :data:`_PARTIAL_PRICING_THRESHOLD` columns a partial-pricing candidate
list amortises the full ``v @ A`` sweep: most iterations price only a few
hundred promising columns, and a full sweep runs only when the list runs dry
(optimality is still only ever declared off a full sweep).  After a long run
of degenerate pivots the solver switches to Bland's rule — always a full
lowest-index sweep — to guarantee termination.

The cold path is the classic two-phase method in revised form: phase 1
minimises signed artificial infeasibilities, phase 2 the true objective.

The solver handles minimisation of ``c @ x`` subject to ``A_ub x <= b_ub``,
``A_eq x = b_eq`` and per-variable bounds (``None``/``inf`` meaning
unbounded).  Large problems should still use the HiGHS backend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse as sp

from repro.ilp.factor import BasisFactor
from repro.ilp.matrix_form import MatrixForm

_EPSILON = 1e-9
_PIVOT_EPSILON = 1e-10
_FEASIBILITY_TOLERANCE = 1e-7
_RATIO_TIE_TOLERANCE = 1e-10
#: Maximum eta-file length before a periodic refactorisation.
_REFACTOR_INTERVAL = 60
_MAX_ITERATIONS_FACTOR = 50
_DEGENERATE_STREAK_LIMIT = 50

#: AUTO pricing resolves to devex at or past this many working columns.
_DEVEX_COLUMN_THRESHOLD = 2000
#: Partial pricing (candidate list) activates at or past this many columns.
_PARTIAL_PRICING_THRESHOLD = 4096
#: Devex reference weights above this trigger a framework reset.
_DEVEX_WEIGHT_RESET = 1e7
#: How many top-|d| candidates exact steepest-edge FTRANs per iteration.
_STEEPEST_EDGE_PROBES = 8
#: Bases of larger dimension export without a factor fork (the LU alone is
#: m² floats; past this the warm path refactorises instead of carrying it).
_FACTOR_EXPORT_LIMIT = 512

# Per-column statuses.  BASIC columns are listed in ``SimplexBasis.basic``;
# nonbasic columns sit at one of their (finite) bounds, or at zero when FREE.
BASIC = 0
AT_LOWER = 1
AT_UPPER = 2
FREE = 3

_WORK_CACHE_KEY = "simplex_work"


class SimplexStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    #: The factorised basis went singular / non-finite and refactorisation
    #: could not repair it.  Distinct from ITERATION_LIMIT so callers retry
    #: cold instead of treating the solve as a genuine pivot-budget exhaustion.
    NUMERICAL_ERROR = "numerical_error"


class PricingRule(enum.Enum):
    """Entering-variable pricing rule for the primal simplex.

    ``AUTO`` (the default everywhere) resolves per instance: Dantzig below
    :data:`_DEVEX_COLUMN_THRESHOLD` working columns, devex at or above it.
    ``STEEPEST_EDGE`` prices exact steepest-edge ratios over the top
    reduced-cost candidates — the strongest rule per pivot, paying one FTRAN
    per probed candidate.  Bland's anti-cycling rule is not a member: it is a
    termination fallback layered under every rule, never a configuration.
    """

    AUTO = "auto"
    DANTZIG = "dantzig"
    DEVEX = "devex"
    STEEPEST_EDGE = "steepest_edge"


@dataclass
class SimplexBasis:
    """A reusable snapshot of the simplex state at optimality.

    The column space is the solver's internal one: ``num_structural``
    structural columns, then ``num_ub`` slacks (one per ``<=`` row), then
    ``num_ub + num_eq`` artificials (fixed at zero outside phase 1).  A basis
    is only meaningful for a problem with the same constraint matrix shape;
    :meth:`matches` performs that cheap signature check and consumers fall
    back to a cold solve when it fails.

    ``_factor`` optionally carries a fork of the exporting solve's
    :class:`~repro.ilp.factor.BasisFactor` so a warm start in the same
    process skips the O(m³) refactorisation.  It is process-local, derived
    state: pickling drops it (the receiving solve refactorises from
    ``basic``), and installers re-verify it against their own matrix before
    trusting it.
    """

    basic: np.ndarray
    status: np.ndarray
    num_structural: int
    num_ub: int
    num_eq: int
    _factor: BasisFactor | None = field(default=None, repr=False, compare=False)

    def matches(self, num_structural: int, num_ub: int, num_eq: int) -> bool:
        """Whether this basis was exported from a problem of the given shape."""
        return (
            self.num_structural == num_structural
            and self.num_ub == num_ub
            and self.num_eq == num_eq
        )

    def __getstate__(self) -> dict:
        """Ship the basis without its process-local factor fork.

        The LU/eta arrays are cheap to rebuild (one factorisation) and must
        never cross the worker-pool boundary inside a pickled SolveTask.
        """
        state = dict(self.__dict__)
        state["_factor"] = None
        return state


@dataclass
class SimplexResult:
    """Outcome of a simplex solve (objective in minimisation sense).

    Attributes:
        status: Solve outcome.
        x: Structural variable values (empty when no solution).
        objective: ``c @ x`` (NaN when no solution).
        basis: Final basis, exported on OPTIMAL solves for warm-start reuse.
        iterations: Total simplex pivots/flips performed (all phases).
        warm_started: Whether the supplied warm-start basis was actually used
            (False when it was rejected and the solver fell back to cold).
        refactorizations: Fresh LU factorisations computed during the solve
            (periodic, stability-triggered and install-time ones alike).
        eta_peak: Longest eta file reached between refactorisations.
        pricing: Resolved pricing rule that drove the solve (``"devex"``,
            ``"dantzig"``, ...), with ``"+bland"`` appended when the
            anti-cycling fallback engaged at least once.
    """

    status: SimplexStatus
    x: np.ndarray
    objective: float
    basis: SimplexBasis | None = None
    iterations: int = 0
    warm_started: bool = False
    refactorizations: int = 0
    eta_peak: int = 0
    pricing: str = ""


class _WorkMatrix:
    """Standard-form working matrix ``[A | I_slack | I_art]``, built once.

    Immutable after construction and safe to share across solves: branch-and-
    bound nodes differ only in bounds, so they all price and FTRAN against the
    same copy.  ``sparse`` mirrors the storage of the structural input — CSC
    (with a CSR transpose view for pricing) or one dense array.
    """

    __slots__ = (
        "n", "mu", "me", "m", "ncols", "art0", "b", "costs", "sparse",
        "a", "a_csc", "at", "indptr", "indices", "data",
    )

    def __init__(self, c, a_ub, b_ub, a_eq, b_eq):
        c = np.asarray(c, dtype=np.float64)
        n = len(c)
        sparse_input = sp.issparse(a_ub) or sp.issparse(a_eq)
        if not sp.issparse(a_ub):
            a_ub = (
                np.asarray(a_ub, dtype=np.float64).reshape(-1, n)
                if np.size(a_ub)
                else np.empty((0, n))
            )
        if not sp.issparse(a_eq):
            a_eq = (
                np.asarray(a_eq, dtype=np.float64).reshape(-1, n)
                if np.size(a_eq)
                else np.empty((0, n))
            )
        b_ub = np.asarray(b_ub, dtype=np.float64).reshape(-1)
        b_eq = np.asarray(b_eq, dtype=np.float64).reshape(-1)

        mu, me = a_ub.shape[0], a_eq.shape[0]
        m = mu + me
        ncols = n + mu + m

        self.n, self.mu, self.me, self.m, self.ncols = n, mu, me, m, ncols
        self.art0 = n + mu
        self.b = np.concatenate([b_ub, b_eq])
        self.costs = np.zeros(ncols)
        self.costs[:n] = c
        self.sparse = bool(sparse_input and m)

        if self.sparse:
            structural = sp.vstack(
                [sp.csr_matrix(a_ub), sp.csr_matrix(a_eq)], format="csr"
            )
            slack = sp.vstack([sp.identity(mu, format="csr"), sp.csr_matrix((me, mu))])
            art = sp.identity(m, format="csr")
            a_csc = sp.hstack([structural, slack, art], format="csc")
            a_csc.sort_indices()
            self.a = None
            self.a_csc = a_csc
            self.at = a_csc.T.tocsr()
            self.indptr = a_csc.indptr
            self.indices = a_csc.indices
            self.data = a_csc.data
        else:
            work = np.zeros((m, ncols))
            if sp.issparse(a_ub):
                a_ub = a_ub.toarray()
            if sp.issparse(a_eq):
                a_eq = a_eq.toarray()
            if mu:
                work[:mu, :n] = a_ub
                work[:mu, n : n + mu] = np.eye(mu)
            if me:
                work[mu:, :n] = a_eq
            if m:
                work[:, n + mu :] = np.eye(m)
            self.a = work
            self.a_csc = None
            self.at = None
            self.indptr = None
            self.indices = None
            self.data = None


def solve_dense_simplex(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds,
    warm_start: SimplexBasis | None = None,
    pricing: PricingRule = PricingRule.AUTO,
) -> SimplexResult:
    """Minimise ``c @ x`` subject to the given constraints and bounds.

    ``a_ub``/``a_eq`` may be dense arrays or ``scipy.sparse`` matrices.
    ``bounds`` is either a list of ``(lower, upper)`` pairs (``None`` meaning
    unbounded) or a ``(lower_array, upper_array)`` pair using ``±inf``.
    ``warm_start`` optionally reuses a basis from a related earlier solve.
    Callers solving many related problems over the same matrix should prefer
    :func:`solve_form_simplex`, which assembles the working matrix only once.
    """
    work = _WorkMatrix(c, a_ub, b_ub, a_eq, b_eq)
    return _BoundedRevisedSimplex(work, bounds, pricing).solve(warm_start)


def solve_form_simplex(
    form: MatrixForm,
    warm_start: SimplexBasis | None = None,
    pricing: PricingRule = PricingRule.AUTO,
) -> SimplexResult:
    """Solve a :class:`MatrixForm` LP, reusing its cached working matrix.

    The assembled :class:`_WorkMatrix` is memoized in ``form.cache``, which
    every :meth:`~repro.ilp.matrix_form.MatrixForm.with_bounds` view shares —
    so a whole branch-and-bound tree pays the standard-form assembly exactly
    once.
    """
    work = form.cache.get(_WORK_CACHE_KEY)
    if work is None:
        work = _WorkMatrix(form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq)
        form.cache[_WORK_CACHE_KEY] = work
    return _BoundedRevisedSimplex(work, form.bounds, pricing).solve(warm_start)


def _normalise_bounds(bounds, n: int) -> tuple[np.ndarray, np.ndarray]:
    if (
        isinstance(bounds, tuple)
        and len(bounds) == 2
        and isinstance(bounds[0], np.ndarray)
    ):
        lower = np.asarray(bounds[0], dtype=np.float64).copy()
        upper = np.asarray(bounds[1], dtype=np.float64).copy()
        return lower, upper
    lower = np.empty(n)
    upper = np.empty(n)
    for j, (low, up) in enumerate(bounds):
        lower[j] = -np.inf if low is None else float(low)
        upper[j] = np.inf if up is None else float(up)
    return lower, upper


class _BoundedRevisedSimplex:
    """One solve of ``min c@x, A_ub x <= b_ub, A_eq x = b_eq, l <= x <= u``.

    Internal standard form: ``A_work y = b`` over ``n`` structural columns,
    ``mu`` slack columns (bounds ``[0, inf)``) and ``m = mu + me`` artificial
    identity columns (bounds ``[0, 0]`` except while phase 1 relaxes them).
    The working matrix is shared and immutable; everything mutable (bounds,
    statuses, basis factor, pricing state) is per-solve state.
    """

    def __init__(self, work: _WorkMatrix, bounds, pricing: PricingRule = PricingRule.AUTO):
        self.work = work
        self.n, self.mu, self.me = work.n, work.mu, work.me
        self.m, self.ncols, self.art0 = work.m, work.ncols, work.art0
        self.b = work.b
        self.costs = work.costs

        lower = np.zeros(self.ncols)
        upper = np.full(self.ncols, np.inf)
        lower[: self.n], upper[: self.n] = _normalise_bounds(bounds, self.n)
        lower[self.art0 :] = 0.0
        upper[self.art0 :] = 0.0
        # Collapse bound pairs that crossed within tolerance (branch-and-bound
        # children can produce l == u up to rounding); a genuine crossing is
        # detected as infeasible in solve().
        crossed = (lower > upper) & (lower <= upper + _EPSILON)
        upper[crossed] = lower[crossed]
        self.lower, self.upper = lower, upper

        self.basis = np.empty(0, dtype=np.int64)
        self.status = np.full(self.ncols, AT_LOWER, dtype=np.int8)
        self.factor = BasisFactor.identity(self.m)
        self.xb = np.zeros(self.m)
        self.iterations = 0
        self.refactorizations = 0
        self.eta_peak = 0
        self._bland = False
        self._bland_used = False
        self._degenerate_streak = 0
        self._numerical_failure = False

        if pricing is PricingRule.AUTO:
            pricing = (
                PricingRule.DEVEX
                if self.ncols >= _DEVEX_COLUMN_THRESHOLD
                else PricingRule.DANTZIG
            )
        self.pricing = pricing
        self._devex_weights = (
            np.ones(self.ncols) if pricing is PricingRule.DEVEX else None
        )
        self._partial = self.ncols >= _PARTIAL_PRICING_THRESHOLD
        self._cand: np.ndarray | None = None
        self._cand_gather: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._cand_target = max(64, min(1024, self.ncols // 32))

    # -- working-matrix access ----------------------------------------------------
    # The helpers below are the only places that touch the constraint matrix,
    # branching once on its storage kind.

    def _vecmat(self, v: np.ndarray) -> np.ndarray:
        """``v @ A`` over all working columns (pricing / dual row computation)."""
        if self.work.sparse:
            return self.work.at @ v
        return v @ self.work.a

    def _matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` over the full working column space."""
        if self.work.sparse:
            return self.work.a_csc @ x
        return self.work.a @ x

    def _column(self, j: int) -> np.ndarray:
        """Column ``j`` of the working matrix as a dense vector."""
        if self.work.sparse:
            col = np.zeros(self.m)
            start, end = self.work.indptr[j], self.work.indptr[j + 1]
            col[self.work.indices[start:end]] = self.work.data[start:end]
            return col
        return self.work.a[:, j]

    def _ftran(self, j: int) -> np.ndarray:
        """``B^-1 a_j`` via the factorised basis."""
        return self.factor.ftran(self._column(j))

    def _basis_matrix(self) -> np.ndarray:
        """Dense copy of the current basis columns (for refactorisation)."""
        if self.work.sparse:
            return self.work.a_csc[:, self.basis].toarray()
        return self.work.a[:, self.basis]

    # -- public entry ------------------------------------------------------------

    def solve(self, warm_start: SimplexBasis | None = None) -> SimplexResult:
        if np.any(self.lower > self.upper):
            return self._result(SimplexStatus.INFEASIBLE)
        if warm_start is not None and self._try_install(warm_start):
            status = self._reoptimize()
            if status not in (SimplexStatus.ITERATION_LIMIT, SimplexStatus.NUMERICAL_ERROR):
                result = self._result(status, warm_started=True)
                if result.status is not SimplexStatus.NUMERICAL_ERROR:
                    return result
            # Numerical trouble on the warm path: restart cold.
            self._bland = False
            self._degenerate_streak = 0
            self._numerical_failure = False
            self._cand = None
            self._cand_gather = None
            if self._devex_weights is not None:
                self._devex_weights.fill(1.0)
        return self._cold_solve()

    # -- cold path ----------------------------------------------------------------

    def _cold_solve(self) -> SimplexResult:
        self._cold_start()
        if np.any(np.abs(self.xb) > _FEASIBILITY_TOLERANCE):
            phase1 = self._phase1()
            if phase1 is not SimplexStatus.OPTIMAL:
                return self._result(phase1)
        return self._result(self._primal(self.costs))

    def _cold_start(self) -> None:
        """All-artificial basis; real columns nonbasic at their nearest bound."""
        status = np.full(self.ncols, AT_LOWER, dtype=np.int8)
        finite_lower = np.isfinite(self.lower[: self.art0])
        finite_upper = np.isfinite(self.upper[: self.art0])
        status[: self.art0] = np.where(
            finite_lower, AT_LOWER, np.where(finite_upper, AT_UPPER, FREE)
        )
        self.basis = np.arange(self.art0, self.ncols, dtype=np.int64)
        status[self.basis] = BASIC
        self.status = status
        self.lower[self.art0 :] = 0.0
        self.upper[self.art0 :] = 0.0
        # The all-artificial basis matrix is the identity: no LU needed.
        self.factor = BasisFactor.identity(self.m)
        self._compute_xb()

    def _phase1(self) -> SimplexStatus:
        """Minimise signed artificial infeasibility from the all-artificial basis."""
        art = slice(self.art0, self.ncols)
        sign = np.where(self.xb >= 0.0, 1.0, -1.0)
        # Each artificial may only move on its residual's side of zero, so the
        # signed cost below is |a_i| there and phase 1 minimises total
        # infeasibility (bounded below by 0 — never unbounded).
        self.lower[art] = np.where(sign > 0, 0.0, -np.inf)
        self.upper[art] = np.where(sign > 0, np.inf, 0.0)
        phase1_costs = np.zeros(self.ncols)
        phase1_costs[art] = sign

        status = self._primal(phase1_costs)
        infeasibility = float(phase1_costs @ self._full_solution())

        self.lower[art] = 0.0
        self.upper[art] = 0.0
        nonbasic_art = (self.status[art] != BASIC).nonzero()[0] + self.art0
        self.status[nonbasic_art] = AT_LOWER

        if status in (SimplexStatus.ITERATION_LIMIT, SimplexStatus.NUMERICAL_ERROR):
            return status
        scale = max(1.0, float(np.abs(self.b).sum()))
        if infeasibility > _FEASIBILITY_TOLERANCE * scale:
            return SimplexStatus.INFEASIBLE
        self._compute_xb()
        return SimplexStatus.OPTIMAL

    # -- warm path -----------------------------------------------------------------

    def _try_install(self, warm: SimplexBasis) -> bool:
        """Validate and install a warm-start basis; False → caller goes cold.

        When the exported basis carries a factor fork, it is installed
        directly — the O(m³) refactorisation is skipped — but the residual
        check below *always* runs: a fork may have been exported against a
        same-shape form with different coefficients (SketchRefine retries a
        group against a rebuilt model), and a stale factor would silently
        corrupt every FTRAN after it.
        """
        if not isinstance(warm, SimplexBasis) or not warm.matches(self.n, self.mu, self.me):
            return False
        basic = np.asarray(warm.basic, dtype=np.int64)
        status = np.asarray(warm.status, dtype=np.int8).copy()
        if basic.shape != (self.m,) or status.shape != (self.ncols,):
            return False
        if self.m and (basic.min() < 0 or basic.max() >= self.ncols):
            return False
        if len(np.unique(basic)) != self.m:
            return False
        if np.count_nonzero(status == BASIC) != self.m or not np.all(status[basic] == BASIC):
            return False

        self.basis = basic.copy()
        self.status = status
        donor = warm._factor
        forked = (
            donor is not None
            and donor.matches(self.m)
            and donor.eta_count < _REFACTOR_INTERVAL
        )
        if forked:
            self.factor = donor.fork()
        elif not self._refactorize():
            return False
        if not self._factor_consistent():
            # Stale carried factor (or a genuinely singular basis): retry from
            # a fresh factorisation exactly once before rejecting the basis.
            if not forked:
                return False
            if not self._refactorize() or not self._factor_consistent():
                return False

        # Re-anchor nonbasic columns whose recorded bound is infinite under the
        # current bounds (the caller may have relaxed a bound since export).
        finite_lower = np.isfinite(self.lower)
        finite_upper = np.isfinite(self.upper)
        nonbasic = status != BASIC
        lost_lower = nonbasic & (status == AT_LOWER) & ~finite_lower
        lost_upper = nonbasic & (status == AT_UPPER) & ~finite_upper
        anchorable_free = nonbasic & (status == FREE) & (finite_lower | finite_upper)
        status[lost_lower] = np.where(finite_upper[lost_lower], AT_UPPER, FREE)
        status[lost_upper] = np.where(finite_lower[lost_upper], AT_LOWER, FREE)
        status[anchorable_free] = np.where(
            finite_lower[anchorable_free], AT_LOWER, AT_UPPER
        )

        # Restore dual feasibility with bound flips where a reduced cost has
        # the wrong sign; an unflippable column (infinite opposite bound) means
        # the basis cannot seed the dual simplex — reject it.
        y = self.factor.btran(self.costs[self.basis])
        d = self.costs - self._vecmat(y)
        movable = (status != BASIC) & (self.lower != self.upper)
        flip_to_upper = movable & (status == AT_LOWER) & (d < -_EPSILON)
        flip_to_lower = movable & (status == AT_UPPER) & (d > _EPSILON)
        if np.any(flip_to_upper & ~finite_upper) or np.any(flip_to_lower & ~finite_lower):
            return False
        if np.any(movable & (status == FREE) & (np.abs(d) > _EPSILON)):
            return False
        status[flip_to_upper] = AT_UPPER
        status[flip_to_lower] = AT_LOWER

        self._compute_xb()
        return True

    def _factor_consistent(self) -> bool:
        """Deterministic residual check: ``ftran(B @ 1)`` must return ones.

        Catches factors exported against a different-coefficient matrix, a
        wrong column order, and singular bases — without materialising
        ``B⁻¹ B`` (the O(m³) check the dense-inverse implementation paid).
        """
        if self.m == 0:
            return True
        indicator = np.zeros(self.ncols)
        indicator[self.basis] = 1.0
        residual = self.factor.ftran(self._matvec(indicator)) - 1.0
        if not np.all(np.isfinite(residual)):
            return False
        return float(np.abs(residual).max()) <= 1e-6

    def _reoptimize(self) -> SimplexStatus:
        """Dual simplex to primal feasibility, then primal clean-up."""
        status = self._dual(self.costs)
        if status is not SimplexStatus.OPTIMAL:
            return status
        return self._primal(self.costs)

    # -- primal simplex -----------------------------------------------------------

    def _primal(self, costs: np.ndarray) -> SimplexStatus:
        max_iterations = _MAX_ITERATIONS_FACTOR * (self.m + self.ncols + 1)
        for _ in range(max_iterations):
            self.iterations += 1
            y = self.factor.btran(costs[self.basis])

            entering, direction = self._price(costs, y)
            if entering is None:
                return SimplexStatus.OPTIMAL

            w = self._ftran(entering)
            step, limit_row, leave_to = self._primal_ratio_test(entering, direction, w)
            if step is None:
                return SimplexStatus.UNBOUNDED

            if limit_row is None:
                # Bound flip: the entering column hits its opposite bound first.
                self.xb -= w * (direction * step)
                self.status[entering] = (
                    AT_UPPER if self.status[entering] == AT_LOWER else AT_LOWER
                )
                self._note_step(step)
                continue

            entering_status = self.status[entering]
            if entering_status == AT_LOWER:
                start = self.lower[entering]
            elif entering_status == AT_UPPER:
                start = self.upper[entering]
            else:
                start = 0.0
            leaving = self.basis[limit_row]
            # Devex weights need the pre-pivot basis (BTRAN of the pivot row),
            # so update them before the factor advances.
            self._update_devex(entering, leaving, limit_row, w)
            self.xb -= w * (direction * step)
            refactored = self._apply_pivot(limit_row, entering, w)
            self.status[leaving] = leave_to
            if self._numerical_failure:
                return SimplexStatus.NUMERICAL_ERROR
            if refactored:
                self._compute_xb()
            else:
                self.xb[limit_row] = start + direction * step
            self._note_step(step)
        return SimplexStatus.ITERATION_LIMIT

    # -- pricing ------------------------------------------------------------------

    def _price(self, costs: np.ndarray, y: np.ndarray) -> tuple[int | None, int]:
        """Choose the entering column; ``(None, 0)`` means price-optimal.

        Bland mode always prices the full column range (its termination
        guarantee needs the global lowest eligible index).  Partial mode
        prices the candidate list and falls back to a full sweep — which also
        rebuilds the list — only when the list has no eligible column left;
        optimality is only ever declared off a full sweep.
        """
        if self._bland:
            d = costs - self._vecmat(y)
            eligible = self._eligible_columns(d)
            if eligible.size == 0:
                return None, 0
            j = int(eligible[0])
            return j, (1 if d[j] < 0 else -1)
        if self._partial:
            cand = self._cand
            if cand is not None and cand.size:
                d_cand = costs[cand] - self._gather_dot(y)
                mask = self._eligible_mask(cand, d_cand)
                if mask.any():
                    return self._select(cand[mask], d_cand[mask])
            d = costs - self._vecmat(y)
            return self._rebuild_candidates(d)
        d = costs - self._vecmat(y)
        eligible = self._eligible_columns(d)
        if eligible.size == 0:
            return None, 0
        return self._select(eligible, d[eligible])

    def _eligible_columns(self, d: np.ndarray) -> np.ndarray:
        """Indices of columns whose reduced cost permits an improving move."""
        movable = self.lower < self.upper
        at_lower = (self.status == AT_LOWER) & movable & (d < -_EPSILON)
        at_upper = (self.status == AT_UPPER) & movable & (d > _EPSILON)
        free = (self.status == FREE) & (np.abs(d) > _EPSILON)
        return np.nonzero(at_lower | at_upper | free)[0]

    def _eligible_mask(self, cols: np.ndarray, d_cols: np.ndarray) -> np.ndarray:
        """Eligibility of a column subset, given their reduced costs."""
        status = self.status[cols]
        movable = self.lower[cols] < self.upper[cols]
        at_lower = (status == AT_LOWER) & movable & (d_cols < -_EPSILON)
        at_upper = (status == AT_UPPER) & movable & (d_cols > _EPSILON)
        free = (status == FREE) & (np.abs(d_cols) > _EPSILON)
        return at_lower | at_upper | free

    def _select(self, cols: np.ndarray, d_cols: np.ndarray) -> tuple[int, int]:
        """Apply the active pricing rule over eligible columns ``cols``."""
        if self.pricing is PricingRule.DEVEX:
            scores = d_cols * d_cols / self._devex_weights[cols]
            k = int(np.argmax(scores))
        elif self.pricing is PricingRule.STEEPEST_EDGE:
            k = self._steepest_probe(cols, d_cols)
        else:
            k = int(np.argmax(np.abs(d_cols)))
        j = int(cols[k])
        return j, (1 if d_cols[k] < 0 else -1)

    def _steepest_probe(self, cols: np.ndarray, d_cols: np.ndarray) -> int:
        """Exact steepest-edge over the top-|d| candidates (one FTRAN each)."""
        probes = min(_STEEPEST_EDGE_PROBES, int(cols.size))
        order = np.argsort(-np.abs(d_cols), kind="stable")[:probes]
        best_k = int(order[0])
        best_score = -np.inf
        for k in order:
            w_j = self._ftran(int(cols[k]))
            gamma = 1.0 + float(w_j @ w_j)
            score = float(d_cols[k] * d_cols[k]) / gamma
            if score > best_score:
                best_score = score
                best_k = int(k)
        return best_k

    def _rebuild_candidates(self, d: np.ndarray) -> tuple[int | None, int]:
        """Full-sweep price: select globally and refill the candidate list."""
        eligible = self._eligible_columns(d)
        if eligible.size == 0:
            self._cand = None
            self._cand_gather = None
            return None, 0
        d_eligible = d[eligible]
        if self.pricing is PricingRule.DEVEX:
            scores = d_eligible * d_eligible / self._devex_weights[eligible]
        else:
            scores = np.abs(d_eligible)
        if eligible.size > self._cand_target:
            top = np.argpartition(-scores, self._cand_target - 1)[: self._cand_target]
            self._set_candidates(np.sort(eligible[top]))
        else:
            self._set_candidates(eligible)
        return self._select(eligible, d_eligible)

    def _set_candidates(self, cand: np.ndarray) -> None:
        """Store the candidate list and pre-extract its column triplets."""
        self._cand = cand
        if not self.work.sparse:
            self._cand_gather = None
            return
        indptr = self.work.indptr
        starts = indptr[cand]
        lens = indptr[cand + 1] - starts
        total = int(lens.sum())
        before = np.cumsum(lens) - lens
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(before, lens)
            + np.repeat(starts, lens)
        )
        seg = np.repeat(np.arange(cand.size, dtype=np.int64), lens)
        self._cand_gather = (self.work.indices[flat], self.work.data[flat], seg)

    def _gather_dot(self, y: np.ndarray) -> np.ndarray:
        """``y @ A`` restricted to the candidate columns (O(their nnz))."""
        cand = self._cand
        if not self.work.sparse:
            return y @ self.work.a[:, cand]
        rows, vals, seg = self._cand_gather
        return np.bincount(seg, weights=y[rows] * vals, minlength=cand.size)

    def _update_devex(
        self,
        entering: int,
        leaving: int,
        row: int,
        w: np.ndarray,
        alpha: np.ndarray | None = None,
    ) -> None:
        """Devex reference-weight update for the pivot (entering at ``row``).

        ``alpha`` optionally supplies the already-computed pivot row over all
        working columns (the dual simplex has it for free); otherwise the row
        is BTRAN'd and — under partial pricing — only the candidate columns'
        weights are refreshed, keeping the update O(candidate nnz).
        """
        weights = self._devex_weights
        if weights is None:
            return
        pivot = float(w[row])
        if abs(pivot) < _PIVOT_EPSILON:
            return
        ref_weight = max(float(weights[entering]), 1.0)
        cols: np.ndarray | None = None
        if alpha is None:
            rho = self.factor.btran_row(row)
            if self._partial and self._cand is not None and self._cand.size:
                cols = self._cand
                alpha = self._gather_dot(rho)
            else:
                alpha = self._vecmat(rho)
        ratio = alpha / pivot
        candidate_weights = ratio * ratio * ref_weight
        if cols is None:
            np.maximum(weights, candidate_weights, out=weights)
        else:
            weights[cols] = np.maximum(weights[cols], candidate_weights)
        weights[leaving] = max(ref_weight / (pivot * pivot), 1.0)
        if float(weights.max()) > _DEVEX_WEIGHT_RESET:
            # Reference framework reset: restart from unit weights.
            weights.fill(1.0)

    def _primal_ratio_test(
        self, entering: int, direction: int, w: np.ndarray
    ) -> tuple[float | None, int | None, int | None]:
        """Largest step for the entering column; (None,..) means unbounded.

        Returns ``(step, limiting_row, leaving_status)``; a ``None`` row with a
        finite step is a bound flip.
        """
        span = self.upper[entering] - self.lower[entering]
        best_t = span if np.isfinite(span) else np.inf
        limit_row: int | None = None
        leave_to: int | None = None
        for i in range(self.m):
            rate = -direction * w[i]  # d(x_B[i]) / d(step)
            basic_col = self.basis[i]
            if rate < -_PIVOT_EPSILON and np.isfinite(self.lower[basic_col]):
                t = (self.xb[i] - self.lower[basic_col]) / (-rate)
                to = AT_LOWER
            elif rate > _PIVOT_EPSILON and np.isfinite(self.upper[basic_col]):
                t = (self.upper[basic_col] - self.xb[i]) / rate
                to = AT_UPPER
            else:
                continue
            t = max(t, 0.0)
            if t < best_t - _RATIO_TIE_TOLERANCE:
                best_t, limit_row, leave_to = t, i, to
            elif limit_row is not None and t <= best_t + _RATIO_TIE_TOLERANCE:
                if self._bland:
                    if basic_col < self.basis[limit_row]:
                        limit_row, leave_to = i, to
                elif abs(w[i]) > abs(w[limit_row]):
                    limit_row, leave_to = i, to
        if not np.isfinite(best_t) and limit_row is None:
            return None, None, None
        return float(best_t), limit_row, leave_to

    # -- dual simplex ---------------------------------------------------------------

    def _dual(self, costs: np.ndarray) -> SimplexStatus:
        max_iterations = _MAX_ITERATIONS_FACTOR * (self.m + self.ncols + 1)
        for _ in range(max_iterations):
            if self.m == 0:
                return SimplexStatus.OPTIMAL
            below = self.lower[self.basis] - self.xb
            above = self.xb - self.upper[self.basis]
            violation = np.maximum(below, above)
            worst = float(violation.max()) if violation.size else 0.0
            if worst <= _FEASIBILITY_TOLERANCE:
                return SimplexStatus.OPTIMAL
            self.iterations += 1

            if self._bland:
                rows = np.nonzero(violation > _FEASIBILITY_TOLERANCE)[0]
                r = int(rows[np.argmin(self.basis[rows])])
            else:
                r = int(np.argmax(violation))
            leaving_below = below[r] > above[r]

            alpha = self._vecmat(self.factor.btran_row(r))
            y = self.factor.btran(costs[self.basis])
            d = costs - self._vecmat(y)

            movable = self.lower < self.upper
            at_lower = (self.status == AT_LOWER) & movable
            at_upper = (self.status == AT_UPPER) & movable
            free = self.status == FREE
            if leaving_below:
                # x_B[r] must increase: dx_B[r]/dx_j = -alpha_j.
                mask = (
                    (at_lower & (alpha < -_PIVOT_EPSILON))
                    | (at_upper & (alpha > _PIVOT_EPSILON))
                    | (free & (np.abs(alpha) > _PIVOT_EPSILON))
                )
            else:
                mask = (
                    (at_lower & (alpha > _PIVOT_EPSILON))
                    | (at_upper & (alpha < -_PIVOT_EPSILON))
                    | (free & (np.abs(alpha) > _PIVOT_EPSILON))
                )
            eligible = np.nonzero(mask)[0]
            if eligible.size == 0:
                return SimplexStatus.INFEASIBLE
            ratios = np.abs(d[eligible]) / np.abs(alpha[eligible])
            near = eligible[ratios <= ratios.min() + _RATIO_TIE_TOLERANCE]
            if self._bland:
                q = int(near[0])
            else:
                q = int(near[np.argmax(np.abs(alpha[near]))])

            w = self._ftran(q)
            if abs(w[r]) < _PIVOT_EPSILON:
                # The eta-updated factor disagrees with the priced row; rebuild
                # it once and let the caller fall back if that does not help.
                if not self._refactorize():
                    return SimplexStatus.NUMERICAL_ERROR
                self._compute_xb()
                w = self._ftran(q)
                if abs(w[r]) < _PIVOT_EPSILON:
                    return SimplexStatus.NUMERICAL_ERROR

            # Incremental primal update: move the entering column by exactly
            # the amount that lands x_B[r] on its violated bound, then make it
            # basic there (full recompute only after a refactorisation).
            target = self.lower[self.basis[r]] if leaving_below else self.upper[self.basis[r]]
            entering_step = (self.xb[r] - target) / w[r]
            entering_status = self.status[q]
            if entering_status == AT_LOWER:
                entering_start = self.lower[q]
            elif entering_status == AT_UPPER:
                entering_start = self.upper[q]
            else:
                entering_start = 0.0
            leaving = self.basis[r]
            # The dual iteration already priced the full pivot row, so the
            # devex update is a free ride on ``alpha``.
            self._update_devex(q, leaving, r, w, alpha=alpha)
            self.xb -= w * entering_step
            refactored = self._apply_pivot(r, q, w)
            self.status[leaving] = AT_LOWER if leaving_below else AT_UPPER
            if self._numerical_failure:
                return SimplexStatus.NUMERICAL_ERROR
            if refactored:
                self._compute_xb()
            else:
                self.xb[r] = entering_start + entering_step
            self._note_step(float(ratios.min()))
        return SimplexStatus.ITERATION_LIMIT

    # -- shared machinery -----------------------------------------------------------

    def _apply_pivot(self, row: int, entering: int, w: np.ndarray) -> bool:
        """Swap ``entering`` into the basis at ``row``; True if refactorised.

        The factor normally absorbs the pivot as one O(m) eta.  It refuses
        numerically untrustworthy pivots (stability trigger) and the eta file
        is bounded by :data:`_REFACTOR_INTERVAL` (periodic trigger); either
        way a fresh LU is computed, and a failed refactorisation (singular or
        non-finite basis) raises the ``_numerical_failure`` flag so the
        driving loop bails out with NUMERICAL_ERROR instead of iterating on a
        corrupt factor.
        """
        self.basis[row] = entering
        self.status[entering] = BASIC
        updated = self.factor.update(row, w)
        if updated:
            self.eta_peak = max(self.eta_peak, self.factor.eta_count)
        if not updated or self.factor.eta_count >= _REFACTOR_INTERVAL:
            if not self._refactorize():
                self._numerical_failure = True
            return True
        return False

    def _refactorize(self) -> bool:
        factor = BasisFactor.factorize(self._basis_matrix())
        if factor is None:
            return False
        self.factor = factor
        self.refactorizations += 1
        return True

    def _note_step(self, step: float) -> None:
        if step > _EPSILON:
            self._degenerate_streak = 0
            self._bland = False
        else:
            self._degenerate_streak += 1
            if self._degenerate_streak > _DEGENERATE_STREAK_LIMIT:
                self._bland = True
                self._bland_used = True

    def _nonbasic_values(self) -> np.ndarray:
        x = np.zeros(self.ncols)
        at_lower = self.status == AT_LOWER
        at_upper = self.status == AT_UPPER
        x[at_lower] = self.lower[at_lower]
        x[at_upper] = self.upper[at_upper]
        return x

    def _compute_xb(self) -> None:
        x = self._nonbasic_values()
        self.xb = self.factor.ftran(self.b - self._matvec(x))

    def _full_solution(self) -> np.ndarray:
        x = self._nonbasic_values()
        x[self.basis] = self.xb
        return x

    def _pricing_label(self) -> str:
        label = self.pricing.value
        if self._bland_used:
            label += "+bland"
        return label

    def _result(self, status: SimplexStatus, warm_started: bool = False) -> SimplexResult:
        if status is not SimplexStatus.OPTIMAL:
            return SimplexResult(
                status, np.empty(0), float("nan"), None, self.iterations, warm_started,
                self.refactorizations, self.eta_peak, self._pricing_label(),
            )
        x = self._full_solution()
        if not np.all(np.isfinite(x)):
            # A corrupt basis factor can only produce non-finite values; never
            # report that as OPTIMAL.
            return SimplexResult(
                SimplexStatus.NUMERICAL_ERROR,
                np.empty(0),
                float("nan"),
                None,
                self.iterations,
                warm_started,
                self.refactorizations,
                self.eta_peak,
                self._pricing_label(),
            )
        objective = float(self.costs[: self.n] @ x[: self.n])
        basis = SimplexBasis(
            self.basis.copy(), self.status.copy(), self.n, self.mu, self.me
        )
        if self.m and self.m <= _FACTOR_EXPORT_LIMIT:
            # Warm-start protocol over factors: hand consumers an O(eta)
            # snapshot so a related reoptimisation skips its refactorisation.
            basis._factor = self.factor.fork()
        return SimplexResult(
            SimplexStatus.OPTIMAL,
            x[: self.n].copy(),
            objective,
            basis,
            self.iterations,
            warm_started,
            self.refactorizations,
            self.eta_peak,
            self._pricing_label(),
        )
