"""Linear and integer linear programming substrate.

The paper uses IBM CPLEX as a black-box ILP solver.  This subpackage provides
an equivalent black box implemented from scratch:

* :class:`~repro.ilp.model.IlpModel` — a sparse-friendly model of variables,
  linear constraints, bounds and a linear objective,
* :mod:`~repro.ilp.lp_backend` — LP relaxation solving through SciPy's HiGHS
  backend, with a pure-NumPy bounded-variable revised simplex fallback that
  supports warm-started (dual) reoptimisation from an exported basis,
* :mod:`~repro.ilp.presolve` — presolve/postsolve reductions on the matrix
  form (iterated bound propagation, fixed-variable elimination,
  redundant-row removal) with solution *and* basis mapping between the
  reduced and original spaces, run before the root LP of every solve,
* :class:`~repro.ilp.branch_and_bound.BranchAndBoundSolver` — an exact ILP
  solver with configurable node selection, branching rules, rounding
  heuristics, basis reuse across the search tree, and capacity/time budgets
  (the capacity budget emulates CPLEX running out of memory on huge problems,
  which the paper reports as DIRECT failures),
* :class:`~repro.ilp.rounding.RelaxAndRoundSolver` — an LP-relaxation +
  rounding heuristic, used as an additional baseline and to demonstrate that
  the package evaluators treat the solver as a genuine black box,
* :mod:`~repro.ilp.iis` — a simple irreducible-infeasible-set approximation
  (the paper mentions IIS as the mechanism for the "dropping partitioning
  attributes" mitigation of false infeasibility).
"""

from repro.ilp.matrix_form import DenseForm, MatrixForm
from repro.ilp.model import Constraint, ConstraintSense, IlpModel, Objective, ObjectiveSense, Variable
from repro.ilp.status import SolveStats, SolverStatus, Solution
from repro.ilp.lp_backend import LpBackend, WarmStart, solve_lp
from repro.ilp.presolve import Postsolve, PresolveResult, PresolveStats, presolve_form
from repro.ilp.simplex import SimplexBasis
from repro.ilp.branch_and_bound import BranchAndBoundSolver, BranchingRule, NodeSelection, SolverLimits
from repro.ilp.rounding import RelaxAndRoundSolver
from repro.ilp.iis import find_iis

__all__ = [
    "IlpModel",
    "MatrixForm",
    "DenseForm",
    "Variable",
    "Constraint",
    "ConstraintSense",
    "Objective",
    "ObjectiveSense",
    "Solution",
    "SolverStatus",
    "SolveStats",
    "LpBackend",
    "WarmStart",
    "SimplexBasis",
    "solve_lp",
    "presolve_form",
    "Postsolve",
    "PresolveResult",
    "PresolveStats",
    "BranchAndBoundSolver",
    "SolverLimits",
    "BranchingRule",
    "NodeSelection",
    "RelaxAndRoundSolver",
    "find_iis",
]
