"""Branch-and-bound integer linear programming solver.

This is the library's stand-in for the paper's black-box ILP solver (CPLEX).
It implements a classic LP-relaxation branch-and-bound:

1. Solve the LP relaxation of the node.
2. If the relaxation is infeasible or its bound cannot beat the incumbent,
   prune the node.
3. If the relaxation is integral, update the incumbent.
4. Otherwise pick a fractional variable (most-fractional or pseudo-cost
   branching) and create two child nodes with tightened bounds.

Node selection is best-bound by default (good bounds early) with a
depth-first option for memory-constrained runs.  A rounding heuristic tries
to convert fractional relaxations into incumbents early, which greatly speeds
up the package-query instances (0/1-style multiplicity variables).

**Basis reuse.**  The model is exported to its (sparse-first)
:class:`~repro.ilp.matrix_form.MatrixForm` exactly once per solve (and the
model itself memoizes that export); every node shares the same objective and
constraint buffers and differs only in its bounds vectors, materialised via
:meth:`~repro.ilp.matrix_form.MatrixForm.with_bounds` without copying — the
simplex's assembled working matrix rides along in the shared form cache, so
the whole tree prices against one copy.  With the SIMPLEX backend, each node
also records the optimal basis of its LP relaxation and hands it to its
children: a child differs from its parent by one tightened variable bound, so
the child's LP is reoptimised with a few dual-simplex pivots from the parent
basis instead of a cold two-phase solve.  A caller holding a basis from a
related earlier solve (same matrix shape) can seed the *root* node the same
way through the ``warm_start`` argument of :meth:`BranchAndBoundSolver.solve`,
and the root relaxation's own basis is exported on the returned
:attr:`~repro.ilp.status.Solution.root_basis` for the next related solve.
``SolveStats.warm_start_hits`` / ``simplex_iterations`` expose how often the
fast path is taken.  The HiGHS backend solves every node cold (SciPy exposes
no basis interface) but still benefits from the shared matrix form.

**Presolve.**  Before the root LP, the matrix form is reduced by
:func:`~repro.ilp.presolve.presolve_form` (bound propagation with integrality
rounding, fixed-variable elimination, redundant-row removal).  The reduction
is computed once and shared by the whole tree: nodes keep their bounds in the
original variable space, and :meth:`~repro.ilp.presolve.Postsolve
.reduce_bounds` projects them into the reduced space per node (with one extra
propagation pass over the branched bounds).  Node LP values and objectives
are expanded back through the postsolve record, exported root bases are
lifted to the original column space, and caller-supplied root warm starts are
projected into the reduced space — so presolve is invisible to everything
downstream except the ``vars_fixed`` / ``rows_removed`` / ``presolve_ms``
statistics.

``SolverLimits`` intentionally includes ``max_variables``: CPLEX loads the
entire problem in memory and the paper's Figure 5 shows DIRECT failing on
large Galaxy queries for exactly that reason.  Setting a variable cap lets the
benchmark harness reproduce the failure regime deterministically.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SolverError
from repro.ilp.lp_backend import LpBackend, LpResult, WarmStart, solve_lp_form
from repro.ilp.matrix_form import MatrixForm
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense
from repro.ilp.presolve import Postsolve, presolve_form
from repro.ilp.simplex import PricingRule, SimplexBasis
from repro.ilp.status import Solution, SolveStats, SolverStatus

_INTEGRALITY_TOLERANCE = 1e-6
_BOUND_TOLERANCE = 1e-9
#: Relative slack added to the incumbent-derived objective cutoff so that
#: equal-objective optima survive the dual reduction (ties must not be cut:
#: the differential harness asserts NAIVE == DIRECT on the solution itself).
_CUTOFF_SLACK = 1e-6


class BranchingRule(enum.Enum):
    """How to choose the fractional variable to branch on."""

    MOST_FRACTIONAL = "most_fractional"
    PSEUDO_COST = "pseudo_cost"
    FIRST_FRACTIONAL = "first_fractional"


class NodeSelection(enum.Enum):
    """Order in which open branch-and-bound nodes are explored."""

    BEST_BOUND = "best_bound"
    DEPTH_FIRST = "depth_first"


@dataclass
class SolverLimits:
    """Resource budgets for a solve.

    Attributes:
        time_limit_seconds: Wall-clock budget; exceeded → TIME_LIMIT status
            (with the best incumbent, if any, reported as FEASIBLE).
        node_limit: Maximum number of branch-and-bound nodes to explore.
        max_variables: Maximum problem size the solver will accept.  ``None``
            disables the check.  This emulates the memory capacity limits of
            commercial solvers on very large ILPs.
        max_constraints: Like ``max_variables`` but for constraint count.
        relative_gap: Stop exploring a subtree when the relative optimality
            gap falls below this value.  The default matches the default MIP
            gap of commercial solvers (CPLEX uses 1e-4), which the paper's
            experiments rely on implicitly.
    """

    time_limit_seconds: float = 3600.0
    node_limit: int = 200_000
    max_variables: int | None = None
    max_constraints: int | None = None
    relative_gap: float = 1e-4


@dataclass(order=True)
class _Node:
    priority: float
    sequence: int
    depth: int = field(compare=False)
    lower_bounds: np.ndarray = field(compare=False)
    upper_bounds: np.ndarray = field(compare=False)
    parent_basis: SimplexBasis | None = field(compare=False, default=None)


class BranchAndBoundSolver:
    """Exact ILP solver with LP-relaxation branch and bound."""

    def __init__(
        self,
        limits: SolverLimits | None = None,
        branching: BranchingRule = BranchingRule.MOST_FRACTIONAL,
        node_selection: NodeSelection = NodeSelection.BEST_BOUND,
        lp_backend: LpBackend = LpBackend.HIGHS,
        enable_rounding_heuristic: bool = True,
        warm_start_lp: bool = True,
        presolve: bool = True,
        pricing: PricingRule = PricingRule.AUTO,
    ):
        self.limits = limits or SolverLimits()
        self.branching = branching
        self.node_selection = node_selection
        self.lp_backend = lp_backend
        # Simplex entering-variable rule for node LPs (SIMPLEX backend only);
        # AUTO resolves per instance width, the explicit rules exist for the
        # pricing-ablation benchmark.
        self.pricing = pricing
        self.enable_rounding_heuristic = enable_rounding_heuristic
        # Basis reuse across the tree (SIMPLEX backend only); the off switch
        # exists so benchmarks can measure cold-vs-warm node throughput.
        self.warm_start_lp = warm_start_lp
        # Root presolve (bound propagation + fixed-variable elimination on the
        # matrix form, reused by every node); off switch for the benchmark
        # ablation and for debugging reductions.
        self.presolve = presolve

    # -- public API ----------------------------------------------------------------

    def solve(self, model: IlpModel, warm_start: WarmStart | None = None) -> Solution:
        """Solve ``model`` to optimality (or until a limit is hit).

        ``warm_start`` optionally seeds the *root* LP relaxation with a basis
        from a related earlier solve (same constraint-matrix shape, e.g. a
        SKETCHREFINE backtracking retry); only the SIMPLEX backend consumes
        it, and a stale basis silently falls back to a cold solve.
        """
        stats = SolveStats()
        capacity_status = self._check_capacity(model)
        if capacity_status is not None:
            return Solution.failure(capacity_status, stats)

        start = time.perf_counter()
        form = model.to_matrix()
        n = model.num_variables

        if n == 0:
            # Degenerate: empty model is trivially feasible with empty assignment.
            return Solution(SolverStatus.OPTIMAL, np.empty(0), 0.0, stats)

        lower, upper, integer_mask = model.bound_and_integrality_arrays()
        # Nodes mutate their bounds copies; the model's arrays are shared.
        root_lower = lower.copy()
        root_upper = upper.copy()

        # Root presolve: shrink the form once, then derive every node from the
        # reduced matrices.  Node bounds stay in the *original* variable space
        # (branching indices, integrality and incumbents all live there);
        # _solve_node_lp projects them through the postsolve record per node.
        postsolve: Postsolve | None = None
        solve_form = form
        if self.presolve:
            reduction = presolve_form(form, integer_mask=integer_mask)
            stats.vars_fixed = reduction.stats.vars_fixed
            stats.rows_removed = reduction.stats.rows_removed
            stats.presolve_ms = reduction.stats.presolve_ms
            stats.coefficients_tightened = reduction.stats.coefficients_tightened
            if not reduction.feasible:
                stats.wall_time_seconds = time.perf_counter() - start
                return Solution.infeasible(stats)
            if reduction.form is not form:
                postsolve = reduction.postsolve
                solve_form = reduction.form
                if postsolve.num_reduced_vars == 0:
                    # Presolve decided every variable; no LP needed.
                    stats.wall_time_seconds = time.perf_counter() - start
                    candidate = postsolve.restore(np.empty(0))
                    if model.check_feasible(candidate):
                        value = model.objective_value(candidate)
                        stats.best_bound = value
                        stats.incumbent_updates = 1
                        stats.gap = 0.0
                        return Solution(SolverStatus.OPTIMAL, candidate, value, stats)
                    return Solution.infeasible(stats)

        sense = model.objective.sense
        incumbent: np.ndarray | None = None
        incumbent_value = sense.worst_value

        pseudo_up = np.ones(n)
        pseudo_down = np.ones(n)
        pseudo_counts = np.zeros(n)

        counter = itertools.count()
        heap: list[_Node] = []
        root_seed = warm_start.basis if (warm_start is not None and self.warm_start_lp) else None
        if root_seed is not None and postsolve is not None:
            # The caller's basis lives in the original column space; project it
            # into this solve's reduced space (None -> cold root, as for any
            # stale warm start).
            root_seed = postsolve.reduce_basis(root_seed)
        root = _Node(priority=0.0, sequence=next(counter), depth=0,
                     lower_bounds=root_lower, upper_bounds=root_upper,
                     parent_basis=root_seed)
        heapq.heappush(heap, root)
        root_basis: SimplexBasis | None = None

        while heap:
            elapsed = time.perf_counter() - start
            if elapsed > self.limits.time_limit_seconds:
                return self._finish(
                    SolverStatus.TIME_LIMIT, incumbent, incumbent_value, model, stats, start,
                    root_basis,
                )
            if stats.nodes_explored >= self.limits.node_limit:
                return self._finish(
                    SolverStatus.TIME_LIMIT, incumbent, incumbent_value, model, stats, start,
                    root_basis,
                )

            node = heapq.heappop(heap)
            stats.nodes_explored += 1

            # Dual reduction from the incumbent: any solution worth keeping
            # beats (or ties) the incumbent objective, so node presolve may
            # propagate that bound as one more <= row and fix non-improving
            # variables before the LP runs.
            cutoff = self._objective_cutoff_min(sense, incumbent, incumbent_value, postsolve)
            if cutoff is not None:
                stats.objective_cutoffs += 1
            lp_result = self._solve_node_lp(solve_form, node, postsolve, cutoff)
            self._accumulate_lp_stats(stats, lp_result)
            if lp_result.status is SolverStatus.NUMERICAL_ERROR and node.parent_basis is not None:
                # The warm basis corrupted the solve; retry the node cold
                # rather than pruning (or aborting) on numerical noise.
                stats.numerical_retries += 1
                node.parent_basis = None
                lp_result = self._solve_node_lp(solve_form, node, postsolve, cutoff)
                self._accumulate_lp_stats(stats, lp_result)
            if lp_result.status is SolverStatus.NUMERICAL_ERROR:
                raise SolverError(
                    f"LP relaxation failed numerically at node depth {node.depth}"
                )
            if node.depth == 0 and lp_result.basis is not None:
                root_basis = (
                    postsolve.restore_basis(lp_result.basis)
                    if postsolve is not None
                    else lp_result.basis
                )

            if lp_result.status is SolverStatus.INFEASIBLE:
                continue
            if lp_result.status is SolverStatus.UNBOUNDED:
                if incumbent is None and node.depth == 0:
                    return Solution.failure(SolverStatus.UNBOUNDED, stats)
                continue

            bound = lp_result.objective_value
            stats.best_bound = bound

            # Prune by bound: the relaxation cannot improve on the incumbent.
            if incumbent is not None and not self._bound_improves(sense, bound, incumbent_value):
                continue

            fractional = self._fractional_indices(lp_result.values, integer_mask)
            if not len(fractional):
                # Integral relaxation: new incumbent.
                value = model.objective_value(lp_result.values)
                if incumbent is None or sense.better(value, incumbent_value):
                    incumbent = np.rint(lp_result.values * integer_mask) + lp_result.values * (~integer_mask)
                    incumbent_value = value
                    stats.incumbent_updates += 1
                continue

            if self.enable_rounding_heuristic:
                heuristic = self._rounding_heuristic(model, lp_result.values, integer_mask,
                                                     node.lower_bounds, node.upper_bounds)
                if heuristic is not None:
                    value = model.objective_value(heuristic)
                    if incumbent is None or sense.better(value, incumbent_value):
                        incumbent = heuristic
                        incumbent_value = value
                        stats.incumbent_updates += 1

            # Optimality-gap stop.
            if incumbent is not None and self._gap(sense, bound, incumbent_value) <= self.limits.relative_gap:
                continue

            branch_index = self._choose_branch_variable(
                fractional, lp_result.values, pseudo_up, pseudo_down, pseudo_counts
            )
            branch_value = lp_result.values[branch_index]
            floor_value = np.floor(branch_value)

            self._update_pseudo_costs(
                pseudo_up, pseudo_down, pseudo_counts, branch_index, branch_value
            )

            # Children inherit this node's optimal basis: they differ by one
            # tightened bound, so their LPs dual-reoptimise from it.
            child_basis = lp_result.basis if self.warm_start_lp else None
            down = _Node(
                priority=self._node_priority(sense, bound, node.depth + 1),
                sequence=next(counter),
                depth=node.depth + 1,
                lower_bounds=node.lower_bounds.copy(),
                upper_bounds=node.upper_bounds.copy(),
                parent_basis=child_basis,
            )
            down.upper_bounds[branch_index] = floor_value

            up = _Node(
                priority=self._node_priority(sense, bound, node.depth + 1),
                sequence=next(counter),
                depth=node.depth + 1,
                lower_bounds=node.lower_bounds.copy(),
                upper_bounds=node.upper_bounds.copy(),
                parent_basis=child_basis,
            )
            up.lower_bounds[branch_index] = floor_value + 1.0

            if down.upper_bounds[branch_index] >= down.lower_bounds[branch_index] - _BOUND_TOLERANCE:
                heapq.heappush(heap, down)
            if up.lower_bounds[branch_index] <= up.upper_bounds[branch_index] + _BOUND_TOLERANCE:
                heapq.heappush(heap, up)

        if incumbent is None:
            # The search tree was exhausted without finding any integral point.
            stats.wall_time_seconds = time.perf_counter() - start
            solution = Solution.infeasible(stats)
            solution.root_basis = root_basis
            return solution
        return self._finish(
            SolverStatus.OPTIMAL, incumbent, incumbent_value, model, stats, start, root_basis
        )

    # -- internals ---------------------------------------------------------------------

    def _check_capacity(self, model: IlpModel) -> SolverStatus | None:
        limits = self.limits
        if limits.max_variables is not None and model.num_variables > limits.max_variables:
            return SolverStatus.CAPACITY_EXCEEDED
        if limits.max_constraints is not None and model.num_constraints > limits.max_constraints:
            return SolverStatus.CAPACITY_EXCEEDED
        return None

    @staticmethod
    def _accumulate_lp_stats(stats: SolveStats, lp_result: LpResult) -> None:
        stats.lp_solves += 1
        stats.simplex_iterations += lp_result.iterations
        if lp_result.warm_start_used:
            stats.warm_start_hits += 1
        stats.refactorizations += lp_result.refactorizations
        stats.eta_peak = max(stats.eta_peak, lp_result.eta_peak)
        if lp_result.pricing:
            stats.pricing_rule = lp_result.pricing

    @staticmethod
    def _objective_cutoff_min(
        sense: ObjectiveSense,
        incumbent: np.ndarray | None,
        incumbent_value: float,
        postsolve: Postsolve | None,
    ) -> float | None:
        """Incumbent objective as a reduced-space, minimisation-sense cutoff.

        ``None`` (no cutoff) until an incumbent exists; the relative
        :data:`_CUTOFF_SLACK` keeps alternative optima of equal objective
        inside the cut region.
        """
        if incumbent is None or postsolve is None or not np.isfinite(incumbent_value):
            return None
        value_min = incumbent_value if sense is ObjectiveSense.MINIMIZE else -incumbent_value
        cutoff = value_min - postsolve.objective_offset_min
        return cutoff + _CUTOFF_SLACK * max(1.0, abs(cutoff))

    def _solve_node_lp(
        self,
        form: MatrixForm,
        node: _Node,
        postsolve: Postsolve | None = None,
        objective_cutoff_min: float | None = None,
    ) -> LpResult:
        """Solve one node's LP relaxation, in reduced space when presolved.

        ``form`` is the (possibly reduced) shared matrix form.  Node bounds
        are kept in the original variable space and projected per node —
        optionally strengthened by the incumbent objective cutoff; the
        returned values and objective are expanded back to the original space
        while the basis stays reduced — children consume it against the same
        reduced form.
        """
        if postsolve is None:
            node_form = form.with_bounds(node.lower_bounds, node.upper_bounds)
        else:
            reduced_lower, reduced_upper = postsolve.reduce_bounds(
                node.lower_bounds,
                node.upper_bounds,
                objective_cutoff_min=objective_cutoff_min,
            )
            node_form = form.with_bounds(reduced_lower, reduced_upper)
        warm = None
        if (
            self.warm_start_lp
            and node.parent_basis is not None
            and self.lp_backend is LpBackend.SIMPLEX
        ):
            warm = WarmStart(basis=node.parent_basis)
        result = solve_lp_form(
            node_form, self.lp_backend, warm_start=warm, presolve=False,
            pricing=self.pricing,
        )
        if postsolve is None or not result.status.has_solution:
            return result
        return LpResult(
            result.status,
            postsolve.restore(result.values),
            result.objective_value + postsolve.objective_offset,
            basis=result.basis,
            iterations=result.iterations,
            warm_start_used=result.warm_start_used,
            refactorizations=result.refactorizations,
            eta_peak=result.eta_peak,
            pricing=result.pricing,
        )

    @staticmethod
    def _fractional_indices(values: np.ndarray, integer_mask: np.ndarray) -> np.ndarray:
        fractional_part = np.abs(values - np.rint(values))
        return np.nonzero(integer_mask & (fractional_part > _INTEGRALITY_TOLERANCE))[0]

    def _choose_branch_variable(
        self,
        fractional: np.ndarray,
        values: np.ndarray,
        pseudo_up: np.ndarray,
        pseudo_down: np.ndarray,
        pseudo_counts: np.ndarray,
    ) -> int:
        if self.branching is BranchingRule.FIRST_FRACTIONAL:
            return int(fractional[0])
        fractions = values[fractional] - np.floor(values[fractional])
        if self.branching is BranchingRule.MOST_FRACTIONAL:
            scores = -np.abs(fractions - 0.5)
            return int(fractional[int(np.argmax(scores))])
        # Pseudo-cost branching: estimated degradation product (larger is better).
        up_cost = pseudo_up[fractional] * (1.0 - fractions)
        down_cost = pseudo_down[fractional] * fractions
        scores = np.maximum(up_cost, 1e-6) * np.maximum(down_cost, 1e-6)
        return int(fractional[int(np.argmax(scores))])

    @staticmethod
    def _update_pseudo_costs(
        pseudo_up: np.ndarray,
        pseudo_down: np.ndarray,
        pseudo_counts: np.ndarray,
        index: int,
        value: float,
    ) -> None:
        fraction = value - np.floor(value)
        pseudo_counts[index] += 1
        # Simple exponential smoothing of observed fractionalities.
        pseudo_up[index] = 0.7 * pseudo_up[index] + 0.3 * (1.0 - fraction)
        pseudo_down[index] = 0.7 * pseudo_down[index] + 0.3 * fraction

    def _node_priority(self, sense: ObjectiveSense, bound: float, depth: int) -> float:
        if self.node_selection is NodeSelection.DEPTH_FIRST:
            return -float(depth)
        # Best bound first: min-heap, so minimisation uses the bound directly
        # and maximisation uses its negation.
        return bound if sense is ObjectiveSense.MINIMIZE else -bound

    @staticmethod
    def _bound_improves(sense: ObjectiveSense, bound: float, incumbent_value: float) -> bool:
        if sense is ObjectiveSense.MINIMIZE:
            return bound < incumbent_value - _BOUND_TOLERANCE
        return bound > incumbent_value + _BOUND_TOLERANCE

    @staticmethod
    def _gap(sense: ObjectiveSense, bound: float, incumbent_value: float) -> float:
        if not np.isfinite(bound) or not np.isfinite(incumbent_value):
            return float("inf")
        denominator = max(1.0, abs(incumbent_value))
        return abs(incumbent_value - bound) / denominator

    def _rounding_heuristic(
        self,
        model: IlpModel,
        relaxation: np.ndarray,
        integer_mask: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> np.ndarray | None:
        """Try rounding the fractional relaxation to a feasible integral point."""
        candidate = relaxation.copy()
        candidate[integer_mask] = np.rint(relaxation[integer_mask])
        candidate = np.clip(candidate, lower, np.where(np.isinf(upper), candidate, upper))
        if model.check_feasible(candidate):
            return candidate
        # Second attempt: floor everything (often feasible for <= constraints).
        candidate = relaxation.copy()
        candidate[integer_mask] = np.floor(relaxation[integer_mask])
        candidate = np.clip(candidate, lower, np.where(np.isinf(upper), candidate, upper))
        if model.check_feasible(candidate):
            return candidate
        return None

    def _finish(
        self,
        status: SolverStatus,
        incumbent: np.ndarray | None,
        incumbent_value: float,
        model: IlpModel,
        stats: SolveStats,
        start: float,
        root_basis: SimplexBasis | None = None,
    ) -> Solution:
        stats.wall_time_seconds = time.perf_counter() - start
        if incumbent is None:
            if status is SolverStatus.OPTIMAL:
                solution = Solution.infeasible(stats)
            else:
                solution = Solution.failure(status, stats)
            solution.root_basis = root_basis
            return solution
        if status is SolverStatus.OPTIMAL:
            final_status = SolverStatus.OPTIMAL
        else:
            final_status = SolverStatus.FEASIBLE
        stats.gap = self._gap(model.objective.sense, stats.best_bound, incumbent_value)
        return Solution(final_status, incumbent, incumbent_value, stats, root_basis=root_basis)
