"""Presolve/postsolve reductions on the :class:`MatrixForm` IR.

Classic LP-system practice treats presolve as the highest-leverage step
between model assembly and solve: most tuples of a large DIRECT instance can
never enter an optimal package, and detecting them *before* the simplex runs
shrinks the root LP by whole columns rather than shaving pivots.  This module
implements the reductions that matter for PaQL-shaped models:

* **Iterated bound propagation.**  For every constraint row, the minimal /
  maximal activity implied by the current variable bounds yields implied
  bounds on each participating variable (``a_ij x_j <= b_i - min-activity of
  the rest of the row``).  Propagation runs to a fixpoint (bounded by a pass
  budget), vectorised over the row triplets of the CSR/dense matrices.  When
  an integrality mask is supplied, propagated bounds are rounded inward —
  this is what fixes "tuple can never fit the SUM budget" columns to zero.
* **Fixed-variable elimination.**  Variables whose bounds coincide (after
  propagation) are substituted into the right-hand sides and their columns
  dropped from the reduced form.
* **Empty / redundant-row removal.**  Rows that can never bind under the
  propagated bounds (``max activity <= b`` for ``<=`` rows, forced activity
  for ``=`` rows) are dropped; rows whose columns were all fixed become empty
  and are either dropped or prove the model infeasible.
* **Singleton-row conversion.**  A row with a single unfixed column is
  absorbed by the propagation step (its implied bound *is* the variable
  bound), after which redundancy removal drops the row — no special case.

The reductions are *conservative*: without an integrality mask the reduced
LP has exactly the same feasible region and optimum as the original (bound
propagation only states implications), so a presolved solve must agree with a
cold solve — the property tests rely on this.

Every reduction is paired with a :class:`Postsolve` record that maps
reduced-space results back to the original space:

* :meth:`Postsolve.restore` re-inserts fixed variables into a reduced
  solution vector,
* :meth:`Postsolve.restore_basis` lifts a reduced-space
  :class:`~repro.ilp.simplex.SimplexBasis` back to the original column space
  (removed rows re-enter with their slack/artificial basic, fixed columns
  nonbasic at bound), so a root basis exported from a presolved solve can
  still seed a later related solve, and
* :meth:`Postsolve.reduce_basis` maps an original-space basis *into* the
  reduced space, so a caller holding a basis from an earlier un-presolved (or
  identically-presolved) solve keeps its warm start.

Branch-and-bound presolves the root once and calls
:meth:`Postsolve.reduce_bounds` per node: branched bounds are intersected
with the root reduction's tightened bounds and re-propagated for one pass,
while the reduced constraint matrices (and the simplex working matrix cached
on the reduced form) stay shared across the whole tree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse as sp

from repro.ilp.matrix_form import MatrixForm
from repro.ilp.simplex import AT_LOWER, AT_UPPER, BASIC, FREE, SimplexBasis

#: Bounds closer than this (absolutely) are collapsed into a fixed variable.
_FIX_TOLERANCE = 1e-9
#: A candidate bound must improve on the current one by more than this
#: (scaled by magnitude) to count as a tightening — this is also the
#: fixpoint detector.
_TIGHTEN_TOLERANCE = 1e-9
#: Feasibility slop for row-level infeasibility / redundancy tests, relative
#: to the row magnitude.
_ROW_TOLERANCE = 1e-9
#: Slop when rounding propagated bounds of integer variables inward.
_INTEGRALITY_TOLERANCE = 1e-6
#: Default cap on propagation passes; PaQL models converge in one or two.
_MAX_PASSES = 8


@dataclass
class PresolveStats:
    """Size of the reduction achieved by one :func:`presolve_form` call."""

    vars_fixed: int = 0
    rows_removed: int = 0
    bounds_tightened: int = 0
    coefficients_tightened: int = 0
    passes: int = 0
    presolve_ms: float = 0.0


class _Rows:
    """Triplet view of one constraint matrix plus per-row activity bounds.

    ``tmin``/``tmax`` are the per-entry minimal/maximal contributions under
    the current variable bounds; by construction ``tmin`` entries are finite
    or ``-inf`` and ``tmax`` entries finite or ``+inf`` (a structural entry
    is non-zero and lower <= upper), which keeps the masked row sums below
    free of inf - inf artefacts.
    """

    __slots__ = (
        "row", "col", "data", "num_rows",
        "tmin", "tmax", "fin_min", "fin_max", "ninf_min", "ninf_max",
        "min_act", "max_act",
    )

    def __init__(self, matrix):
        if sp.issparse(matrix):
            coo = matrix.tocoo()
            self.row = coo.row.astype(np.int64)
            self.col = coo.col.astype(np.int64)
            self.data = coo.data.astype(np.float64)
        else:
            rows, cols = np.nonzero(matrix)
            self.row = rows.astype(np.int64)
            self.col = cols.astype(np.int64)
            self.data = np.asarray(matrix[rows, cols], dtype=np.float64)
        self.num_rows = int(matrix.shape[0])

    def compute_activities(self, lower: np.ndarray, upper: np.ndarray) -> None:
        positive = self.data > 0
        self.tmin = np.where(positive, self.data * lower[self.col], self.data * upper[self.col])
        self.tmax = np.where(positive, self.data * upper[self.col], self.data * lower[self.col])
        min_inf = ~np.isfinite(self.tmin)
        max_inf = ~np.isfinite(self.tmax)
        m = self.num_rows
        self.fin_min = np.bincount(self.row, weights=np.where(min_inf, 0.0, self.tmin), minlength=m)
        self.fin_max = np.bincount(self.row, weights=np.where(max_inf, 0.0, self.tmax), minlength=m)
        self.ninf_min = np.bincount(self.row, weights=min_inf.astype(np.float64), minlength=m)
        self.ninf_max = np.bincount(self.row, weights=max_inf.astype(np.float64), minlength=m)
        self.min_act = np.where(self.ninf_min > 0, -np.inf, self.fin_min)
        self.max_act = np.where(self.ninf_max > 0, np.inf, self.fin_max)

    def residual_min(self) -> np.ndarray:
        """Per entry: the row's minimal activity *excluding* that entry."""
        others_inf = np.where(
            np.isfinite(self.tmin), self.ninf_min[self.row] > 0, self.ninf_min[self.row] > 1
        )
        finite_part = self.fin_min[self.row] - np.where(np.isfinite(self.tmin), self.tmin, 0.0)
        return np.where(others_inf, -np.inf, finite_part)

    def residual_max(self) -> np.ndarray:
        """Per entry: the row's maximal activity *excluding* that entry."""
        others_inf = np.where(
            np.isfinite(self.tmax), self.ninf_max[self.row] > 0, self.ninf_max[self.row] > 1
        )
        finite_part = self.fin_max[self.row] - np.where(np.isfinite(self.tmax), self.tmax, 0.0)
        return np.where(others_inf, np.inf, finite_part)


def _apply_candidates(
    lower: np.ndarray,
    upper: np.ndarray,
    cols: np.ndarray,
    cand_lower: np.ndarray | None,
    cand_upper: np.ndarray | None,
) -> int:
    """Tighten ``lower``/``upper`` in place from per-entry candidate bounds.

    Returns the number of bounds actually tightened (a candidate must improve
    by more than the tolerance to count, which is what terminates the
    propagation loop).
    """
    tightened = 0
    n = len(lower)
    if cand_upper is not None and cand_upper.size:
        best = np.full(n, np.inf)
        np.minimum.at(best, cols, cand_upper)
        improves = best < upper - _TIGHTEN_TOLERANCE * np.maximum(1.0, np.abs(best))
        tightened += int(np.count_nonzero(improves))
        upper[improves] = best[improves]
    if cand_lower is not None and cand_lower.size:
        best = np.full(n, -np.inf)
        np.maximum.at(best, cols, cand_lower)
        improves = best > lower + _TIGHTEN_TOLERANCE * np.maximum(1.0, np.abs(best))
        tightened += int(np.count_nonzero(improves))
        lower[improves] = best[improves]
    return tightened


def _propagate_le(
    rows: _Rows, rhs: np.ndarray, active: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> int:
    """One propagation pass of ``row <= rhs`` over the active rows."""
    if not rows.data.size:
        return 0
    keep = active[rows.row]
    if not keep.any():
        return 0
    slack = rhs[rows.row] - rows.residual_min()
    with np.errstate(invalid="ignore"):
        candidate = slack / rows.data
    positive = rows.data > 0
    use_u = keep & positive & np.isfinite(candidate)
    use_l = keep & ~positive & np.isfinite(candidate)
    tightened = 0
    if use_u.any():
        tightened += _apply_candidates(lower, upper, rows.col[use_u], None, candidate[use_u])
    if use_l.any():
        tightened += _apply_candidates(lower, upper, rows.col[use_l], candidate[use_l], None)
    return tightened


def _propagate_ge(
    rows: _Rows, rhs: np.ndarray, active: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> int:
    """One propagation pass of ``row >= rhs`` over the active rows (eq rows)."""
    if not rows.data.size:
        return 0
    keep = active[rows.row]
    if not keep.any():
        return 0
    surplus = rhs[rows.row] - rows.residual_max()
    with np.errstate(invalid="ignore"):
        candidate = surplus / rows.data
    positive = rows.data > 0
    # a_ij x_j >= surplus: a lower bound for positive coefficients, but the
    # division flips the inequality for negative ones — an *upper* bound.
    use_l = keep & positive & np.isfinite(candidate)
    use_u = keep & ~positive & np.isfinite(candidate)
    tightened = 0
    if use_l.any():
        tightened += _apply_candidates(lower, upper, rows.col[use_l], candidate[use_l], None)
    if use_u.any():
        tightened += _apply_candidates(lower, upper, rows.col[use_u], None, candidate[use_u])
    return tightened


def _tighten_row_coefficients(
    rows: _Rows,
    rhs: np.ndarray,
    active: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    integer_mask: np.ndarray | None,
) -> int:
    """Strengthen ``<=`` row coefficients against integral columns, in place.

    For an entry ``a_j x_j`` of an active row with maximal activity
    ``M = max_act`` and surplus ``delta = M - b``, when ``x_j`` is integral
    and ``0 < delta < |a_j|`` the coefficient can be shrunk toward the bound
    the entry's maximum sits at::

        a_j > 0:  a_j' = delta,   b' = b - (a_j - delta) * u_j
        a_j < 0:  a_j' = -delta,  b' = b - (a_j + delta) * l_j

    Every integral point satisfying the original row satisfies the tightened
    one (the surplus an integral step can recover is bounded by ``delta``),
    the tightened LP region is contained in the original (so incumbents and
    dual bounds stay sound), and the LP relaxation gets strictly tighter.
    Requires activities computed for the *current* bounds or looser ones —
    a looser ``M`` only shrinks ``delta``'s eligibility window, never breaks
    soundness.  One entry per row per call keeps ``max_act`` honest; the
    pass loop picks up remaining entries on later sweeps.  Returns the
    number of coefficients changed (``rows.data`` and ``rhs`` are mutated).
    """
    if integer_mask is None or not rows.data.size:
        return 0
    keep = active[rows.row] & integer_mask[rows.col]
    if not keep.any():
        return 0
    a = rows.data
    delta = rows.max_act[rows.row] - rhs[rows.row]
    tol = _TIGHTEN_TOLERANCE * np.maximum(1.0, np.abs(a))
    with np.errstate(invalid="ignore"):
        eligible = keep & np.isfinite(delta) & (delta > tol) & (delta < np.abs(a) - tol)
    if not eligible.any():
        return 0
    idx = np.nonzero(eligible)[0]
    _, first = np.unique(rows.row[idx], return_index=True)
    idx = idx[first]
    cols = rows.col[idx]
    rws = rows.row[idx]
    d = delta[idx]
    positive = a[idx] > 0
    adjustment = np.where(
        positive, (a[idx] - d) * upper[cols], (a[idx] + d) * lower[cols]
    )
    rhs[rws] -= adjustment
    rows.data[idx] = np.where(positive, d, -d)
    return int(idx.size)


def _round_integer_bounds(
    lower: np.ndarray, upper: np.ndarray, integer_mask: np.ndarray | None
) -> None:
    if integer_mask is None:
        return
    finite_u = integer_mask & np.isfinite(upper)
    finite_l = integer_mask & np.isfinite(lower)
    upper[finite_u] = np.floor(upper[finite_u] + _INTEGRALITY_TOLERANCE)
    lower[finite_l] = np.ceil(lower[finite_l] - _INTEGRALITY_TOLERANCE)


def _row_tolerance(rhs: np.ndarray) -> np.ndarray:
    return _ROW_TOLERANCE * np.maximum(1.0, np.abs(rhs))


@dataclass
class Postsolve:
    """Everything needed to map reduced-space results back to the original.

    The record is also the per-node interface branch-and-bound uses to derive
    reduced bounds for its :meth:`MatrixForm.with_bounds` views without
    redoing the structural reduction.
    """

    reduced_form: MatrixForm
    kept_cols: np.ndarray
    kept_ub_rows: np.ndarray
    kept_eq_rows: np.ndarray
    fixed_values: np.ndarray       # full original length; kept slots are 0
    num_orig_vars: int
    num_orig_ub: int
    num_orig_eq: int
    orig_lower: np.ndarray
    orig_upper: np.ndarray
    tightened_lower: np.ndarray    # reduced space (root propagation result)
    tightened_upper: np.ndarray
    objective_offset_min: float    # fixed columns' contribution, minimisation sense
    maximize: bool
    integer_mask: np.ndarray | None = None   # reduced space
    identity: bool = False
    _node_rows: "tuple[_Rows, _Rows] | None" = field(
        default=None, repr=False, compare=False
    )
    _cutoff_rows: "_Rows | None" = field(default=None, repr=False, compare=False)

    # -- pickling -----------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Ship the record without its lazily-built per-node row views.

        ``_node_rows`` caches triplet/activity scratch arrays for node-bound
        propagation and ``_cutoff_rows`` the objective row used for incumbent
        cutoff reductions; both are derived state, rebuilt on first use in
        the receiving process (the reduced form's own caches are dropped by
        :meth:`MatrixForm.__getstate__`).
        """
        state = self.__dict__.copy()
        state["_node_rows"] = None
        state["_cutoff_rows"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._node_rows = None
        self._cutoff_rows = None

    # -- solutions ----------------------------------------------------------------

    @property
    def num_reduced_vars(self) -> int:
        return int(self.kept_cols.size)

    @property
    def objective_offset(self) -> float:
        """The fixed columns' objective contribution in the model's own sense."""
        return -self.objective_offset_min if self.maximize else self.objective_offset_min

    def restore(self, x_reduced: np.ndarray) -> np.ndarray:
        """Expand a reduced-space solution to the original variable space."""
        if self.identity:
            return np.asarray(x_reduced, dtype=np.float64)
        x = self.fixed_values.copy()
        x[self.kept_cols] = x_reduced
        return x

    # -- bounds (per branch-and-bound node) ---------------------------------------

    def reduce_bounds(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        propagate: bool = True,
        objective_cutoff_min: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project original-space node bounds into the reduced space.

        Node bounds only ever tighten relative to the root, so intersecting
        them with the root reduction's propagated bounds is sound.  When
        ``propagate`` is set and the node actually branched (its bounds differ
        from the root's), one more propagation pass re-tightens neighbouring
        variables through the reduced rows — the cheap version of "re-presolve
        the node".  Crossed bounds are returned as-is; the LP solver reports
        them as infeasible.

        ``objective_cutoff_min`` optionally supplies an incumbent-derived
        bound on the *reduced, minimisation-sense* objective: any solution
        worth keeping satisfies ``c_reduced @ x <= cutoff``, so that row is
        propagated like one more ``<=`` constraint — the classic dual
        reduction that fixes non-improving variables as the incumbent
        improves.  Callers must leave enough slack on the cutoff to keep
        equal-objective optima (branch-and-bound adds a relative epsilon).
        """
        reduced_l = np.maximum(self.tightened_lower, lower[self.kept_cols])
        reduced_u = np.minimum(self.tightened_upper, upper[self.kept_cols])
        if propagate and not self.identity:
            changed = (reduced_l != self.tightened_lower) | (reduced_u != self.tightened_upper)
            if changed.any():
                if self._node_rows is None:
                    self._node_rows = (
                        _Rows(self.reduced_form.a_ub),
                        _Rows(self.reduced_form.a_eq),
                    )
                ub_rows, eq_rows = self._node_rows
                all_ub = np.ones(ub_rows.num_rows, dtype=bool)
                all_eq = np.ones(eq_rows.num_rows, dtype=bool)
                ub_rows.compute_activities(reduced_l, reduced_u)
                _propagate_le(ub_rows, self.reduced_form.b_ub, all_ub, reduced_l, reduced_u)
                eq_rows.compute_activities(reduced_l, reduced_u)
                _propagate_le(eq_rows, self.reduced_form.b_eq, all_eq, reduced_l, reduced_u)
                _propagate_ge(eq_rows, self.reduced_form.b_eq, all_eq, reduced_l, reduced_u)
                _round_integer_bounds(reduced_l, reduced_u, self.integer_mask)
        if objective_cutoff_min is not None and np.isfinite(objective_cutoff_min):
            if self._cutoff_rows is None:
                self._cutoff_rows = _Rows(
                    np.asarray(self.reduced_form.c, dtype=np.float64).reshape(1, -1)
                )
            cutoff_row = self._cutoff_rows
            cutoff_row.compute_activities(reduced_l, reduced_u)
            _propagate_le(
                cutoff_row,
                np.array([objective_cutoff_min]),
                np.ones(1, dtype=bool),
                reduced_l,
                reduced_u,
            )
            _round_integer_bounds(reduced_l, reduced_u, self.integer_mask)
        return reduced_l, reduced_u

    # -- bases --------------------------------------------------------------------

    def _column_maps(self) -> tuple[np.ndarray, np.ndarray]:
        """(reduced column -> original column, original column -> reduced or -1).

        Columns live in the simplex working space: structurals, then one slack
        per ``<=`` row, then one artificial per row.
        """
        n_r = self.num_reduced_vars
        mu_r = int(self.kept_ub_rows.size)
        me_r = int(self.kept_eq_rows.size)
        n_o, mu_o, me_o = self.num_orig_vars, self.num_orig_ub, self.num_orig_eq
        ncols_r = n_r + mu_r + mu_r + me_r
        ncols_o = n_o + mu_o + mu_o + me_o

        to_orig = np.empty(ncols_r, dtype=np.int64)
        to_orig[:n_r] = self.kept_cols
        to_orig[n_r : n_r + mu_r] = n_o + self.kept_ub_rows
        to_orig[n_r + mu_r : n_r + mu_r + mu_r] = n_o + mu_o + self.kept_ub_rows
        to_orig[n_r + mu_r + mu_r :] = n_o + mu_o + mu_o + self.kept_eq_rows

        to_reduced = np.full(ncols_o, -1, dtype=np.int64)
        to_reduced[to_orig] = np.arange(ncols_r, dtype=np.int64)
        return to_orig, to_reduced

    def restore_basis(self, basis: SimplexBasis | None) -> SimplexBasis | None:
        """Lift a reduced-space simplex basis to the original column space.

        Fixed columns re-enter nonbasic at a finite bound; each removed
        ``<=`` row re-enters with its slack basic and each removed equality
        row with its (zero-valued) artificial basic, so the lifted basis
        matrix stays nonsingular.  Returns ``None`` when the basis does not
        belong to the reduced problem.
        """
        if basis is None:
            return None
        if self.identity:
            return basis
        n_r = self.num_reduced_vars
        mu_r = int(self.kept_ub_rows.size)
        me_r = int(self.kept_eq_rows.size)
        if not basis.matches(n_r, mu_r, me_r):
            return None
        n_o, mu_o, me_o = self.num_orig_vars, self.num_orig_ub, self.num_orig_eq
        m_o = mu_o + me_o
        to_orig, _ = self._column_maps()

        status = np.full(n_o + mu_o + m_o, AT_LOWER, dtype=np.int8)
        status[to_orig] = basis.status
        # Fixed structural columns: nonbasic at a finite original bound.
        fixed = np.ones(n_o, dtype=bool)
        fixed[self.kept_cols] = False
        fixed_idx = np.nonzero(fixed)[0]
        finite_lower = np.isfinite(self.orig_lower[fixed_idx])
        finite_upper = np.isfinite(self.orig_upper[fixed_idx])
        status[fixed_idx] = np.where(
            finite_lower, AT_LOWER, np.where(finite_upper, AT_UPPER, FREE)
        )

        basic = np.empty(m_o, dtype=np.int64)
        removed_ub = np.ones(mu_o, dtype=bool)
        removed_ub[self.kept_ub_rows] = False
        removed_ub_idx = np.nonzero(removed_ub)[0]
        removed_eq = np.ones(me_o, dtype=bool)
        removed_eq[self.kept_eq_rows] = False
        removed_eq_idx = np.nonzero(removed_eq)[0]

        # Reduced basis rows are ordered kept-ub rows first, then kept-eq rows.
        basic[self.kept_ub_rows] = to_orig[basis.basic[:mu_r]]
        basic[mu_o + self.kept_eq_rows] = to_orig[basis.basic[mu_r:]]
        # Removed rows: their own slack / artificial carries the row.
        basic[removed_ub_idx] = n_o + removed_ub_idx
        status[n_o + removed_ub_idx] = BASIC
        basic[mu_o + removed_eq_idx] = n_o + mu_o + mu_o + removed_eq_idx
        status[n_o + mu_o + mu_o + removed_eq_idx] = BASIC
        return SimplexBasis(basic, status, n_o, mu_o, me_o)

    def reduce_basis(self, basis: SimplexBasis | None) -> SimplexBasis | None:
        """Map an original-space simplex basis into the reduced space.

        Succeeds when the reduction does not disturb the basis: every fixed
        column is nonbasic and every removed row is carried by its own slack
        or artificial.  Returns ``None`` otherwise (callers fall back to a
        cold solve, exactly like any stale warm start).
        """
        if basis is None:
            return None
        if self.identity:
            return basis
        n_o, mu_o, me_o = self.num_orig_vars, self.num_orig_ub, self.num_orig_eq
        if not basis.matches(n_o, mu_o, me_o):
            return None
        m_o = mu_o + me_o
        if basis.basic.shape != (m_o,) or basis.status.shape != (n_o + mu_o + m_o,):
            return None
        to_orig, to_reduced = self._column_maps()

        removed_ub = np.ones(mu_o, dtype=bool)
        removed_ub[self.kept_ub_rows] = False
        removed_eq = np.ones(me_o, dtype=bool)
        removed_eq[self.kept_eq_rows] = False
        # A removed <= row must be carried by its own slack or artificial, a
        # removed equality row by its own artificial; anything else cannot be
        # projected out of the basis.
        for r in np.nonzero(removed_ub)[0]:
            if basis.basic[r] not in (n_o + r, n_o + mu_o + r):
                return None
        for r in np.nonzero(removed_eq)[0]:
            if basis.basic[mu_o + r] != n_o + mu_o + mu_o + r:
                return None

        kept_row_positions = np.concatenate([self.kept_ub_rows, mu_o + self.kept_eq_rows])
        basic_reduced = to_reduced[basis.basic[kept_row_positions]]
        if (basic_reduced < 0).any():
            return None  # a kept row is carried by a fixed column / removed slack
        status_reduced = basis.status[to_orig].copy()
        n_r = self.num_reduced_vars
        mu_r = int(self.kept_ub_rows.size)
        me_r = int(self.kept_eq_rows.size)
        if np.count_nonzero(status_reduced == BASIC) != mu_r + me_r:
            return None
        return SimplexBasis(basic_reduced, status_reduced, n_r, mu_r, me_r)


@dataclass
class PresolveResult:
    """Outcome of :func:`presolve_form`.

    ``feasible`` is False when presolve *proved* the model infeasible (crossed
    bounds or an unsatisfiable row); ``form``/``postsolve`` are then ``None``.
    """

    feasible: bool
    form: MatrixForm | None
    postsolve: Postsolve | None
    stats: PresolveStats


def _identity_result(form: MatrixForm, stats: PresolveStats) -> PresolveResult:
    lower, upper = form.bound_arrays()
    n = form.num_variables
    postsolve = Postsolve(
        reduced_form=form,
        kept_cols=np.arange(n, dtype=np.int64),
        kept_ub_rows=np.arange(form.a_ub.shape[0], dtype=np.int64),
        kept_eq_rows=np.arange(form.a_eq.shape[0], dtype=np.int64),
        fixed_values=np.zeros(n),
        num_orig_vars=n,
        num_orig_ub=int(form.a_ub.shape[0]),
        num_orig_eq=int(form.a_eq.shape[0]),
        orig_lower=lower,
        orig_upper=upper,
        tightened_lower=lower,
        tightened_upper=upper,
        objective_offset_min=0.0,
        maximize=form.maximize,
        identity=True,
    )
    return PresolveResult(True, form, postsolve, stats)


def _select_rows_cols(matrix, rows: np.ndarray, cols: np.ndarray):
    if sp.issparse(matrix):
        reduced = matrix[rows][:, cols]
        return sp.csr_matrix(reduced)
    return np.ascontiguousarray(matrix[np.ix_(rows, cols)])


def _fixed_contribution(matrix, rows: np.ndarray, x_fixed: np.ndarray) -> np.ndarray:
    if not rows.size:
        return np.zeros(0)
    if sp.issparse(matrix):
        return np.asarray(matrix[rows] @ x_fixed).reshape(-1)
    return matrix[rows] @ x_fixed


def presolve_form(
    form: MatrixForm,
    integer_mask: np.ndarray | None = None,
    max_passes: int = _MAX_PASSES,
) -> PresolveResult:
    """Reduce ``form`` by bound propagation and fixed-variable elimination.

    Args:
        form: The matrix form to reduce (not modified).
        integer_mask: Optional boolean mask over the variables; when given,
            propagated bounds of masked variables are rounded inward.  Leave
            ``None`` for pure-LP solves — rounding is only valid when the
            variable is integrality-constrained.
        max_passes: Budget for propagation sweeps (structural elimination
            always runs to completion).

    Returns:
        A :class:`PresolveResult`; when nothing reduces, ``result.form is
        form`` so any working-matrix cache on the form stays valid.
    """
    started = time.perf_counter()
    stats = PresolveStats()
    n = form.num_variables
    mu = int(form.a_ub.shape[0])
    me = int(form.a_eq.shape[0])
    if n == 0:
        stats.presolve_ms = (time.perf_counter() - started) * 1000.0
        return _identity_result(form, stats)

    lower, upper = form.bound_arrays()
    orig_lower, orig_upper = lower.copy(), upper.copy()
    if integer_mask is not None:
        integer_mask = np.asarray(integer_mask, dtype=bool)
        _round_integer_bounds(lower, upper, integer_mask)

    ub_rows = _Rows(form.a_ub)
    eq_rows = _Rows(form.a_eq)
    # Coefficient tightening mutates the <= triplets and right-hand sides;
    # copy so the caller's form stays untouched (asarray may alias it).
    b_ub = np.array(form.b_ub, dtype=np.float64).reshape(-1)
    b_eq = np.asarray(form.b_eq, dtype=np.float64).reshape(-1)
    active_ub = np.ones(mu, dtype=bool)
    active_eq = np.ones(me, dtype=bool)
    ub_tol = _row_tolerance(b_ub)
    eq_tol = _row_tolerance(b_eq)

    def infeasible() -> PresolveResult:
        stats.presolve_ms = (time.perf_counter() - started) * 1000.0
        return PresolveResult(False, None, None, stats)

    fix_tol = _FIX_TOLERANCE * np.maximum(1.0, np.abs(lower))
    if np.any(lower > upper + fix_tol):
        return infeasible()

    for _ in range(max_passes):
        stats.passes += 1
        tightened = 0

        ub_rows.compute_activities(lower, upper)
        if np.any(active_ub & (ub_rows.min_act > b_ub + ub_tol)):
            return infeasible()
        # Redundant <= rows: can never bind under the current bounds.
        redundant = active_ub & (ub_rows.max_act <= b_ub + ub_tol)
        if redundant.any():
            active_ub[redundant] = False
        tightened += _propagate_le(ub_rows, b_ub, active_ub, lower, upper)
        # Pass-start activities are valid (possibly loose) bounds for the
        # tightening surplus even after the propagation above moved bounds.
        coeffs = _tighten_row_coefficients(
            ub_rows, b_ub, active_ub, lower, upper, integer_mask
        )
        if coeffs:
            stats.coefficients_tightened += coeffs
            ub_tol = _row_tolerance(b_ub)

        eq_rows.compute_activities(lower, upper)
        if np.any(active_eq & (eq_rows.min_act > b_eq + eq_tol)):
            return infeasible()
        if np.any(active_eq & (eq_rows.max_act < b_eq - eq_tol)):
            return infeasible()
        # Forced equality rows: every point within bounds satisfies them.
        forced = active_eq & (eq_rows.max_act <= b_eq + eq_tol) & (eq_rows.min_act >= b_eq - eq_tol)
        if forced.any():
            active_eq[forced] = False
        tightened += _propagate_le(eq_rows, b_eq, active_eq, lower, upper)
        tightened += _propagate_ge(eq_rows, b_eq, active_eq, lower, upper)

        _round_integer_bounds(lower, upper, integer_mask)
        fix_tol = _FIX_TOLERANCE * np.maximum(1.0, np.abs(lower))
        if np.any(lower > upper + fix_tol):
            return infeasible()
        stats.bounds_tightened += tightened
        if tightened == 0 and coeffs == 0:
            break

    # One final activity refresh so the redundancy masks reflect the last pass.
    ub_rows.compute_activities(lower, upper)
    if np.any(active_ub & (ub_rows.min_act > b_ub + ub_tol)):
        return infeasible()
    active_ub &= ~(ub_rows.max_act <= b_ub + ub_tol)
    eq_rows.compute_activities(lower, upper)
    if np.any(active_eq & (eq_rows.min_act > b_eq + eq_tol)):
        return infeasible()
    if np.any(active_eq & (eq_rows.max_act < b_eq - eq_tol)):
        return infeasible()
    active_eq &= ~((eq_rows.max_act <= b_eq + eq_tol) & (eq_rows.min_act >= b_eq - eq_tol))

    finite = np.isfinite(lower) & np.isfinite(upper)
    span = np.full(n, np.inf)
    span[finite] = upper[finite] - lower[finite]
    fixed = span <= _FIX_TOLERANCE * np.maximum(1.0, np.abs(np.where(finite, lower, 0.0)))
    stats.vars_fixed = int(np.count_nonzero(fixed))
    stats.rows_removed = int(np.count_nonzero(~active_ub) + np.count_nonzero(~active_eq))

    # Tightened coefficients need fresh constraint matrices, so that case
    # always takes the general reduction path below.
    a_ub_eff = form.a_ub
    if stats.coefficients_tightened:
        if sp.issparse(form.a_ub):
            a_ub_eff = sp.csr_matrix(
                sp.coo_matrix((ub_rows.data, (ub_rows.row, ub_rows.col)), shape=(mu, n))
            )
        else:
            a_ub_eff = np.zeros((mu, n))
            a_ub_eff[ub_rows.row, ub_rows.col] = ub_rows.data

    bounds_changed = bool(np.any(lower != orig_lower) or np.any(upper != orig_upper))
    if stats.vars_fixed == 0 and stats.rows_removed == 0 and stats.coefficients_tightened == 0:
        stats.presolve_ms = (time.perf_counter() - started) * 1000.0
        if not bounds_changed:
            return _identity_result(form, stats)
        # Bounds-only tightening: share the matrices (and the cached simplex
        # working matrix) through a with_bounds view.
        reduced = form.with_bounds(lower, upper)
        result = _identity_result(reduced, stats)
        result.postsolve.orig_lower = orig_lower
        result.postsolve.orig_upper = orig_upper
        if integer_mask is not None:
            result.postsolve.integer_mask = integer_mask
        return result

    kept = ~fixed
    kept_cols = np.nonzero(kept)[0].astype(np.int64)
    kept_ub = np.nonzero(active_ub)[0].astype(np.int64)
    kept_eq = np.nonzero(active_eq)[0].astype(np.int64)

    fixed_values = np.zeros(n)
    fixed_idx = np.nonzero(fixed)[0]
    midpoints = 0.5 * (lower[fixed_idx] + upper[fixed_idx])
    if integer_mask is not None:
        midpoints = np.where(integer_mask[fixed_idx], np.rint(midpoints), midpoints)
    fixed_values[fixed_idx] = midpoints

    b_ub_reduced = b_ub[kept_ub] - _fixed_contribution(a_ub_eff, kept_ub, fixed_values)
    b_eq_reduced = b_eq[kept_eq] - _fixed_contribution(form.a_eq, kept_eq, fixed_values)
    a_ub_reduced = _select_rows_cols(a_ub_eff, kept_ub, kept_cols)
    a_eq_reduced = _select_rows_cols(form.a_eq, kept_eq, kept_cols)

    reduced_lower = lower[kept_cols]
    reduced_upper = upper[kept_cols]
    reduced_form = MatrixForm(
        c=np.ascontiguousarray(form.c[kept_cols]),
        a_ub=a_ub_reduced,
        b_ub=b_ub_reduced,
        a_eq=a_eq_reduced,
        b_eq=b_eq_reduced,
        bounds=(reduced_lower.copy(), reduced_upper.copy()),
        maximize=form.maximize,
    )
    postsolve = Postsolve(
        reduced_form=reduced_form,
        kept_cols=kept_cols,
        kept_ub_rows=kept_ub,
        kept_eq_rows=kept_eq,
        fixed_values=fixed_values,
        num_orig_vars=n,
        num_orig_ub=mu,
        num_orig_eq=me,
        orig_lower=orig_lower,
        orig_upper=orig_upper,
        tightened_lower=reduced_lower,
        tightened_upper=reduced_upper,
        objective_offset_min=float(form.c[fixed_idx] @ fixed_values[fixed_idx]),
        maximize=form.maximize,
        integer_mask=integer_mask[kept_cols] if integer_mask is not None else None,
    )
    stats.presolve_ms = (time.perf_counter() - started) * 1000.0
    return PresolveResult(True, reduced_form, postsolve, stats)
