"""LP-relaxation + greedy rounding heuristic solver.

The related-work section of the paper discusses LP-relaxation rounding as a
standard approach to approximating ILPs.  This solver implements that idea:

1. solve the LP relaxation,
2. round integer variables to the nearest integers,
3. run a small greedy repair loop that nudges variables up or down to remove
   remaining constraint violations,
4. report FEASIBLE (never OPTIMAL, since optimality is not proven) or
   INFEASIBLE if repair fails.

Its purpose in this repository is twofold: it serves as an additional baseline
in the benchmark ablations, and — because it implements the same
``solve(model) -> Solution`` protocol as the branch-and-bound solver — it
demonstrates that DIRECT and SKETCHREFINE treat the ILP solver as a genuine
black box, a property the paper emphasises in Section 4.5.
"""

from __future__ import annotations

import numpy as np

from repro.ilp.lp_backend import LpBackend, solve_lp
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense
from repro.ilp.status import Solution, SolveStats, SolverStatus

_MAX_REPAIR_PASSES = 200


class RelaxAndRoundSolver:
    """Approximate ILP solver based on LP relaxation and greedy repair."""

    def __init__(self, lp_backend: LpBackend = LpBackend.HIGHS):
        self.lp_backend = lp_backend

    def solve(self, model: IlpModel) -> Solution:
        """Return a feasible (not necessarily optimal) solution, or INFEASIBLE."""
        stats = SolveStats()
        relaxed = solve_lp(model, self.lp_backend)
        stats.lp_solves += 1
        if relaxed.status is SolverStatus.INFEASIBLE:
            return Solution.infeasible(stats)
        if not relaxed.has_solution:
            return Solution.failure(relaxed.status, stats)

        values = relaxed.values.copy()
        integer_mask = np.array([v.is_integer for v in model.variables], dtype=bool)
        values[integer_mask] = np.rint(values[integer_mask])
        values = self._clip_to_bounds(model, values)

        repaired = self._repair(model, values)
        if repaired is None:
            return Solution.infeasible(stats)
        objective = model.objective_value(repaired)
        stats.incumbent_updates = 1
        return Solution(SolverStatus.FEASIBLE, repaired, objective, stats)

    # -- internals ------------------------------------------------------------------

    @staticmethod
    def _clip_to_bounds(model: IlpModel, values: np.ndarray) -> np.ndarray:
        lower = np.array([v.lower for v in model.variables])
        upper = np.array([np.inf if v.upper is None else v.upper for v in model.variables])
        return np.clip(values, lower, upper)

    def _repair(self, model: IlpModel, values: np.ndarray) -> np.ndarray | None:
        """Greedy repair: adjust one variable per pass to reduce the worst violation.

        The total violation must strictly decrease every pass.  Two coupled
        constraints can otherwise make the greedy step oscillate a variable
        ±1 forever (fixing one constraint re-violates the other), burning the
        whole pass budget on a livelock; a pass that fails to make progress
        means repair has stalled and the heuristic gives up immediately.
        """
        values = values.copy()
        previous_total = float("inf")
        for _ in range(_MAX_REPAIR_PASSES):
            violated = [c for c in model.constraints if not c.is_satisfied(values)]
            if not violated:
                return values
            total = sum(c.violation(values) for c in violated)
            if np.isfinite(previous_total) and total >= previous_total - 1e-12 * max(
                1.0, previous_total
            ):
                return None
            previous_total = total
            worst = max(violated, key=lambda c: c.violation(values))
            if not self._fix_constraint(model, worst, values):
                return None
        return None

    def _fix_constraint(self, model: IlpModel, constraint, values: np.ndarray) -> bool:
        """Nudge one variable by one unit in the direction that helps ``constraint``.

        Picks the adjustment with the smallest objective degradation among
        those that stay within variable bounds.  Returns False when no single
        step can reduce the violation.
        """
        lhs = constraint.evaluate(values)
        need_decrease = (
            constraint.sense is ConstraintSense.LE and lhs > constraint.rhs
        ) or (constraint.sense is ConstraintSense.EQ and lhs > constraint.rhs)

        sense = model.objective.sense
        best_index: int | None = None
        best_penalty = float("inf")
        best_delta = 0.0
        for idx, coef in constraint.coefficients.items():
            variable = model.variables[idx]
            # Moving x_idx by delta changes the lhs by coef * delta.
            delta = -1.0 if (coef > 0) == need_decrease else 1.0
            new_value = values[idx] + delta
            if new_value < variable.lower - 1e-9:
                continue
            if variable.upper is not None and new_value > variable.upper + 1e-9:
                continue
            objective_coef = model.objective.coefficients.get(idx, 0.0)
            change = objective_coef * delta
            penalty = change if sense is ObjectiveSense.MINIMIZE else -change
            if penalty < best_penalty:
                best_penalty = penalty
                best_index = idx
                best_delta = delta
        if best_index is None:
            return False
        values[best_index] += best_delta
        return True
