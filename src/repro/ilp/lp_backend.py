"""LP relaxation backends.

Branch and bound needs to repeatedly solve LP relaxations.  Two backends are
provided:

* ``HIGHS`` — :func:`scipy.optimize.linprog` with the HiGHS method (default,
  fast and robust), and
* ``SIMPLEX`` — the pure-NumPy dense simplex in :mod:`repro.ilp.simplex`,
  kept as an independent implementation both for environments without SciPy's
  HiGHS and as a cross-check in the test-suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError
from repro.ilp.model import DenseForm, IlpModel
from repro.ilp.simplex import SimplexResult, SimplexStatus, solve_dense_simplex
from repro.ilp.status import Solution, SolveStats, SolverStatus


class LpBackend(enum.Enum):
    """Which LP algorithm backs the relaxation solves."""

    HIGHS = "highs"
    SIMPLEX = "simplex"


@dataclass
class LpResult:
    """Result of one LP relaxation solve (always in the model's own sense)."""

    status: SolverStatus
    values: np.ndarray
    objective_value: float


def solve_lp_dense(dense: DenseForm, backend: LpBackend = LpBackend.HIGHS) -> LpResult:
    """Solve the LP relaxation of a dense-form model."""
    if backend is LpBackend.HIGHS:
        return _solve_highs(dense)
    return _solve_simplex(dense)


def solve_lp(model: IlpModel, backend: LpBackend = LpBackend.HIGHS) -> Solution:
    """Solve the LP relaxation of ``model`` and wrap the result as a Solution."""
    dense = model.to_dense()
    result = solve_lp_dense(dense, backend)
    stats = SolveStats(lp_solves=1)
    if not result.status.has_solution:
        return Solution(result.status, stats=stats)
    return Solution(
        status=result.status,
        values=result.values,
        objective_value=result.objective_value,
        stats=stats,
    )


def _solve_highs(dense: DenseForm) -> LpResult:
    bounds = [(low, up) for low, up in dense.bounds]
    result = linprog(
        c=dense.c,
        A_ub=dense.a_ub if dense.a_ub.size else None,
        b_ub=dense.b_ub if dense.b_ub.size else None,
        A_eq=dense.a_eq if dense.a_eq.size else None,
        b_eq=dense.b_eq if dense.b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 0:
        return LpResult(SolverStatus.OPTIMAL, np.asarray(result.x), dense.objective_from_min(result.fun))
    if result.status == 2:
        return LpResult(SolverStatus.INFEASIBLE, np.empty(0), float("nan"))
    if result.status == 3:
        return LpResult(SolverStatus.UNBOUNDED, np.empty(0), float("nan"))
    raise SolverError(f"HiGHS LP solve failed: {result.message}")


def _solve_simplex(dense: DenseForm) -> LpResult:
    simplex_result: SimplexResult = solve_dense_simplex(
        c=dense.c,
        a_ub=dense.a_ub,
        b_ub=dense.b_ub,
        a_eq=dense.a_eq,
        b_eq=dense.b_eq,
        bounds=dense.bounds,
    )
    if simplex_result.status is SimplexStatus.OPTIMAL:
        return LpResult(
            SolverStatus.OPTIMAL,
            simplex_result.x,
            dense.objective_from_min(simplex_result.objective),
        )
    if simplex_result.status is SimplexStatus.INFEASIBLE:
        return LpResult(SolverStatus.INFEASIBLE, np.empty(0), float("nan"))
    if simplex_result.status is SimplexStatus.UNBOUNDED:
        return LpResult(SolverStatus.UNBOUNDED, np.empty(0), float("nan"))
    raise SolverError("simplex LP solve did not converge")
