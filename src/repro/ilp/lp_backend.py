"""LP relaxation backends and the warm-start protocol.

Branch and bound needs to repeatedly solve LP relaxations that differ only in
variable bounds.  Two backends are provided:

* ``HIGHS`` — :func:`scipy.optimize.linprog` with the HiGHS method (default,
  fast and robust), and
* ``SIMPLEX`` — the pure-NumPy bounded-variable revised simplex in
  :mod:`repro.ilp.simplex`, kept as an independent implementation both for
  environments without SciPy's HiGHS and as a cross-check in the test-suite.

Both consume the :class:`~repro.ilp.matrix_form.MatrixForm` IR directly:
sparse forms hand their ``scipy.sparse`` CSR matrices straight to HiGHS (no
densification), and the simplex assembles its working matrix once per form
and caches it on the form, so every bounds-only
:meth:`~repro.ilp.matrix_form.MatrixForm.with_bounds` view (read: every
branch-and-bound node) reuses the same copy.

Backend choice: HiGHS wins on large cold solves (compiled code, presolve);
SIMPLEX wins on *sequences* of related small solves because it supports the
basis-reuse protocol below, which SciPy's ``linprog`` interface does not
expose.

The warm-start protocol: an optimal SIMPLEX solve returns its final basis in
:attr:`LpResult.basis`.  A caller about to solve a *related* problem (same
constraint matrix, different bounds — e.g. a branch-and-bound child node)
wraps that basis in a :class:`WarmStart` and passes it to
:func:`solve_lp_form`.  The simplex then reoptimises with dual pivots from
the parent basis instead of solving from scratch; a stale or invalid basis is
detected and silently falls back to a cold solve
(:attr:`LpResult.warm_start_used` reports what actually happened).  The
HIGHS backend ignores warm starts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError
from repro.ilp.matrix_form import MatrixForm
from repro.ilp.model import IlpModel
from repro.ilp.presolve import PresolveResult, presolve_form
from repro.ilp.simplex import (
    PricingRule,
    SimplexBasis,
    SimplexResult,
    SimplexStatus,
    solve_form_simplex,
)
from repro.ilp.status import Solution, SolveStats, SolverStatus

#: ``form.cache`` slot for the memoized presolve reduction (keyed by a bounds
#: fingerprint, since ``with_bounds`` views share one cache dict).
_PRESOLVE_CACHE_KEY = "lp_presolve"


class LpBackend(enum.Enum):
    """Which LP algorithm backs the relaxation solves."""

    HIGHS = "highs"
    SIMPLEX = "simplex"


@dataclass
class WarmStart:
    """Solver state carried from one LP solve to a related one.

    Currently holds the simplex basis; only the SIMPLEX backend consumes it.
    """

    basis: SimplexBasis | None = None


@dataclass
class LpResult:
    """Result of one LP relaxation solve (always in the model's own sense).

    Attributes:
        status: Solve outcome.
        values: Optimal assignment (empty when no solution).
        objective_value: Objective in the model's sense (NaN when no solution).
        basis: Final simplex basis on optimal SIMPLEX solves, reusable as a
            :class:`WarmStart` for related problems; ``None`` for HiGHS.
        iterations: Simplex iterations spent (0 for HiGHS).
        warm_start_used: Whether a supplied warm start was actually consumed
            rather than rejected (stale basis) or ignored (HiGHS).
        refactorizations: Basis refactorisations during the solve (SIMPLEX).
        eta_peak: Longest eta file between refactorisations (SIMPLEX).
        pricing: Resolved pricing rule that drove the solve ("" for HiGHS).
    """

    status: SolverStatus
    values: np.ndarray
    objective_value: float
    basis: SimplexBasis | None = None
    iterations: int = 0
    warm_start_used: bool = False
    refactorizations: int = 0
    eta_peak: int = 0
    pricing: str = ""


def solve_lp_form(
    form: MatrixForm,
    backend: LpBackend = LpBackend.HIGHS,
    warm_start: WarmStart | None = None,
    presolve: bool = True,
    pricing: PricingRule = PricingRule.AUTO,
) -> LpResult:
    """Solve the LP relaxation of a matrix-form model.

    With ``presolve`` (the default) the form is first reduced by
    :func:`~repro.ilp.presolve.presolve_form` — bound propagation, fixed
    variables eliminated, redundant rows dropped — and the result is mapped
    back through the reduction's postsolve record: values, objective *and*
    basis all come back in the original space, and a supplied warm-start
    basis is projected into the reduced space, so the warm-start protocol is
    unaffected.  The reduction is memoized on ``form.cache`` (keyed by the
    bounds), so repeated solves of the same form presolve once.  Callers that
    manage their own reduction (branch-and-bound) pass ``presolve=False``.
    """
    if not presolve:
        return _dispatch(form, backend, warm_start, pricing)
    reduction = _cached_presolve(form)
    if not reduction.feasible:
        return LpResult(SolverStatus.INFEASIBLE, np.empty(0), float("nan"))
    postsolve = reduction.postsolve
    if reduction.form is form:
        return _dispatch(form, backend, warm_start, pricing)
    reduced_warm = None
    if warm_start is not None and warm_start.basis is not None:
        mapped = postsolve.reduce_basis(warm_start.basis)
        if mapped is not None:
            reduced_warm = WarmStart(basis=mapped)
        elif (
            backend is LpBackend.SIMPLEX
            and isinstance(warm_start.basis, SimplexBasis)
            and warm_start.basis.matches(
                postsolve.num_orig_vars, postsolve.num_orig_ub, postsolve.num_orig_eq
            )
        ):
            # The reduction conflicts with the caller's basis (typically it
            # fixed a column that is basic there).  A dual reoptimisation
            # from that basis is usually cheaper than a cold reduced solve,
            # so the warm start wins and presolve steps aside.
            return _dispatch(form, backend, warm_start, pricing)
    if postsolve.num_reduced_vars == 0:
        # Everything fixed by presolve; the remaining rows were all removed
        # (or the reduction would have been infeasible).
        values = postsolve.restore(np.empty(0))
        return LpResult(
            SolverStatus.OPTIMAL, values, form.objective_from_min(float(form.c @ values))
        )
    result = _dispatch(reduction.form, backend, reduced_warm, pricing)
    if not result.status.has_solution:
        return LpResult(
            result.status,
            result.values,
            result.objective_value,
            iterations=result.iterations,
            warm_start_used=result.warm_start_used,
            refactorizations=result.refactorizations,
            eta_peak=result.eta_peak,
            pricing=result.pricing,
        )
    return LpResult(
        result.status,
        postsolve.restore(result.values),
        result.objective_value + postsolve.objective_offset,
        basis=postsolve.restore_basis(result.basis),
        iterations=result.iterations,
        warm_start_used=result.warm_start_used,
        refactorizations=result.refactorizations,
        eta_peak=result.eta_peak,
        pricing=result.pricing,
    )


def _dispatch(
    form: MatrixForm,
    backend: LpBackend,
    warm_start: WarmStart | None,
    pricing: PricingRule = PricingRule.AUTO,
) -> LpResult:
    if backend is LpBackend.HIGHS:
        return _solve_highs(form)
    return _solve_simplex(form, warm_start, pricing)


def _cached_presolve(form: MatrixForm) -> PresolveResult:
    lower, upper = form.bound_arrays()
    key = (lower.tobytes(), upper.tobytes())
    cached = form.cache.get(_PRESOLVE_CACHE_KEY)
    if cached is not None and cached[0] == key:
        return cached[1]
    reduction = presolve_form(form)
    form.cache[_PRESOLVE_CACHE_KEY] = (key, reduction)
    return reduction


# PR 1 name, kept for compatibility with existing callers/tests.
solve_lp_dense = solve_lp_form
# The presolve-aware entry point under its architectural name.
solve_form = solve_lp_form


def solve_lp(
    model: IlpModel,
    backend: LpBackend = LpBackend.HIGHS,
    warm_start: WarmStart | None = None,
) -> Solution:
    """Solve the LP relaxation of ``model`` and wrap the result as a Solution.

    Uses the model's memoized matrix form, so repeated relaxation solves of
    the same model share one export (and one simplex working matrix).
    """
    form = model.to_matrix()
    result = solve_lp_form(form, backend, warm_start)
    stats = SolveStats(
        lp_solves=1,
        simplex_iterations=result.iterations,
        warm_start_hits=1 if result.warm_start_used else 0,
        refactorizations=result.refactorizations,
        eta_peak=result.eta_peak,
        pricing_rule=result.pricing,
    )
    if not result.status.has_solution:
        return Solution(result.status, stats=stats)
    return Solution(
        status=result.status,
        values=result.values,
        objective_value=result.objective_value,
        stats=stats,
    )


def _solve_highs(form: MatrixForm) -> LpResult:
    lower, upper = form.bound_arrays()
    # HiGHS accepts scipy.sparse matrices directly; a sparse form is passed
    # through without densification.
    result = linprog(
        c=form.c,
        A_ub=form.a_ub if form.a_ub.shape[0] else None,
        b_ub=form.b_ub if form.b_ub.size else None,
        A_eq=form.a_eq if form.a_eq.shape[0] else None,
        b_eq=form.b_eq if form.b_eq.size else None,
        bounds=np.column_stack([lower, upper]),
        method="highs",
    )
    if result.status == 0:
        return LpResult(SolverStatus.OPTIMAL, np.asarray(result.x), form.objective_from_min(result.fun))
    if result.status == 2:
        return LpResult(SolverStatus.INFEASIBLE, np.empty(0), float("nan"))
    if result.status == 3:
        return LpResult(SolverStatus.UNBOUNDED, np.empty(0), float("nan"))
    raise SolverError(f"HiGHS LP solve failed: {result.message}")


def _solve_simplex(
    form: MatrixForm,
    warm_start: WarmStart | None = None,
    pricing: PricingRule = PricingRule.AUTO,
) -> LpResult:
    basis = warm_start.basis if warm_start is not None else None
    simplex_result: SimplexResult = solve_form_simplex(
        form, warm_start=basis, pricing=pricing
    )
    if simplex_result.status is SimplexStatus.OPTIMAL:
        return LpResult(
            SolverStatus.OPTIMAL,
            simplex_result.x,
            form.objective_from_min(simplex_result.objective),
            basis=simplex_result.basis,
            iterations=simplex_result.iterations,
            warm_start_used=simplex_result.warm_started,
            refactorizations=simplex_result.refactorizations,
            eta_peak=simplex_result.eta_peak,
            pricing=simplex_result.pricing,
        )
    status_map = {
        SimplexStatus.INFEASIBLE: SolverStatus.INFEASIBLE,
        SimplexStatus.UNBOUNDED: SolverStatus.UNBOUNDED,
        # NUMERICAL_ERROR is surfaced (not raised) so branch-and-bound can
        # retry the node cold rather than aborting — or worse, pruning — the
        # subtree.
        SimplexStatus.NUMERICAL_ERROR: SolverStatus.NUMERICAL_ERROR,
    }
    mapped = status_map.get(simplex_result.status)
    if mapped is None:
        raise SolverError("simplex LP solve did not converge")
    return LpResult(
        mapped,
        np.empty(0),
        float("nan"),
        iterations=simplex_result.iterations,
        warm_start_used=simplex_result.warm_started,
        refactorizations=simplex_result.refactorizations,
        eta_peak=simplex_result.eta_peak,
        pricing=simplex_result.pricing,
    )
