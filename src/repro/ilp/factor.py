"""LU-factorised simplex basis with an eta file of pivot updates.

PR 1's revised simplex maintained an explicit dense ``m×m`` basis inverse:
every pivot was a rank-one outer-product update (O(m²)) and every
refactorisation a full ``np.linalg.inv`` (no pivoting for stability).  This
module replaces that with the representation production LP codes use:

* **LU factors of B** (partial pivoting, LAPACK ``getrf`` via
  :func:`scipy.linalg.lu_factor`) computed at *refactorisation points*, and
* an **eta file** — the product-form update vectors of the pivots applied
  since the last refactorisation.  After ``k`` pivots the basis satisfies
  ``B_k = B_0 · E_1⁻¹ ⋯ E_k⁻¹``, so ``B_k⁻¹ v = E_k ⋯ E_1 (B_0⁻¹ v)``.

All basis solves go through three entry points:

* :meth:`BasisFactor.ftran` — ``B⁻¹ v`` (entering-column transformation,
  basic-value computation),
* :meth:`BasisFactor.btran` — ``v B⁻¹`` i.e. the solution of ``y B = v``
  (dual/pricing vector), and
* :meth:`BasisFactor.btran_row` — row ``r`` of ``B⁻¹`` (the dual-simplex
  pivot row), which is just ``btran(e_r)``.

A pivot appends one eta vector in O(m) (:meth:`update`); the dense-inverse
scheme paid O(m²) per pivot.  Refactorisation is *stability-triggered* — an
eta pivot smaller than :data:`STABILITY_TOLERANCE` relative to its column is
refused and the caller refactorises — as well as periodic (the caller bounds
the eta-file length so FTRAN/BTRAN stay O(m² + k·m) with small ``k``).

Factors are **forkable**: :meth:`fork` snapshots the factorisation in O(k)
by sharing the immutable LU arrays and copying the eta list.  This is the
warm-start protocol over factors — an optimal solve exports its basis *with*
its factor attached, and a related reoptimisation (branch-and-bound child,
SKETCHREFINE backtracking retry) installs the fork instead of refactorising
from scratch.  Forked factors never ship across the process boundary: they
are derived per-process state, dropped by
:meth:`~repro.ilp.simplex.SimplexBasis.__getstate__`.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

#: An eta pivot must be at least this large relative to the largest entry of
#: its transformed column; smaller pivots refuse the update and force a
#: refactorisation (the product-form analogue of partial pivoting).
STABILITY_TOLERANCE = 1e-8

#: U diagonal entries below this (relative to the largest) mean the basis
#: matrix is numerically singular and the factorisation is rejected.
_SINGULAR_TOLERANCE = 1e-12


class BasisFactor:
    """LU factors of a basis matrix plus the eta file of later pivots.

    Instances are created through :meth:`factorize` (or :meth:`identity` for
    the all-artificial start basis, whose matrix is I) and advanced by
    :meth:`update` after each simplex pivot.  The LU arrays are immutable
    once built; the eta list only ever appends — which is what makes
    :meth:`fork` an O(k) snapshot safe to hand to a different solve.
    """

    __slots__ = ("m", "_lu", "_piv", "_etas")

    def __init__(self, m: int, lu: np.ndarray | None, piv: np.ndarray | None):
        self.m = m
        self._lu = lu
        self._piv = piv
        # Each eta is (row, pivot, scale) with scale = w, w[row] zeroed:
        # applying it to a column vector x is  t = x[row]/pivot;
        # x -= scale·t; x[row] = t.
        self._etas: list[tuple[int, float, np.ndarray]] = []

    # -- construction -------------------------------------------------------------

    @classmethod
    def identity(cls, m: int) -> "BasisFactor":
        """The factor of the ``m×m`` identity (the all-artificial basis)."""
        return cls(m, None, None)

    @classmethod
    def factorize(cls, basis_matrix: np.ndarray) -> "BasisFactor | None":
        """LU-factorise a basis matrix; ``None`` when singular/non-finite."""
        matrix = np.asarray(basis_matrix, dtype=np.float64)
        m = matrix.shape[0]
        if m == 0:
            return cls.identity(0)
        if not np.all(np.isfinite(matrix)):
            return None
        try:
            lu, piv = sla.lu_factor(matrix, check_finite=False)
        except (ValueError, sla.LinAlgError):
            return None
        if not np.all(np.isfinite(lu)):
            return None
        diag = np.abs(np.diagonal(lu))
        if diag.min() <= _SINGULAR_TOLERANCE * max(1.0, float(diag.max())):
            return None
        return cls(m, lu, piv)

    def fork(self) -> "BasisFactor":
        """An O(k) snapshot sharing the LU arrays; etas append independently.

        The snapshot answers FTRAN/BTRAN for exactly the basis this factor
        currently represents, and later :meth:`update` calls on either copy
        do not affect the other (eta tuples are immutable once appended).
        """
        child = BasisFactor(self.m, self._lu, self._piv)
        child._etas = list(self._etas)
        return child

    # -- introspection ------------------------------------------------------------

    @property
    def eta_count(self) -> int:
        """Pivots applied since the last refactorisation."""
        return len(self._etas)

    def matches(self, m: int) -> bool:
        """Whether this factor solves systems of the given dimension."""
        return self.m == m

    # -- solves -------------------------------------------------------------------

    def ftran(self, v: np.ndarray) -> np.ndarray:
        """``B⁻¹ v`` — forward transformation through LU then the eta file."""
        if self.m == 0:
            return np.zeros(0)
        if self._lu is None:
            x = np.array(v, dtype=np.float64, copy=True)
        else:
            x = sla.lu_solve((self._lu, self._piv), v, check_finite=False)
        for row, pivot, scale in self._etas:
            t = x[row] / pivot
            x -= scale * t
            x[row] = t
        return x

    def btran(self, v: np.ndarray) -> np.ndarray:
        """``v B⁻¹`` — backward transformation: etas in reverse, then Uᵀ/Lᵀ."""
        if self.m == 0:
            return np.zeros(0)
        y = np.array(v, dtype=np.float64, copy=True)
        for row, pivot, scale in reversed(self._etas):
            y[row] = (y[row] - y @ scale) / pivot
        if self._lu is None:
            return y
        return sla.lu_solve((self._lu, self._piv), y, trans=1, check_finite=False)

    def btran_row(self, r: int) -> np.ndarray:
        """Row ``r`` of ``B⁻¹`` (``e_r B⁻¹``), the dual-simplex pivot row."""
        e = np.zeros(self.m)
        e[r] = 1.0
        return self.btran(e)

    # -- updates ------------------------------------------------------------------

    def update(self, row: int, w: np.ndarray) -> bool:
        """Append the eta of a pivot at ``row`` with FTRAN'd column ``w``.

        ``w`` must be ``ftran`` of the entering column *before* the update
        (the classic product-form construction).  Returns ``False`` — eta not
        appended — when the pivot element is too small relative to the column
        to be numerically trustworthy; the caller must refactorise instead.
        """
        pivot = float(w[row])
        if not np.isfinite(pivot):
            return False
        if abs(pivot) < STABILITY_TOLERANCE * max(1.0, float(np.abs(w).max())):
            return False
        scale = np.array(w, dtype=np.float64, copy=True)
        scale[row] = 0.0
        self._etas.append((row, pivot, scale))
        return True
