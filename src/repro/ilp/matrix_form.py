"""The matrix-form IR shared by every LP/ILP consumer.

A :class:`MatrixForm` is the single intermediate representation between an
:class:`~repro.ilp.model.IlpModel` and the solvers: the minimisation-form
objective vector, the ``A_ub x <= b_ub`` / ``A_eq x = b_eq`` constraint
matrices and the variable bounds.  It replaces the old ``DenseForm``.

Storage is *sparse-first*: constraint matrices are ``scipy.sparse`` CSR
(``data`` / ``indices`` / ``indptr`` arrays) assembled in O(nnz) from the
model's per-constraint coefficient arrays.  Two situations fall back to plain
dense ``numpy`` arrays:

* tiny models (fewer than :data:`DENSE_FALLBACK_ENTRIES` matrix entries),
  where per-call ``scipy.sparse`` overhead dominates any storage saving, and
* very dense matrices, where CSR's index arrays would make the sparse copy
  *larger* than the dense one (package-query COUNT/SUM rows are often fully
  dense; a CSR entry costs 12 bytes against 8 for a dense cell).

Both representations expose the same interface, so consumers never branch on
the storage kind except through :attr:`MatrixForm.is_sparse`.

The form is immutable once built and is designed for structural sharing:
:meth:`with_bounds` derives a per-node view for branch-and-bound that shares
the objective and constraint buffers (and the ``cache`` dict, which the
simplex uses to memoise its assembled working matrix) while carrying its own
bounds vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse as sp

#: Below this many matrix entries (rows x cols) the dense fallback is used
#: unconditionally: every package-query refine ILP and most unit-test models
#: live here, and dense numpy beats scipy.sparse on per-call overhead.
DENSE_FALLBACK_ENTRIES = 16_384

#: Approximate bytes per stored CSR entry (float64 value + int32 column
#: index); used to decide whether the sparse copy would actually be smaller.
_CSR_BYTES_PER_ENTRY = 12
_DENSE_BYTES_PER_ENTRY = 8


def choose_sparse(num_entries: int, nnz: int) -> bool:
    """Whether CSR storage is worthwhile for a matrix of the given shape.

    Sparse wins when the matrix is big enough to matter *and* the CSR copy is
    genuinely smaller than the dense one.
    """
    if num_entries <= DENSE_FALLBACK_ENTRIES:
        return False
    return nnz * _CSR_BYTES_PER_ENTRY < num_entries * _DENSE_BYTES_PER_ENTRY


def _matrix_bytes(matrix) -> int:
    if sp.issparse(matrix):
        return matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    return matrix.nbytes


@dataclass
class MatrixForm:
    """Matrix export of an :class:`~repro.ilp.model.IlpModel` (a minimisation).

    Attributes:
        c: Objective vector (already negated for maximisation models).
        a_ub: ``<=`` constraint matrix — ``scipy.sparse.csr_matrix`` or a
            dense ``ndarray`` (see module docstring for the fallback policy).
            GE model constraints appear negated here.
        b_ub: Right-hand sides of the ``<=`` rows.
        a_eq: Equality constraint matrix (same storage policy as ``a_ub``).
        b_eq: Right-hand sides of the equality rows.
        bounds: Either the list-of-pairs form produced by
            :meth:`~repro.ilp.model.IlpModel.to_matrix` (``None`` meaning
            unbounded) or a ``(lower_array, upper_array)`` pair using ``±inf``
            — the latter is what branch-and-bound uses to derive per-node
            forms without copying the matrices (see :meth:`with_bounds`).
        maximize: Whether the source model maximises (for converting the
            minimised objective back).
        cache: Scratch dict shared by every :meth:`with_bounds` view of this
            form.  The simplex stores its assembled working matrix here so all
            branch-and-bound nodes reuse one copy.
    """

    c: np.ndarray
    a_ub: "sp.csr_matrix | np.ndarray"
    b_ub: np.ndarray
    a_eq: "sp.csr_matrix | np.ndarray"
    b_eq: np.ndarray
    bounds: "list[tuple[float, float | None]] | tuple[np.ndarray, np.ndarray]"
    maximize: bool
    cache: dict = field(default_factory=dict, repr=False, compare=False)

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Ship the form without its per-process working caches.

        The ``cache`` dict holds the simplex's assembled working matrix and
        the LP presolve memo — derived, process-local state that would bloat
        the pickle and, worse, alias one process's scratch objects into
        another.  Workers rebuild them on first use.
        """
        state = self.__dict__.copy()
        state["cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.cache = {}

    # -- storage introspection ---------------------------------------------------

    @property
    def is_sparse(self) -> bool:
        """Whether the constraint matrices use CSR storage."""
        return sp.issparse(self.a_ub) or sp.issparse(self.a_eq)

    @property
    def num_variables(self) -> int:
        return len(self.c)

    @property
    def nnz(self) -> int:
        """Structural non-zeros across both constraint matrices."""
        total = 0
        for matrix in (self.a_ub, self.a_eq):
            if sp.issparse(matrix):
                total += matrix.nnz
            else:
                total += int(np.count_nonzero(matrix))
        return total

    def constraint_storage_bytes(self) -> int:
        """Bytes actually held by the constraint matrices (this storage kind)."""
        return _matrix_bytes(self.a_ub) + _matrix_bytes(self.a_eq)

    def dense_storage_bytes(self) -> int:
        """Bytes a fully dense copy of the constraint matrices would take."""
        rows = self.a_ub.shape[0] + self.a_eq.shape[0]
        return rows * self.num_variables * _DENSE_BYTES_PER_ENTRY

    def sparse_storage_bytes(self) -> int:
        """Bytes a CSR copy of the constraint matrices would take."""
        rows = self.a_ub.shape[0] + self.a_eq.shape[0]
        indptr = (rows + 2) * 4
        return self.nnz * _CSR_BYTES_PER_ENTRY + indptr

    # -- objective / bounds -------------------------------------------------------

    def objective_from_min(self, min_value: float) -> float:
        """Convert the minimised objective value back to the model's sense."""
        return -min_value if self.maximize else min_value

    def bound_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Bounds as ``(lower, upper)`` float arrays using ``±inf``.

        Always returns fresh arrays: the tuple form aliases bounds that may be
        shared across branch-and-bound nodes, so handing out the live arrays
        would let a caller silently corrupt sibling nodes.
        """
        if isinstance(self.bounds, tuple):
            return self.bounds[0].copy(), self.bounds[1].copy()
        n = len(self.c)
        lower = np.empty(n)
        upper = np.empty(n)
        for j, (low, up) in enumerate(self.bounds):
            lower[j] = -np.inf if low is None else low
            upper[j] = np.inf if up is None else up
        return lower, upper

    def with_bounds(self, lower: np.ndarray, upper: np.ndarray) -> "MatrixForm":
        """A view of this form with different variable bounds.

        The objective and constraint buffers — and the ``cache`` holding the
        simplex's assembled working matrix — are shared, not copied: this is
        the cheap path branch-and-bound uses to materialise a child node.
        """
        return MatrixForm(
            c=self.c,
            a_ub=self.a_ub,
            b_ub=self.b_ub,
            a_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=(lower, upper),
            maximize=self.maximize,
            cache=self.cache,
        )


def assemble_matrix(
    num_rows: int,
    num_cols: int,
    row_ids: np.ndarray,
    col_ids: np.ndarray,
    data: np.ndarray,
    make_sparse: bool,
) -> "sp.csr_matrix | np.ndarray":
    """Assemble a constraint matrix from coefficient triplets in O(nnz).

    ``row_ids``/``col_ids``/``data`` are parallel triplet arrays; duplicate
    (row, col) pairs must not occur (the model enforces uniqueness per
    constraint).
    """
    if make_sparse:
        matrix = sp.csr_matrix(
            (data, (row_ids, col_ids)), shape=(num_rows, num_cols), dtype=np.float64
        )
        return matrix
    dense = np.zeros((num_rows, num_cols))
    dense[row_ids, col_ids] = data
    return dense


# Backward-compatible alias: PR 1 consumers imported ``DenseForm``.
DenseForm = MatrixForm
