"""Incremental (online) maintenance of offline partitionings.

The paper treats partitioning as a one-time offline cost; this module makes
it survive a changing base relation without ever paying a full re-partition
on the hot path.  Given a :class:`~repro.dataset.table.TableDelta`,
:class:`PartitionMaintainer` produces a partitioning of the new table version
that satisfies the *same* τ (and ω, when configured) guarantees as a fresh
build:

* inserted tuples are assigned to the enclosing/nearest existing group —
  vectorised nearest-centroid under the Chebyshev (max-abs) metric, the same
  metric the radius condition uses, so a tuple landing inside a group's ball
  joins that group;
* deletions shrink groups; groups emptied entirely are retired and the gid
  space re-densified;
* centroids and radii are updated from delta statistics (carried sum/count
  moments; only groups touched by the delta are rescanned) rather than
  recomputed from scratch;
* any group pushed over τ — or past ω — by the delta is re-split *locally*
  by the partitioner the partitioning was originally built with, exactly as
  a fresh build would split it.

Because every group in the result satisfies the build conditions, the
SKETCHREFINE approximation story (Section 4.2's false-infeasibility and
ω-approximation guarantees) is unchanged under maintenance; the property
tests assert the maintained statistics match a from-scratch recompute under
random insert/delete streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

try:  # scipy is the solver substrate's hard dependency, but degrade politely.
    from scipy.spatial import cKDTree as _KDTree
except ImportError:  # pragma: no cover - exercised only without scipy
    _KDTree = None

from repro.dataset.table import Table, TableDelta
from repro.errors import PartitioningError
from repro.partition.kdtree import KdTreePartitioner
from repro.partition.kmeans import KMeansPartitioner
from repro.partition.partitioning import (
    BUILD_RADIUS_TOLERANCE,
    MaintenanceProfile,
    Partitioning,
    PartitioningStats,
    densify_group_ids,
)
from repro.partition.quadtree import QuadTreePartitioner

#: Insert blocks are matched against centroids in chunks of this many rows so
#: the (rows × groups × attributes) distance tensor stays cache-sized.
_ASSIGN_CHUNK = 1024


def _base_method(method: str) -> str:
    """Strip derivation suffixes: ``"quadtree(restricted)"`` → ``"quadtree"``."""
    return method.split("(")[0].strip().lower()


def is_known_method(method: str) -> bool:
    """Whether :func:`make_partitioner` can resolve this method string."""
    return _base_method(method) in ("quadtree", "kdtree", "kmeans")


def make_partitioner(method: str, size_threshold: int, radius_limit: float | None):
    """Instantiate the partitioner class named by a ``PartitioningStats.method``.

    Derived method strings (``"quadtree(restricted)"``) resolve to their base
    method; unknown methods raise :class:`PartitioningError`, as do invalid
    parameters (propagated from the partitioner constructors).
    """
    base = _base_method(method)
    if base == "quadtree":
        return QuadTreePartitioner(size_threshold, radius_limit)
    if base == "kdtree":
        return KdTreePartitioner(size_threshold, radius_limit)
    if base == "kmeans":
        return KMeansPartitioner(size_threshold)
    raise PartitioningError(f"unknown partitioning method {method!r}")


@dataclass
class MaintenanceStats:
    """What one maintained delta did to a partitioning."""

    rows_inserted: int = 0
    rows_deleted: int = 0
    groups_before: int = 0
    groups_after: int = 0
    groups_retired: int = 0
    groups_resplit: int = 0
    groups_created: int = 0
    rebuilt: bool = False
    maintain_seconds: float = 0.0
    touched_groups: frozenset = frozenset()
    """Group ids (in the *pre-delta* gid space) that received inserts or lost
    rows to deletions.  Delta-aware result caches use this to decide whether a
    cached package — whose tuples all live in other groups — can survive the
    update without a re-solve."""
    groups_renumbered: bool = False
    """Whether the gid space changed (groups retired, re-split or rebuilt), in
    which case pre-delta group ids no longer name the same groups."""


class PartitionMaintainer:
    """Applies :class:`TableDelta` streams to partitionings online.

    Args:
        partitioner_factory: Optional override mapping a
            :class:`PartitioningStats` to the partitioner used for local
            re-splits (default: the partitioning's original method via
            :func:`make_partitioner`, falling back to a quad-tree when the
            method string is unknown).
    """

    def __init__(self, partitioner_factory=None):
        self._partitioner_factory = partitioner_factory

    def maintain(
        self, partitioning: Partitioning, new_table: Table, delta: TableDelta
    ) -> tuple[Partitioning, MaintenanceStats]:
        """Carry ``partitioning`` through ``delta`` onto ``new_table``.

        Returns the maintained partitioning (at ``delta.new_version``,
        satisfying the original τ/ω conditions) and the maintenance profile
        of this single delta.
        """
        start = time.perf_counter()
        stats = MaintenanceStats(
            rows_inserted=delta.num_inserted,
            rows_deleted=delta.num_deleted,
            groups_before=partitioning.num_groups,
        )

        if partitioning.num_groups == 0:
            # Nothing to maintain incrementally: an empty partitioning has no
            # groups to receive inserts, so (re)build from the new table.
            maintained = self._rebuild(partitioning, new_table, delta)
            stats.rebuilt = True
            stats.groups_created = maintained.num_groups
            stats.groups_renumbered = True
        else:
            inserted_gids = self._assign_inserted(partitioning, delta.inserted)
            maintained = partitioning.with_delta(new_table, delta, inserted_gids)
            # Computed only after with_delta validated the delta's shape and
            # version against the partitioning.
            deleted_gids = partitioning.group_ids[delta.deleted_mask]
            stats.touched_groups = frozenset(
                np.union1d(np.unique(deleted_gids), np.unique(inserted_gids)).tolist()
            )
            stats.groups_retired = partitioning.num_groups - (
                maintained.num_groups
            )
            maintained, resplit, created = self._resplit_violators(maintained)
            stats.groups_resplit = resplit
            stats.groups_created = created
            stats.groups_renumbered = bool(stats.groups_retired or resplit)

        stats.groups_after = maintained.num_groups
        stats.maintain_seconds = time.perf_counter() - start
        maintained.maintenance.maintain_seconds += stats.maintain_seconds
        return maintained, stats

    def assign_rows(self, partitioning: Partitioning, rows: Table) -> np.ndarray:
        """Preview which group each row of ``rows`` would join on insert.

        This is exactly the nearest-centroid assignment :meth:`maintain`
        applies to a delta's inserted block, exposed so callers (benchmarks,
        cache-aware load shapers) can predict a delta's touched groups
        without committing it.
        """
        return self._assign_inserted(partitioning, rows)

    # -- internals -------------------------------------------------------------------------

    def _partitioner_for(self, stats: PartitioningStats):
        if self._partitioner_factory is not None:
            return self._partitioner_factory(stats)
        try:
            return make_partitioner(stats.method, stats.size_threshold, stats.radius_limit)
        except PartitioningError:
            # Externally built partitionings with exotic method strings still
            # get their τ/ω restored — by the paper's default partitioner.
            return QuadTreePartitioner(stats.size_threshold, stats.radius_limit)

    def _rebuild(
        self, partitioning: Partitioning, new_table: Table, delta: TableDelta
    ) -> Partitioning:
        if delta.base_version != partitioning.version:
            raise PartitioningError(
                f"delta targets table version {delta.base_version}, "
                f"partitioning is at version {partitioning.version}"
            )
        if new_table.version != delta.new_version:
            raise PartitioningError(
                f"new table is at version {new_table.version}, "
                f"expected {delta.new_version}"
            )
        partitioner = self._partitioner_for(partitioning.stats)
        rebuilt = partitioner.partition(new_table, partitioning.attributes)
        rebuilt.version = delta.new_version
        rebuilt.maintenance = replace(
            partitioning.maintenance,
            deltas_applied=partitioning.maintenance.deltas_applied + 1,
            rows_inserted=partitioning.maintenance.rows_inserted + delta.num_inserted,
            rows_deleted=partitioning.maintenance.rows_deleted + delta.num_deleted,
            groups_created=partitioning.maintenance.groups_created + rebuilt.num_groups,
        )
        return rebuilt

    @staticmethod
    def _assign_inserted(partitioning: Partitioning, inserted: Table) -> np.ndarray:
        """Nearest-centroid group assignment for an inserted row block.

        Uses the Chebyshev (max-abs) distance over the partitioning
        attributes — the metric of the radius condition — so a tuple inside
        some group's radius ball is assigned to (one of) its enclosing
        group(s), and an outlier to the group whose ball needs the least
        inflation to take it.
        """
        if inserted.num_rows == 0:
            return np.empty(0, dtype=np.int64)
        centroids = partitioning.group_centroids()
        matrix = np.nan_to_num(inserted.numeric_matrix(partitioning.attributes))
        if _KDTree is not None and len(centroids) >= 8:
            _, assigned = _KDTree(centroids).query(matrix, k=1, p=np.inf)
            return np.asarray(assigned, dtype=np.int64)
        assigned = np.empty(inserted.num_rows, dtype=np.int64)
        num_attributes = matrix.shape[1]
        columns = [np.ascontiguousarray(centroids[:, j]) for j in range(num_attributes)]
        for begin in range(0, inserted.num_rows, _ASSIGN_CHUNK):
            block = matrix[begin : begin + _ASSIGN_CHUNK]
            # Accumulate the Chebyshev distance one attribute at a time: 2-D
            # contiguous ops beat one (rows × groups × k) broadcast by a lot.
            distances = np.abs(block[:, 0:1] - columns[0][None, :])
            for j in range(1, num_attributes):
                np.maximum(
                    distances,
                    np.abs(block[:, j : j + 1] - columns[j][None, :]),
                    out=distances,
                )
            assigned[begin : begin + _ASSIGN_CHUNK] = distances.argmin(axis=1)
        return assigned

    def _resplit_violators(
        self, maintained: Partitioning
    ) -> tuple[Partitioning, int, int]:
        """Locally re-split every group violating τ (or ω) after the remap."""
        tau = maintained.stats.size_threshold
        omega = maintained.stats.radius_limit
        violating = maintained.group_sizes() > tau
        if omega is not None:
            violating |= maintained.group_radii_array() > omega + BUILD_RADIUS_TOLERANCE
        violator_gids = np.nonzero(violating)[0]
        if not len(violator_gids):
            return maintained, 0, 0

        partitioner = self._partitioner_for(maintained.stats)
        table = maintained.table
        new_gids = maintained.group_ids.copy()
        sums, counts = maintained.group_centroid_moments()
        sum_blocks, count_blocks = [sums], [counts]
        radius_blocks = [maintained.group_radii_array()]
        next_gid = maintained.num_groups
        created = 0
        for gid in violator_gids:
            # A direct scan beats materialising every group's row list (that
            # argsorts the whole assignment) when only a few groups overflow.
            rows = np.nonzero(maintained.group_ids == gid)[0]
            sub = partitioner.partition(
                table.take(rows, name=table.name), maintained.attributes
            )
            new_gids[rows] = next_gid + sub.group_ids
            sub_sums, sub_counts = sub.group_centroid_moments()
            sum_blocks.append(sub_sums)
            count_blocks.append(sub_counts)
            radius_blocks.append(sub.group_radii_array())
            created += sub.num_groups
            next_gid += sub.num_groups

        dense_ids, kept_slots, _ = densify_group_ids(new_gids, next_gid)
        all_sums = np.vstack(sum_blocks)[kept_slots]
        all_counts = np.vstack(count_blocks)[kept_slots]
        all_radii = np.concatenate(radius_blocks)[kept_slots]
        maintenance = replace(
            maintained.maintenance,
            groups_resplit=maintained.maintenance.groups_resplit + len(violator_gids),
            groups_created=maintained.maintenance.groups_created + created,
        )
        result = Partitioning._finalize_maintained(
            table,
            dense_ids,
            maintained.attributes,
            maintained.stats,
            moments=(all_sums, all_counts),
            radii=all_radii,
            version=maintained.version,
            maintenance=maintenance,
        )
        return result, int(len(violator_gids)), created


def partitioning_signature(partitioning: Partitioning) -> dict:
    """A complete, comparable fingerprint of a partitioning's maintained state.

    Maintenance is deterministic: carrying the same partitioning through the
    same delta stream — whether live or during write-ahead-log replay after a
    crash — must land on *identical* state.  This helper makes that claim
    checkable with one ``==``: it captures the gid assignment, the per-group
    centroid moments and radii (as raw bytes, so the comparison is bitwise,
    not tolerance-based), the version, the build stats and the cumulative
    maintenance profile.
    """
    sums, counts = partitioning.group_centroid_moments()
    timeless = replace(partitioning.maintenance, maintain_seconds=0.0)
    return {
        "version": partitioning.version,
        "num_groups": partitioning.num_groups,
        "group_ids": partitioning.group_ids.tobytes(),
        "centroid_sums": sums.tobytes(),
        "centroid_counts": counts.tobytes(),
        "radii": partitioning.group_radii_array().tobytes(),
        "attributes": tuple(partitioning.attributes),
        "stats": replace(partitioning.stats, build_seconds=0.0),
        "maintenance": timeless,
    }
