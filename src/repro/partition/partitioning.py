"""The Partitioning object shared by all partitioners and SKETCHREFINE.

A partitioning of relation ``R`` assigns every row a group id ``gid`` and
stores one representative tuple (the group centroid over the partitioning
attributes) per group.  The paper stores the gid in an extra column of the
input table and the representatives in a separate relation
``R̃(gid, attr₁, …, attr_k)``; this class mirrors that design while also
keeping the per-group row index lists that SKETCHREFINE's refine step needs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.dataset.io import load_table, save_table
from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.errors import PartitioningError
from repro.partition.representatives import build_representative_table


@dataclass
class PartitioningStats:
    """Metadata recorded while building a partitioning."""

    num_groups: int
    max_group_size: int
    max_radius: float
    build_seconds: float
    size_threshold: int
    radius_limit: float | None
    method: str


class Partitioning:
    """Group assignment + representative relation for one input table."""

    def __init__(
        self,
        table: Table,
        group_ids: np.ndarray,
        attributes: list[str],
        stats: PartitioningStats,
    ):
        group_ids = np.asarray(group_ids, dtype=np.int64)
        if group_ids.shape != (table.num_rows,):
            raise PartitioningError(
                f"group_ids has shape {group_ids.shape}, expected ({table.num_rows},)"
            )
        if len(group_ids) and group_ids.min() < 0:
            raise PartitioningError("group ids must be non-negative")
        self.table = table
        self.group_ids = group_ids
        self.attributes = list(attributes)
        self.stats = stats

        self._group_rows: dict[int, np.ndarray] = {}
        order = np.argsort(group_ids, kind="stable")
        sorted_ids = group_ids[order]
        boundaries = np.searchsorted(sorted_ids, np.arange(self.num_groups + 1))
        for gid in range(self.num_groups):
            self._group_rows[gid] = order[boundaries[gid] : boundaries[gid + 1]]

        self.representatives = build_representative_table(table, group_ids, self.attributes)

    # -- group access ------------------------------------------------------------------

    @property
    def num_groups(self) -> int:
        return int(self.group_ids.max()) + 1 if len(self.group_ids) else 0

    def group_rows(self, gid: int) -> np.ndarray:
        """Row indices of the original table belonging to group ``gid``."""
        try:
            return self._group_rows[gid]
        except KeyError:
            raise PartitioningError(f"group {gid} does not exist") from None

    def group_size(self, gid: int) -> int:
        return len(self.group_rows(gid))

    def group_sizes(self) -> np.ndarray:
        """Array of group sizes indexed by gid."""
        return np.array([len(self._group_rows[g]) for g in range(self.num_groups)], dtype=np.int64)

    def group_radius(self, gid: int) -> float:
        """The radius of group ``gid``: max |centroid.attr − tuple.attr| over attributes."""
        rows = self.group_rows(gid)
        if not len(rows):
            return 0.0
        matrix = self.table.numeric_matrix(self.attributes)[rows]
        centroid = np.asarray(
            [self.representatives.numeric_column(a)[gid] for a in self.attributes]
        )
        return float(np.abs(matrix - centroid).max())

    def max_radius(self) -> float:
        """Largest group radius in the partitioning."""
        if self.num_groups == 0:
            return 0.0
        return max(self.group_radius(g) for g in range(self.num_groups))

    def satisfies_size_threshold(self, tau: int) -> bool:
        """Whether every group has at most ``tau`` tuples."""
        return bool((self.group_sizes() <= tau).all())

    def satisfies_radius_limit(self, omega: float) -> bool:
        """Whether every group radius is at most ``omega``."""
        return self.max_radius() <= omega + 1e-9

    # -- derivation --------------------------------------------------------------------------

    def table_with_gid(self, column_name: str = "gid") -> Table:
        """Return the input table augmented with the group-id column.

        This is the paper's physical design (the gid lives in the relation);
        exposed mainly for examples and persistence.
        """
        return self.table.with_column(Column(column_name, DataType.INT), self.group_ids)

    def restricted_to_rows(self, rows: np.ndarray) -> "Partitioning":
        """Return a partitioning of the sub-table containing only ``rows``.

        The paper derives partitionings for smaller data fractions by removing
        tuples from the 100 % partitioning, which preserves the size condition
        (Section 5.2.1); this method implements that derivation.  Group ids
        are re-densified and empty groups dropped.
        """
        rows = np.asarray(rows, dtype=np.int64)
        sub_table = self.table.take(rows, name=self.table.name)
        old_ids = self.group_ids[rows]
        unique_ids, new_ids = np.unique(old_ids, return_inverse=True)
        stats = PartitioningStats(
            num_groups=len(unique_ids),
            max_group_size=int(np.bincount(new_ids).max()) if len(new_ids) else 0,
            max_radius=self.stats.max_radius,
            build_seconds=0.0,
            size_threshold=self.stats.size_threshold,
            radius_limit=self.stats.radius_limit,
            method=f"{self.stats.method}(restricted)",
        )
        return Partitioning(sub_table, new_ids, self.attributes, stats)

    # -- persistence -----------------------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist the partitioning (gid assignment, representatives, metadata)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.save(directory / "group_ids.npy", self.group_ids)
        save_table(self.representatives, directory / "representatives.npz")
        metadata = {
            "attributes": self.attributes,
            "stats": {
                "num_groups": self.stats.num_groups,
                "max_group_size": self.stats.max_group_size,
                "max_radius": self.stats.max_radius,
                "build_seconds": self.stats.build_seconds,
                "size_threshold": self.stats.size_threshold,
                "radius_limit": self.stats.radius_limit,
                "method": self.stats.method,
            },
        }
        (directory / "metadata.json").write_text(json.dumps(metadata, indent=2))

    @classmethod
    def load(cls, directory: str | Path, table: Table) -> "Partitioning":
        """Load a partitioning previously written with :meth:`save`.

        The original ``table`` must be supplied by the caller (only the group
        assignment and representatives are persisted).
        """
        directory = Path(directory)
        group_ids = np.load(directory / "group_ids.npy")
        metadata = json.loads((directory / "metadata.json").read_text())
        stats = PartitioningStats(**metadata["stats"])
        partitioning = cls(table, group_ids, metadata["attributes"], stats)
        # Representatives are recomputed deterministically from the data, so
        # the persisted copy is only used as a consistency check.
        persisted = load_table(directory / "representatives.npz")
        if persisted.num_rows != partitioning.representatives.num_rows:
            raise PartitioningError(
                "persisted partitioning does not match the supplied table "
                f"({persisted.num_rows} groups vs {partitioning.representatives.num_rows})"
            )
        return partitioning

    def __repr__(self) -> str:
        return (
            f"Partitioning(groups={self.num_groups}, attributes={self.attributes}, "
            f"method={self.stats.method!r})"
        )
