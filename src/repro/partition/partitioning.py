"""The Partitioning object shared by all partitioners and SKETCHREFINE.

A partitioning of relation ``R`` assigns every row a group id ``gid`` and
stores one representative tuple (the group centroid over the partitioning
attributes) per group.  The paper stores the gid in an extra column of the
input table and the representatives in a separate relation
``R̃(gid, attr₁, …, attr_k)``; this class mirrors that design while also
keeping the per-group row index lists that SKETCHREFINE's refine step needs.

A partitioning is *versioned*: it records the :attr:`~repro.dataset.table
.Table.version` of the table it describes.  When the base relation changes,
:meth:`with_delta` carries the partitioning to the next table version without
a rebuild — surviving rows keep their groups, inserted rows arrive with a
caller-chosen group assignment, emptied groups are retired, and the per-group
statistics (centroid moments and radii) are updated from the delta alone:
only groups actually touched by the change are rescanned.  Enforcing the τ/ω
guarantees on top of that remap (re-splitting overflowing groups) is the job
of :class:`repro.partition.maintenance.PartitionMaintainer`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from repro.dataset.io import load_table, save_table
from repro.dataset.schema import Column, DataType
from repro.dataset.table import Table, TableDelta
from repro.errors import PartitioningError
from repro.partition.representatives import (
    centroid_moments,
    centroids_from_moments,
    group_radii,
    representative_table_from_centroids,
)


#: Float slack applied when the partitioners (and the maintainer's re-split
#: check) compare a group radius against the ω limit — one constant so a
#: maintained partitioning enforces exactly the bound a fresh build does.
BUILD_RADIUS_TOLERANCE = 1e-12


@dataclass
class PartitioningStats:
    """Metadata recorded while building a partitioning."""

    num_groups: int
    max_group_size: int
    max_radius: float
    build_seconds: float
    size_threshold: int
    radius_limit: float | None
    method: str


@dataclass
class MaintenanceProfile:
    """Cumulative record of the incremental maintenance a partitioning absorbed.

    Starts all-zero for a fresh build; every maintained delta increments it.
    Surfaced through ``SketchRefineStats`` so a query result names exactly
    which state of the data plane it ran against.
    """

    deltas_applied: int = 0
    rows_inserted: int = 0
    rows_deleted: int = 0
    groups_created: int = 0
    groups_retired: int = 0
    groups_resplit: int = 0
    maintain_seconds: float = 0.0

    def as_dict(self) -> dict:
        return asdict(self)


def densify_group_ids(
    group_ids: np.ndarray, num_slots: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact a gid assignment with holes into dense ids ``0..G-1``.

    Returns ``(dense_ids, kept_slots_mask, remap)`` where ``kept_slots_mask``
    marks the old slots that still have members (use it to slice per-group
    stat arrays) and ``remap[old_gid]`` is the new gid (−1 for retired slots).
    """
    occupied = np.zeros(num_slots, dtype=bool)
    if len(group_ids):
        occupied[group_ids] = True
    if occupied.all():
        return group_ids, occupied, np.arange(num_slots, dtype=np.int64)
    remap = np.full(num_slots, -1, dtype=np.int64)
    remap[occupied] = np.arange(int(occupied.sum()), dtype=np.int64)
    dense = remap[group_ids] if len(group_ids) else group_ids.copy()
    return dense, occupied, remap


class Partitioning:
    """Group assignment + representative relation for one input table."""

    def __init__(
        self,
        table: Table,
        group_ids: np.ndarray,
        attributes: list[str],
        stats: PartitioningStats,
        *,
        version: int | None = None,
        maintenance: MaintenanceProfile | None = None,
    ):
        group_ids = np.asarray(group_ids, dtype=np.int64)
        if group_ids.shape != (table.num_rows,):
            raise PartitioningError(
                f"group_ids has shape {group_ids.shape}, expected ({table.num_rows},)"
            )
        if len(group_ids) and group_ids.min() < 0:
            raise PartitioningError("group ids must be non-negative")
        # The per-group caches are lazy, but a bad attribute list should
        # still fail here, not mid-query on first representatives access.
        table.schema.require_numeric(attributes)
        self.table = table
        self.group_ids = group_ids
        self.attributes = list(attributes)
        self.stats = stats
        self.version = table.version if version is None else int(version)
        self.maintenance = maintenance or MaintenanceProfile()

        self._num_groups = int(group_ids.max()) + 1 if len(group_ids) else 0
        # Per-group caches, all lazy so a delta-maintained partitioning can
        # install exact carried-over values instead of recomputing O(n):
        self._group_rows: dict[int, np.ndarray] | None = None
        self._moments: tuple[np.ndarray, np.ndarray] | None = None  # (sums, counts)
        self._radii: np.ndarray | None = None
        self._representatives: Table | None = None

    @classmethod
    def _finalize_maintained(
        cls,
        table: Table,
        group_ids: np.ndarray,
        attributes: list[str],
        stats: PartitioningStats,
        *,
        moments: tuple[np.ndarray, np.ndarray],
        radii: np.ndarray,
        version: int,
        maintenance: MaintenanceProfile,
    ) -> "Partitioning":
        """Shared tail of every maintenance path: derive the size/radius
        aggregates of ``stats`` and build a partitioning whose per-group
        caches are installed from the carried components (the caller
        guarantees ``moments`` and ``radii`` describe exactly the dense ids
        in ``group_ids``)."""
        num_groups = moments[0].shape[0]
        sizes = np.bincount(group_ids, minlength=num_groups)
        stats = replace(
            stats,
            num_groups=num_groups,
            max_group_size=int(sizes.max()) if len(sizes) else 0,
            max_radius=float(radii.max()) if len(radii) else 0.0,
            build_seconds=0.0,
        )
        partitioning = cls(
            table, group_ids, attributes, stats, version=version, maintenance=maintenance
        )
        partitioning._moments = moments
        partitioning._radii = radii
        return partitioning

    # -- group access ------------------------------------------------------------------

    @property
    def num_groups(self) -> int:
        return self._num_groups

    def _ensure_group_rows(self) -> dict[int, np.ndarray]:
        if self._group_rows is None:
            order = np.argsort(self.group_ids, kind="stable")
            sorted_ids = self.group_ids[order]
            boundaries = np.searchsorted(sorted_ids, np.arange(self.num_groups + 1))
            self._group_rows = {
                gid: order[boundaries[gid] : boundaries[gid + 1]]
                for gid in range(self.num_groups)
            }
        return self._group_rows

    def group_rows(self, gid: int) -> np.ndarray:
        """Row indices of the original table belonging to group ``gid``."""
        try:
            return self._ensure_group_rows()[gid]
        except KeyError:
            raise PartitioningError(f"group {gid} does not exist") from None

    def group_size(self, gid: int) -> int:
        return len(self.group_rows(gid))

    def group_sizes(self) -> np.ndarray:
        """Array of group sizes indexed by gid."""
        return np.bincount(self.group_ids, minlength=self.num_groups).astype(np.int64)

    def group_centroid_moments(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-group ``(sums, counts)`` of valid attribute values (do not mutate)."""
        if self._moments is None:
            self._moments = centroid_moments(
                self.table, self.group_ids, self.attributes, self.num_groups
            )
        return self._moments

    def group_centroids(self) -> np.ndarray:
        """The ``(num_groups, k)`` centroid matrix over the partitioning attributes."""
        sums, counts = self.group_centroid_moments()
        return centroids_from_moments(sums, counts)

    @property
    def representatives(self) -> Table:
        """The representative relation ``R̃(gid, attr₁, …, attr_k)``."""
        if self._representatives is None:
            self._representatives = representative_table_from_centroids(
                self.group_centroids(), self.attributes, self.table.name
            )
        return self._representatives

    def group_radii_array(self) -> np.ndarray:
        """Per-group radii indexed by gid (do not mutate)."""
        if self._radii is None:
            self._radii = group_radii(
                self.table, self.group_ids, self.attributes, centroids=self.group_centroids()
            )
        return self._radii

    def group_radius(self, gid: int) -> float:
        """The radius of group ``gid``: max |centroid.attr − tuple.attr| over attributes."""
        if not 0 <= gid < self.num_groups:
            raise PartitioningError(f"group {gid} does not exist")
        return float(self.group_radii_array()[gid])

    def max_radius(self) -> float:
        """Largest group radius in the partitioning."""
        if self.num_groups == 0:
            return 0.0
        return float(self.group_radii_array().max())

    def satisfies_size_threshold(self, tau: int) -> bool:
        """Whether every group has at most ``tau`` tuples."""
        return bool((self.group_sizes() <= tau).all())

    def satisfies_radius_limit(self, omega: float) -> bool:
        """Whether every group radius is at most ``omega``."""
        return self.max_radius() <= omega + 1e-9

    # -- derivation --------------------------------------------------------------------------

    def table_with_gid(self, column_name: str = "gid") -> Table:
        """Return the input table augmented with the group-id column.

        This is the paper's physical design (the gid lives in the relation);
        exposed mainly for examples and persistence.
        """
        return self.table.with_column(Column(column_name, DataType.INT), self.group_ids)

    def restricted_to_rows(self, rows: np.ndarray) -> "Partitioning":
        """Return a partitioning of the sub-table containing only ``rows``.

        The paper derives partitionings for smaller data fractions by removing
        tuples from the 100 % partitioning, which preserves the size condition
        (Section 5.2.1); this method implements that derivation.  Group ids
        are re-densified and empty groups dropped.
        """
        rows = np.asarray(rows, dtype=np.int64)
        sub_table = self.table.take(rows, name=self.table.name)
        old_ids = self.group_ids[rows]
        unique_ids, new_ids = np.unique(old_ids, return_inverse=True)
        stats = PartitioningStats(
            num_groups=len(unique_ids),
            max_group_size=int(np.bincount(new_ids).max()) if len(new_ids) else 0,
            max_radius=self.stats.max_radius,
            build_seconds=0.0,
            size_threshold=self.stats.size_threshold,
            radius_limit=self.stats.radius_limit,
            method=f"{self.stats.method}(restricted)",
        )
        return Partitioning(sub_table, new_ids, self.attributes, stats)

    def with_delta(
        self,
        new_table: Table,
        delta: TableDelta,
        inserted_group_ids: np.ndarray,
    ) -> "Partitioning":
        """Carry this partitioning to ``new_table`` through ``delta``.

        Surviving rows keep their groups, inserted rows join the (existing)
        groups named by ``inserted_group_ids``, groups emptied by deletions
        are retired, and centroid moments are updated from the delta alone —
        only groups actually touched by the change get their radius rescanned.

        The result matches a from-scratch recompute of the same assignment
        (untouched groups bit-identically; touched groups within
        floating-point accumulation tolerance, since their moments are
        updated by subtract/add rather than re-summed) but makes no τ/ω
        promise: groups may overflow the size threshold.  :class:`~repro.partition.maintenance
        .PartitionMaintainer` restores the build guarantees on top.
        """
        if delta.base_version != self.version:
            raise PartitioningError(
                f"delta targets table version {delta.base_version}, "
                f"partitioning is at version {self.version}"
            )
        if new_table.version != delta.new_version:
            raise PartitioningError(
                f"new table is at version {new_table.version}, "
                f"expected {delta.new_version}"
            )
        if delta.deleted_mask.shape != (self.table.num_rows,):
            raise PartitioningError("delta delete mask does not match the base table")
        inserted_group_ids = np.asarray(inserted_group_ids, dtype=np.int64)
        if inserted_group_ids.shape != (delta.num_inserted,):
            raise PartitioningError(
                f"inserted_group_ids has shape {inserted_group_ids.shape}, "
                f"expected ({delta.num_inserted},)"
            )
        num_slots = self.num_groups
        if len(inserted_group_ids) and (
            inserted_group_ids.min() < 0 or inserted_group_ids.max() >= num_slots
        ):
            raise PartitioningError("inserted rows must be assigned to existing groups")

        keep = ~delta.deleted_mask
        survivor_ids = self.group_ids[keep]
        raw_ids = (
            np.concatenate([survivor_ids, inserted_group_ids])
            if len(inserted_group_ids)
            else survivor_ids
        )

        # Delta-update the centroid moments: subtract the deleted tuples'
        # contributions, add the inserted ones.
        sums, counts = self.group_centroid_moments()
        sums, counts = sums.copy(), counts.copy()
        deleted_gids = self.group_ids[delta.deleted_mask]
        dirty = np.union1d(np.unique(deleted_gids), np.unique(inserted_group_ids))
        for j, attribute in enumerate(self.attributes):
            if delta.num_deleted:
                values = self.table.numeric_column(attribute)[delta.deleted_mask]
                valid = ~np.isnan(values)
                sums[:, j] -= np.bincount(
                    deleted_gids[valid], weights=values[valid], minlength=num_slots
                )
                counts[:, j] -= np.bincount(deleted_gids[valid], minlength=num_slots)
            if delta.num_inserted:
                values = delta.inserted.numeric_column(attribute)
                valid = ~np.isnan(values)
                sums[:, j] += np.bincount(
                    inserted_group_ids[valid], weights=values[valid], minlength=num_slots
                )
                counts[:, j] += np.bincount(inserted_group_ids[valid], minlength=num_slots)

        new_ids, kept_slots, remap = densify_group_ids(raw_ids, num_slots)
        sums, counts = sums[kept_slots], counts[kept_slots]
        centroids = centroids_from_moments(sums, counts)

        # Radii: untouched groups keep their cached value (their centroid is
        # bit-identical); touched groups are rescanned over their members only.
        radii = self.group_radii_array()[kept_slots].copy()
        dirty_remapped = remap[dirty] if len(dirty) else dirty
        dirty_dense = dirty_remapped[dirty_remapped >= 0]
        if len(dirty_dense):
            radii[dirty_dense] = 0.0
            dirty_lookup = np.zeros(len(radii), dtype=bool)
            dirty_lookup[dirty_dense] = True
            member_rows = np.nonzero(dirty_lookup[new_ids])[0]
            if len(member_rows) and self.attributes:
                member_gids = new_ids[member_rows]
                # NULL (NaN) values are zero-filled, matching group_radii and
                # the partitioners' build-time radius metric.
                member_matrix = np.nan_to_num(
                    np.column_stack(
                        [new_table.numeric_column(a)[member_rows] for a in self.attributes]
                    )
                )
                per_row = np.abs(member_matrix - centroids[member_gids]).max(axis=1)
                # Segmented max per dirty group: members arrive ordered only
                # within the survivor/insert halves, so sort by gid once and
                # reduceat — much cheaper than element-wise maximum.at.
                order = np.argsort(member_gids, kind="stable")
                sorted_gids = member_gids[order]
                starts = np.nonzero(
                    np.diff(sorted_gids, prepend=sorted_gids[0] - 1)
                )[0]
                radii[sorted_gids[starts]] = np.maximum.reduceat(per_row[order], starts)

        maintenance = replace(
            self.maintenance,
            deltas_applied=self.maintenance.deltas_applied + 1,
            rows_inserted=self.maintenance.rows_inserted + delta.num_inserted,
            rows_deleted=self.maintenance.rows_deleted + delta.num_deleted,
            groups_retired=self.maintenance.groups_retired
            + int(num_slots - kept_slots.sum()),
        )
        return Partitioning._finalize_maintained(
            new_table,
            new_ids,
            self.attributes,
            self.stats,
            moments=(sums, counts),
            radii=radii,
            version=delta.new_version,
            maintenance=maintenance,
        )

    # -- persistence -----------------------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist the partitioning (gid assignment, representatives, metadata)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.save(directory / "group_ids.npy", self.group_ids)
        save_table(self.representatives, directory / "representatives.npz")
        # Persist the maintained per-group state verbatim.  Recomputing it
        # from the table at load time is *almost* the same — but incremental
        # maintenance accumulates centroid sums in a different order (ulp
        # drift) and keeps conservative radii after deletes, so a recompute
        # would silently break the bitwise save/load ↔ live equivalence the
        # crash-recovery suite asserts across checkpoints.
        sums, counts = self.group_centroid_moments()
        np.savez(
            directory / "maintained_state.npz",
            centroid_sums=sums,
            centroid_counts=counts,
            radii=self.group_radii_array(),
        )
        metadata = {
            "attributes": self.attributes,
            "version": self.version,
            "maintenance": self.maintenance.as_dict(),
            "stats": {
                "num_groups": self.stats.num_groups,
                "max_group_size": self.stats.max_group_size,
                "max_radius": self.stats.max_radius,
                "build_seconds": self.stats.build_seconds,
                "size_threshold": self.stats.size_threshold,
                "radius_limit": self.stats.radius_limit,
                "method": self.stats.method,
            },
        }
        (directory / "metadata.json").write_text(json.dumps(metadata, indent=2))

    @classmethod
    def load(cls, directory: str | Path, table: Table) -> "Partitioning":
        """Load a partitioning previously written with :meth:`save`.

        The original ``table`` must be supplied by the caller (only the group
        assignment and representatives are persisted).
        """
        directory = Path(directory)
        group_ids = np.load(directory / "group_ids.npy")
        metadata = json.loads((directory / "metadata.json").read_text())
        stats = PartitioningStats(**metadata["stats"])
        maintenance = MaintenanceProfile(**metadata.get("maintenance", {}))
        partitioning = cls(
            table,
            group_ids,
            metadata["attributes"],
            stats,
            version=metadata.get("version", table.version),
            maintenance=maintenance,
        )
        state_path = directory / "maintained_state.npz"
        if state_path.is_file():
            state = np.load(state_path)
            partitioning._moments = (state["centroid_sums"], state["centroid_counts"])
            partitioning._radii = state["radii"]
        # Representatives are recomputed deterministically from the data, so
        # the persisted copy is only used as a consistency check.
        persisted = load_table(directory / "representatives.npz")
        if persisted.num_rows != partitioning.representatives.num_rows:
            raise PartitioningError(
                "persisted partitioning does not match the supplied table "
                f"({persisted.num_rows} groups vs {partitioning.representatives.num_rows})"
            )
        return partitioning

    def __repr__(self) -> str:
        return (
            f"Partitioning(groups={self.num_groups}, attributes={self.attributes}, "
            f"method={self.stats.method!r}, version={self.version})"
        )
