"""Offline data partitioning (Section 4.1 of the paper).

SKETCHREFINE relies on an offline partitioning of the input relation into
groups of similar tuples, each represented by its centroid.  This subpackage
provides:

* :class:`~repro.partition.partitioning.Partitioning` — the partitioning
  object (group assignments, representative relation, metadata, persistence),
* :class:`~repro.partition.quadtree.QuadTreePartitioner` — the paper's
  k-dimensional quad-tree method honouring a size threshold τ and an optional
  radius limit ω,
* :class:`~repro.partition.kdtree.KdTreePartitioner` and
  :class:`~repro.partition.kmeans.KMeansPartitioner` — the alternative
  clustering approaches the paper discusses (median-split k-d trees and
  Lloyd's k-means), kept for the ablation benchmarks,
* :mod:`~repro.partition.radius` — Equation (1): the radius limit ω required
  for a desired approximation parameter ε,
* :mod:`~repro.partition.representatives` — centroid computation and the
  representative relation ``R̃(gid, attr₁, …, attr_k)``,
* :mod:`~repro.partition.maintenance` —
  :class:`~repro.partition.maintenance.PartitionMaintainer`, which carries a
  partitioning through :class:`~repro.dataset.table.TableDelta` streams
  online (nearest-group insert assignment, local re-splits past τ/ω,
  delta-updated centroids and radii) instead of rebuilding.
"""

from repro.partition.partitioning import (
    MaintenanceProfile,
    Partitioning,
    PartitioningStats,
)
from repro.partition.quadtree import QuadTreePartitioner
from repro.partition.kdtree import KdTreePartitioner
from repro.partition.kmeans import KMeansPartitioner
from repro.partition.maintenance import (
    MaintenanceStats,
    PartitionMaintainer,
    make_partitioner,
)
from repro.partition.radius import omega_for_epsilon, epsilon_for_omega
from repro.partition.representatives import build_representative_table, compute_centroids

__all__ = [
    "Partitioning",
    "PartitioningStats",
    "MaintenanceProfile",
    "MaintenanceStats",
    "PartitionMaintainer",
    "make_partitioner",
    "QuadTreePartitioner",
    "KdTreePartitioner",
    "KMeansPartitioner",
    "omega_for_epsilon",
    "epsilon_for_omega",
    "build_representative_table",
    "compute_centroids",
]
