"""k-dimensional quad-tree partitioner (the paper's partitioning method).

The procedure of Section 4.1: start from a single group holding every tuple,
then recursively split any group that violates the size threshold τ or the
radius limit ω into ``2^k`` sub-quadrants around the group centroid (the
pivot), where ``k`` is the number of partitioning attributes.

For high-dimensional attribute sets a full ``2^k`` fan-out is wasteful, so
``max_split_dimensions`` bounds the number of attributes used per split (the
ones with the largest spread are chosen); the paper's datasets use small
attribute sets where this makes no difference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.dataset.table import Table
from repro.errors import PartitioningError
from repro.partition.partitioning import (
    BUILD_RADIUS_TOLERANCE,
    Partitioning,
    PartitioningStats,
)
from repro.partition.representatives import null_aware_centroid as _null_aware_centroid


@dataclass
class _PendingGroup:
    rows: np.ndarray
    depth: int


class QuadTreePartitioner:
    """Offline partitioner enforcing a size threshold and optional radius limit."""

    def __init__(
        self,
        size_threshold: int,
        radius_limit: float | None = None,
        max_split_dimensions: int = 6,
        max_depth: int = 64,
    ):
        """Args:
            size_threshold: τ — maximum tuples per group (>= 1).
            radius_limit: ω — maximum group radius, or ``None`` for no radius
                condition (the paper's default experimental setting).
            max_split_dimensions: Cap on attributes used per split
                (2^dims children per split).
            max_depth: Safety cap on recursion depth.
        """
        if size_threshold < 1:
            raise PartitioningError("size threshold must be at least 1")
        if radius_limit is not None and radius_limit < 0:
            raise PartitioningError("radius limit must be non-negative")
        self.size_threshold = int(size_threshold)
        self.radius_limit = radius_limit
        self.max_split_dimensions = max_split_dimensions
        self.max_depth = max_depth

    def partition(self, table: Table, attributes: list[str]) -> Partitioning:
        """Partition ``table`` on the given numeric attributes."""
        if not attributes:
            raise PartitioningError("at least one partitioning attribute is required")
        table.schema.require_numeric(attributes)
        start = time.perf_counter()

        raw_matrix = table.numeric_matrix(attributes)
        matrix = np.nan_to_num(raw_matrix)
        n = table.num_rows
        group_ids = np.zeros(n, dtype=np.int64)
        if n == 0:
            stats = PartitioningStats(0, 0, 0.0, 0.0, self.size_threshold, self.radius_limit, "quadtree")
            return Partitioning(table, group_ids, list(attributes), stats)

        final_groups: list[np.ndarray] = []
        pending: list[_PendingGroup] = [_PendingGroup(np.arange(n, dtype=np.int64), 0)]

        while pending:
            group = pending.pop()
            rows = group.rows
            if self._is_acceptable(matrix, raw_matrix, rows) or group.depth >= self.max_depth:
                final_groups.append(rows)
                continue
            children = self._split(matrix, rows)
            if len(children) <= 1:
                # Degenerate split (all tuples identical on the split attributes).
                final_groups.append(rows)
                continue
            for child in children:
                pending.append(_PendingGroup(child, group.depth + 1))

        for gid, rows in enumerate(final_groups):
            group_ids[rows] = gid

        build_seconds = time.perf_counter() - start
        sizes = np.array([len(rows) for rows in final_groups])
        stats = PartitioningStats(
            num_groups=len(final_groups),
            max_group_size=int(sizes.max()),
            max_radius=0.0,  # Filled in below through the Partitioning object.
            build_seconds=build_seconds,
            size_threshold=self.size_threshold,
            radius_limit=self.radius_limit,
            method="quadtree",
        )
        partitioning = Partitioning(table, group_ids, list(attributes), stats)
        stats.max_radius = partitioning.max_radius() if len(attributes) else 0.0
        return partitioning

    # -- internals -------------------------------------------------------------------------

    def _is_acceptable(
        self, matrix: np.ndarray, raw_matrix: np.ndarray, rows: np.ndarray
    ) -> bool:
        if len(rows) > self.size_threshold:
            return False
        if self.radius_limit is None:
            return True
        return self._radius(matrix, raw_matrix, rows) <= self.radius_limit + BUILD_RADIUS_TOLERANCE

    @staticmethod
    def _radius(matrix: np.ndarray, raw_matrix: np.ndarray, rows: np.ndarray) -> float:
        """Group radius under the published metric: zero-filled values measured
        against the NULL-excluding centroid (the representative relation's
        definition), so build-time acceptance, ``Partitioning.group_radius``
        and the maintenance re-split check all agree."""
        chunk = matrix[rows]
        centroid = _null_aware_centroid(raw_matrix[rows])
        return float(np.abs(chunk - centroid).max()) if chunk.size else 0.0

    def _split(self, matrix: np.ndarray, rows: np.ndarray) -> list[np.ndarray]:
        """Split ``rows`` into sub-quadrants around the centroid pivot."""
        chunk = matrix[rows]
        centroid = chunk.mean(axis=0)
        spreads = chunk.max(axis=0) - chunk.min(axis=0)
        # Only split on attributes that actually vary, capped for tractability.
        varying = np.nonzero(spreads > 0)[0]
        if not len(varying):
            return [rows]
        if len(varying) > self.max_split_dimensions:
            order = np.argsort(spreads[varying])[::-1]
            varying = varying[order[: self.max_split_dimensions]]

        # Quadrant code: one bit per split attribute (1 if value >= centroid).
        codes = np.zeros(len(rows), dtype=np.int64)
        for bit, attribute_index in enumerate(varying):
            codes |= (chunk[:, attribute_index] >= centroid[attribute_index]).astype(np.int64) << bit

        children = []
        for code in np.unique(codes):
            children.append(rows[codes == code])
        return children
