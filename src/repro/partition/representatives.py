"""Representative (centroid) computation for partition groups.

Each group's representative tuple is the centroid of its members over the
partitioning attributes (Section 4.1).  The representative relation
``R̃(gid, attr₁, …, attr_k)`` produced here is exactly what the SKETCH phase
queries instead of the full input relation.

Centroids are exposed in two forms: the plain ``(num_groups, k)`` matrix, and
the underlying *moments* (per-group, per-attribute sums of valid values and
valid-value counts).  The moments are what incremental partition maintenance
carries across table versions: subtracting the deleted tuples' contributions
and adding the inserted ones yields the new centroid without rescanning the
whole group.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.errors import PartitioningError


def centroid_moments(
    table: Table, group_ids: np.ndarray, attributes: list[str], num_groups: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Return per-group ``(sums, counts)`` matrices of shape ``(num_groups, k)``.

    ``sums[g, j]`` is the sum of non-NaN values of attribute ``j`` over group
    ``g``'s members; ``counts[g, j]`` the number of non-NaN values.  The
    centroid is ``sums / counts`` with all-NULL groups pinned to 0.
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if group_ids.shape != (table.num_rows,):
        raise PartitioningError("group_ids length must match the table")
    if num_groups is None:
        num_groups = int(group_ids.max()) + 1 if len(group_ids) else 0
    matrix = table.numeric_matrix(attributes)
    sums = np.zeros((num_groups, len(attributes)), dtype=np.float64)
    counts = np.zeros((num_groups, len(attributes)), dtype=np.float64)
    for j in range(len(attributes)):
        values = matrix[:, j]
        valid = ~np.isnan(values)
        sums[:, j] = np.bincount(group_ids[valid], weights=values[valid], minlength=num_groups)
        counts[:, j] = np.bincount(group_ids[valid], minlength=num_groups)
    return sums, counts


def centroids_from_moments(sums: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Divide sums by counts, pinning groups with no valid values to 0."""
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)


def null_aware_centroid(raw_chunk: np.ndarray) -> np.ndarray:
    """Per-attribute mean of one group's raw values, ignoring NaNs (all-NULL
    attributes pinned to 0) — the representative relation's centroid rule,
    applied by the partitioners when they enforce the radius condition."""
    valid = ~np.isnan(raw_chunk)
    sums = np.where(valid, raw_chunk, 0.0).sum(axis=0, keepdims=True)
    counts = valid.sum(axis=0, keepdims=True).astype(np.float64)
    return centroids_from_moments(sums, counts)[0]


def compute_centroids(table: Table, group_ids: np.ndarray, attributes: list[str]) -> np.ndarray:
    """Return an ``(num_groups, len(attributes))`` matrix of group centroids.

    NaN attribute values are ignored per group (they correspond to NULLs in
    the pre-joined benchmark tables); a group whose members are all NULL on an
    attribute gets centroid value 0 for that attribute.
    """
    sums, counts = centroid_moments(table, group_ids, attributes)
    return centroids_from_moments(sums, counts)


def representative_table_from_centroids(
    centroids: np.ndarray, attributes: list[str], table_name: str
) -> Table:
    """Wrap a centroid matrix as the relation ``R̃(gid, attr₁, …, attr_k)``."""
    num_groups = centroids.shape[0]
    columns: dict[str, np.ndarray] = {"gid": np.arange(num_groups, dtype=np.int64)}
    schema_columns = [Column("gid", DataType.INT)]
    for j, attribute in enumerate(attributes):
        columns[attribute] = centroids[:, j]
        schema_columns.append(Column(attribute, DataType.FLOAT, nullable=True))
    return Table(Schema(schema_columns), columns, name=f"{table_name}_representatives")


def build_representative_table(
    table: Table, group_ids: np.ndarray, attributes: list[str]
) -> Table:
    """Build the representative relation ``R̃(gid, attr₁, …, attr_k)``."""
    centroids = compute_centroids(table, group_ids, attributes)
    return representative_table_from_centroids(centroids, list(attributes), table.name)


def group_radii(
    table: Table,
    group_ids: np.ndarray,
    attributes: list[str],
    centroids: np.ndarray | None = None,
) -> np.ndarray:
    """Return each group's radius: max |centroid.attr − member.attr| over attributes.

    NULL (NaN) attribute values are measured as 0 — the same zero-fill the
    partitioners apply when enforcing the radius condition at build time, so
    maintenance re-split checks agree with the builders' metric.
    ``centroids`` may be supplied (e.g. delta-maintained centroids) to avoid
    recomputing them.
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    num_groups = int(group_ids.max()) + 1 if len(group_ids) else 0
    if centroids is None:
        centroids = compute_centroids(table, group_ids, attributes)
    matrix = np.nan_to_num(table.numeric_matrix(attributes))
    deviations = np.abs(matrix - centroids[group_ids])
    radii = np.zeros(max(num_groups, centroids.shape[0]))
    per_row = deviations.max(axis=1) if matrix.shape[1] else np.zeros(len(group_ids))
    np.maximum.at(radii, group_ids, per_row)
    return radii
