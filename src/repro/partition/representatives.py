"""Representative (centroid) computation for partition groups.

Each group's representative tuple is the centroid of its members over the
partitioning attributes (Section 4.1).  The representative relation
``R̃(gid, attr₁, …, attr_k)`` produced here is exactly what the SKETCH phase
queries instead of the full input relation.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.errors import PartitioningError


def compute_centroids(table: Table, group_ids: np.ndarray, attributes: list[str]) -> np.ndarray:
    """Return an ``(num_groups, len(attributes))`` matrix of group centroids.

    NaN attribute values are ignored per group (they correspond to NULLs in
    the pre-joined benchmark tables); a group whose members are all NULL on an
    attribute gets centroid value 0 for that attribute.
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if group_ids.shape != (table.num_rows,):
        raise PartitioningError("group_ids length must match the table")
    num_groups = int(group_ids.max()) + 1 if len(group_ids) else 0
    matrix = table.numeric_matrix(attributes)
    centroids = np.zeros((num_groups, len(attributes)), dtype=np.float64)
    for j in range(len(attributes)):
        values = matrix[:, j]
        valid = ~np.isnan(values)
        sums = np.bincount(group_ids[valid], weights=values[valid], minlength=num_groups)
        counts = np.bincount(group_ids[valid], minlength=num_groups).astype(np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            centroids[:, j] = np.where(counts > 0, sums / counts, 0.0)
    return centroids


def build_representative_table(
    table: Table, group_ids: np.ndarray, attributes: list[str]
) -> Table:
    """Build the representative relation ``R̃(gid, attr₁, …, attr_k)``."""
    centroids = compute_centroids(table, group_ids, attributes)
    num_groups = centroids.shape[0]
    columns: dict[str, np.ndarray] = {"gid": np.arange(num_groups, dtype=np.int64)}
    schema_columns = [Column("gid", DataType.INT)]
    for j, attribute in enumerate(attributes):
        columns[attribute] = centroids[:, j]
        schema_columns.append(Column(attribute, DataType.FLOAT, nullable=True))
    return Table(Schema(schema_columns), columns, name=f"{table.name}_representatives")


def group_radii(table: Table, group_ids: np.ndarray, attributes: list[str]) -> np.ndarray:
    """Return each group's radius: max |centroid.attr − member.attr| over attributes."""
    group_ids = np.asarray(group_ids, dtype=np.int64)
    num_groups = int(group_ids.max()) + 1 if len(group_ids) else 0
    centroids = compute_centroids(table, group_ids, attributes)
    matrix = table.numeric_matrix(attributes)
    deviations = np.abs(np.nan_to_num(matrix) - centroids[group_ids])
    radii = np.zeros(num_groups)
    per_row = deviations.max(axis=1) if matrix.shape[1] else np.zeros(len(group_ids))
    np.maximum.at(radii, group_ids, per_row)
    return radii
