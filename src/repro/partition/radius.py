"""Radius limits for approximation guarantees (Theorem 3 / Equation 1).

For a desired approximation parameter ε, the paper derives the radius limit ω
the offline partitioning must satisfy so that SKETCHREFINE's answer is within
a ``(1 ± ε)^6`` factor of DIRECT's:

.. math::

    ω = \\min_{1 ≤ j ≤ m,\\; attr ∈ A} γ · |t̃_j.attr|,\\qquad
    γ = ε \\text{ (maximisation)},\\quad γ = \\frac{ε}{1+ε} \\text{ (minimisation)}

Because ω depends on the representatives, which in turn depend on the
partitioning, the practical recipe (used by the radius-ablation benchmark) is
iterative: partition, compute ω from the resulting centroids, and re-partition
with that radius limit until it is satisfied.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.table import Table
from repro.errors import PartitioningError
from repro.paql.ast import ObjectiveDirection


def gamma_for_epsilon(epsilon: float, direction: ObjectiveDirection) -> float:
    """The γ factor of Equation (1) for the given objective direction."""
    if direction is ObjectiveDirection.MAXIMIZE:
        if not 0 <= epsilon < 1:
            raise PartitioningError("maximisation queries require 0 <= epsilon < 1")
        return epsilon
    if epsilon < 0:
        raise PartitioningError("minimisation queries require epsilon >= 0")
    return epsilon / (1.0 + epsilon)


def omega_for_epsilon(
    representatives: Table,
    attributes: list[str],
    epsilon: float,
    direction: ObjectiveDirection,
) -> float:
    """Equation (1): the radius limit ω guaranteeing a (1±ε)^6 approximation.

    Args:
        representatives: The representative relation R̃ (one row per group).
        attributes: The partitioning attributes A.
        epsilon: Desired approximation parameter.
        direction: MAXIMIZE or MINIMIZE (decides γ).
    """
    gamma = gamma_for_epsilon(epsilon, direction)
    magnitudes = np.abs(representatives.numeric_matrix(attributes))
    if magnitudes.size == 0:
        return 0.0
    return float(gamma * magnitudes.min())


def epsilon_for_omega(
    representatives: Table,
    attributes: list[str],
    omega: float,
    direction: ObjectiveDirection,
) -> float:
    """Invert Equation (1): the ε actually guaranteed by a given radius limit ω.

    Useful for reporting the effective guarantee of a partitioning that was
    built with a size threshold only.
    """
    magnitudes = np.abs(representatives.numeric_matrix(attributes))
    if magnitudes.size == 0 or omega <= 0:
        return 0.0
    smallest = float(magnitudes.min())
    if smallest == 0:
        return float("inf")
    gamma = omega / smallest
    if direction is ObjectiveDirection.MAXIMIZE:
        return gamma
    if gamma >= 1:
        return float("inf")
    return gamma / (1.0 - gamma)


def approximation_factor(epsilon: float, direction: ObjectiveDirection) -> float:
    """The end-to-end multiplicative bound of Theorem 3: ``(1 ± ε)^6``.

    For maximisation the answer is guaranteed to be at least
    ``(1 − ε)^6 · OPT``; for minimisation at most ``(1 + ε)^6 · OPT``.
    """
    if direction is ObjectiveDirection.MAXIMIZE:
        return (1.0 - epsilon) ** 6
    return (1.0 + epsilon) ** 6
