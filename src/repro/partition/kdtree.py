"""k-d tree (median split) partitioner.

One of the alternative space-partitioning approaches the paper discusses
(Section 4.1, "Alternative partitioning approaches").  Unlike the quad-tree,
each split bisects the group on a single attribute at its median, which
guarantees balanced group sizes and therefore reaches the size threshold in
``ceil(log2(n / τ))`` levels.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dataset.table import Table
from repro.errors import PartitioningError
from repro.partition.partitioning import (
    BUILD_RADIUS_TOLERANCE,
    Partitioning,
    PartitioningStats,
)
from repro.partition.representatives import null_aware_centroid as _null_aware_centroid


class KdTreePartitioner:
    """Median-split binary partitioner honouring a size threshold and radius limit."""

    def __init__(self, size_threshold: int, radius_limit: float | None = None, max_depth: int = 64):
        if size_threshold < 1:
            raise PartitioningError("size threshold must be at least 1")
        self.size_threshold = int(size_threshold)
        self.radius_limit = radius_limit
        self.max_depth = max_depth

    def partition(self, table: Table, attributes: list[str]) -> Partitioning:
        """Partition ``table`` on the given numeric attributes."""
        if not attributes:
            raise PartitioningError("at least one partitioning attribute is required")
        table.schema.require_numeric(attributes)
        start = time.perf_counter()
        raw_matrix = table.numeric_matrix(attributes)
        matrix = np.nan_to_num(raw_matrix)
        n = table.num_rows
        group_ids = np.zeros(n, dtype=np.int64)
        if n == 0:
            stats = PartitioningStats(
                0, 0, 0.0, time.perf_counter() - start,
                self.size_threshold, self.radius_limit, "kdtree",
            )
            return Partitioning(table, group_ids, list(attributes), stats)

        final_groups: list[np.ndarray] = []
        stack: list[tuple[np.ndarray, int]] = [(np.arange(n, dtype=np.int64), 0)]
        while stack:
            rows, depth = stack.pop()
            if self._is_acceptable(matrix, raw_matrix, rows) or depth >= self.max_depth:
                final_groups.append(rows)
                continue
            left, right = self._median_split(matrix, rows, depth % len(attributes))
            if not len(left) or not len(right):
                final_groups.append(rows)
                continue
            stack.append((left, depth + 1))
            stack.append((right, depth + 1))

        for gid, rows in enumerate(final_groups):
            group_ids[rows] = gid

        # n > 0 here, so there is always at least one (single-group) entry.
        sizes = np.array([len(rows) for rows in final_groups])
        stats = PartitioningStats(
            num_groups=len(final_groups),
            max_group_size=int(sizes.max()),
            max_radius=0.0,
            build_seconds=time.perf_counter() - start,
            size_threshold=self.size_threshold,
            radius_limit=self.radius_limit,
            method="kdtree",
        )
        partitioning = Partitioning(table, group_ids, list(attributes), stats)
        stats.max_radius = partitioning.max_radius()
        return partitioning

    def _is_acceptable(
        self, matrix: np.ndarray, raw_matrix: np.ndarray, rows: np.ndarray
    ) -> bool:
        if len(rows) > self.size_threshold:
            return False
        if self.radius_limit is None:
            return True
        # Radius under the published metric: zero-filled values against the
        # NULL-excluding centroid (see QuadTreePartitioner._radius).
        chunk = matrix[rows]
        centroid = _null_aware_centroid(raw_matrix[rows])
        return float(np.abs(chunk - centroid).max()) <= self.radius_limit + BUILD_RADIUS_TOLERANCE

    def _median_split(
        self, matrix: np.ndarray, rows: np.ndarray, preferred_axis: int
    ) -> tuple[np.ndarray, np.ndarray]:
        chunk = matrix[rows]
        spreads = chunk.max(axis=0) - chunk.min(axis=0)
        axis = preferred_axis if spreads[preferred_axis] > 0 else int(np.argmax(spreads))
        if spreads[axis] == 0:
            return rows, np.empty(0, dtype=np.int64)
        values = chunk[:, axis]
        median = np.median(values)
        left_mask = values < median
        if not left_mask.any() or left_mask.all():
            # Degenerate median (many ties): split by <= instead.
            left_mask = values <= median
            if left_mask.all():
                order = np.argsort(values, kind="stable")
                half = len(order) // 2
                left_mask = np.zeros(len(values), dtype=bool)
                left_mask[order[:half]] = True
        return rows[left_mask], rows[~left_mask]
