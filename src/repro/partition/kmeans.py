"""k-means (Lloyd's algorithm) partitioner.

The paper reports experimenting with off-the-shelf clustering algorithms
(k-means, hierarchical, DBSCAN) and notes their main drawback: they cannot
natively enforce the size threshold τ or the radius limit ω.  This
implementation reproduces that behaviour faithfully — it clusters for a target
number of groups and then, if requested, *recursively re-clusters* oversized
groups so the final partitioning still satisfies the size condition (the
adaptation a practitioner would have to bolt on).  It is used by the ablation
benchmark comparing partitioning methods.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dataset.table import Table
from repro.errors import PartitioningError
from repro.partition.partitioning import Partitioning, PartitioningStats

_MAX_LLOYD_ITERATIONS = 50


class KMeansPartitioner:
    """Lloyd's k-means with optional size-threshold enforcement by re-clustering."""

    def __init__(
        self,
        size_threshold: int,
        enforce_size: bool = True,
        seed: int = 0,
        max_refinement_rounds: int = 16,
    ):
        if size_threshold < 1:
            raise PartitioningError("size threshold must be at least 1")
        self.size_threshold = int(size_threshold)
        self.enforce_size = enforce_size
        self.seed = seed
        self.max_refinement_rounds = max_refinement_rounds

    def partition(self, table: Table, attributes: list[str]) -> Partitioning:
        """Partition ``table`` on the given numeric attributes."""
        if not attributes:
            raise PartitioningError("at least one partitioning attribute is required")
        table.schema.require_numeric(attributes)
        start = time.perf_counter()
        matrix = np.nan_to_num(table.numeric_matrix(attributes))
        n = table.num_rows
        rng = np.random.default_rng(self.seed)

        target_clusters = max(1, int(np.ceil(n / self.size_threshold)))
        labels = self._lloyd(matrix, target_clusters, rng)

        if self.enforce_size:
            labels = self._enforce_size_threshold(matrix, labels, rng)

        labels = _densify(labels)
        sizes = np.bincount(labels) if len(labels) else np.array([0])
        stats = PartitioningStats(
            num_groups=int(labels.max()) + 1 if len(labels) else 0,
            max_group_size=int(sizes.max()),
            max_radius=0.0,
            build_seconds=time.perf_counter() - start,
            size_threshold=self.size_threshold,
            radius_limit=None,
            method="kmeans",
        )
        partitioning = Partitioning(table, labels, list(attributes), stats)
        stats.max_radius = partitioning.max_radius()
        return partitioning

    # -- internals -----------------------------------------------------------------------

    def _lloyd(self, matrix: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        n = len(matrix)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        k = min(k, n)
        # k-means++ style seeding: first centre uniform, rest weighted by squared distance.
        centres = [matrix[rng.integers(n)]]
        for _ in range(1, k):
            distances = np.min(
                np.stack([np.sum((matrix - c) ** 2, axis=1) for c in centres]), axis=0
            )
            total = distances.sum()
            if total == 0:
                centres.append(matrix[rng.integers(n)])
                continue
            probabilities = distances / total
            centres.append(matrix[rng.choice(n, p=probabilities)])
        centroids = np.array(centres)

        labels = np.zeros(n, dtype=np.int64)
        for _ in range(_MAX_LLOYD_ITERATIONS):
            distances = np.linalg.norm(matrix[:, None, :] - centroids[None, :, :], axis=2)
            new_labels = np.argmin(distances, axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for j in range(k):
                members = matrix[labels == j]
                if len(members):
                    centroids[j] = members.mean(axis=0)
        return labels

    def _enforce_size_threshold(
        self, matrix: np.ndarray, labels: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        labels = labels.copy()
        for _ in range(self.max_refinement_rounds):
            sizes = np.bincount(labels)
            oversized = np.nonzero(sizes > self.size_threshold)[0]
            if not len(oversized):
                break
            next_label = int(labels.max()) + 1
            for gid in oversized:
                rows = np.nonzero(labels == gid)[0]
                pieces = int(np.ceil(len(rows) / self.size_threshold))
                sub_labels = self._lloyd(matrix[rows], pieces, rng)
                # Keep sub-cluster 0 in place, move the rest to fresh labels.
                for sub in range(1, int(sub_labels.max()) + 1 if len(sub_labels) else 0):
                    labels[rows[sub_labels == sub]] = next_label
                    next_label += 1
        return labels


def _densify(labels: np.ndarray) -> np.ndarray:
    """Re-number labels to a dense 0..m-1 range."""
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)
