"""repro — a reproduction of "Scalable Package Queries in Relational Database Systems".

The package implements the paper's full stack in pure Python:

* :mod:`repro.dataset` / :mod:`repro.db` — the columnar storage and relational
  substrate (stand-in for PostgreSQL),
* :mod:`repro.paql` — the PaQL language (parser, AST, validator, builder),
* :mod:`repro.ilp` — the LP/ILP solving substrate (stand-in for CPLEX),
* :mod:`repro.core` — the PaQL→ILP translation and the DIRECT / SKETCHREFINE
  evaluation strategies,
* :mod:`repro.partition` — offline quad-tree (and alternative) partitioning,
* :mod:`repro.workloads` — synthetic Galaxy and TPC-H style datasets and the
  benchmark query workloads,
* :mod:`repro.bench` — the experiment harness reproducing every figure and
  table of the paper's evaluation.

Quickstart::

    from repro import PackageQueryEngine
    from repro.workloads.recipes import recipes_table, MEAL_PLANNER_PAQL

    engine = PackageQueryEngine()
    engine.register_table(recipes_table(seed=7))
    result = engine.execute(MEAL_PLANNER_PAQL)
    print(result.materialize().to_dict())
"""

from repro.core.engine import EvaluationMethod, EvaluationResult, PackageQueryEngine
from repro.core.package import Package
from repro.dataset.table import Table
from repro.db.catalog import Database
from repro.paql.builder import query_over
from repro.paql.parser import parse_paql

__version__ = "1.0.0"

__all__ = [
    "PackageQueryEngine",
    "EvaluationMethod",
    "EvaluationResult",
    "Package",
    "Table",
    "Database",
    "parse_paql",
    "query_over",
    "__version__",
]
