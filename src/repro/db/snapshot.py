"""Snapshot-consistent read views over a live catalog.

Tables are immutable and versioned, and :meth:`~repro.db.catalog.Database
.update_table` *replaces* a table rather than mutating it — so MVCC reads
need no copying at all: a reader that holds references to the table objects
of one committed moment keeps seeing exactly that moment, no matter how many
commits land afterwards.  This module packages those references:

* :class:`SnapshotHandle` pins, per table, a ``(table version,
  partitioning version)`` pair — the table object plus every partitioning
  that describes that exact version — so
  ``engine.execute(query, snapshot=handle)`` runs against a consistent view
  while updates commit underneath;
* :class:`SnapshotManager` (owned by the catalog) tracks the active handles,
  so the pinned versions stay observable — old table versions are retained
  precisely as long as a handle references them and become collectable on
  :meth:`SnapshotHandle.release`.

Handles are value objects: pickling one ships the pinned view itself
(detached from its manager), which is what a worker process needs to answer
reads against a fixed version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import SnapshotError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (catalog imports this)
    from repro.dataset.table import Table
    from repro.db.catalog import Database
    from repro.partition.partitioning import Partitioning


@dataclass(frozen=True)
class PinnedTable:
    """One table's slice of a snapshot: the version and what describes it."""

    name: str
    table: "Table"
    partitionings: dict[str, "Partitioning"] = field(default_factory=dict)
    """Label → partitioning, restricted to partitionings whose version equals
    the pinned table version (a stale partitioning has no consistent place in
    a snapshot — the version it describes is not the one being pinned)."""

    @property
    def version(self) -> int:
        return self.table.version


class SnapshotHandle:
    """A pinned, consistent, read-only view of one committed catalog state.

    Usable as a context manager; exiting releases the pin.  Reads through a
    released handle raise :class:`~repro.errors.SnapshotError` — silently
    serving a view the caller already released is how stale reads sneak in.
    """

    def __init__(
        self, snapshot_id: int, pins: dict[str, PinnedTable], manager: "SnapshotManager | None"
    ):
        self.snapshot_id = snapshot_id
        self.pins = pins
        self._manager = manager
        self._released = False

    # -- reads ---------------------------------------------------------------

    def _pin(self, name: str) -> PinnedTable:
        if self._released:
            raise SnapshotError(
                f"snapshot {self.snapshot_id} has been released; acquire a new one"
            )
        try:
            return self.pins[name]
        except KeyError:
            raise SnapshotError(
                f"table {name!r} is not pinned by snapshot {self.snapshot_id} "
                f"(pinned: {sorted(self.pins)})"
            ) from None

    def table(self, name: str) -> "Table":
        """The pinned version of table ``name``."""
        return self._pin(name).table

    def table_names(self) -> list[str]:
        return sorted(self.pins)

    def has_partitioning(self, name: str, label: str = "default") -> bool:
        return label in self._pin(name).partitionings

    def partitioning(self, name: str, label: str = "default") -> "Partitioning":
        """The partitioning pinned for ``name`` under ``label``."""
        pin = self._pin(name)
        try:
            return pin.partitionings[label]
        except KeyError:
            raise SnapshotError(
                f"no partitioning {label!r} pinned for table {name!r} in "
                f"snapshot {self.snapshot_id} — it was missing or stale at "
                "acquire time"
            ) from None

    def versions(self) -> dict[str, int]:
        """Pinned table versions by name."""
        return {name: pin.version for name, pin in sorted(self.pins.items())}

    # -- lifecycle -----------------------------------------------------------

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Release the pin (idempotent); the manager forgets this handle."""
        if self._released:
            return
        self._released = True
        if self._manager is not None:
            self._manager._forget(self)

    def __enter__(self) -> "SnapshotHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # A pickled handle is a self-contained view: the manager (and with it
        # the whole live catalog) stays home.
        state["_manager"] = None
        return state

    def __repr__(self) -> str:
        state = "released" if self._released else "active"
        return (
            f"SnapshotHandle(id={self.snapshot_id}, versions={self.versions() if not self._released else '...'}, "
            f"{state})"
        )


class SnapshotManager:
    """Tracks the snapshot handles pinned against one catalog."""

    def __init__(self) -> None:
        self._next_id = 0
        self._active: dict[int, SnapshotHandle] = {}

    def acquire(
        self, database: "Database", names: Iterable[str] | None = None
    ) -> SnapshotHandle:
        """Pin the current committed state of ``names`` (default: every table).

        Per table, the handle pins the table object plus every registered
        partitioning whose version matches — a consistent
        ``(table_version, partitioning_version)`` pair by construction.
        Stale partitionings are left out: they describe some *other* version.
        """
        table_names = list(names) if names is not None else database.table_names()
        pins: dict[str, PinnedTable] = {}
        for name in table_names:
            table = database.table(name)
            partitionings = {
                label: database.partitioning(name, label)
                for label in database.partitioning_labels(name)
                if database.partitioning_version(name, label) == table.version
            }
            pins[name] = PinnedTable(name=name, table=table, partitionings=partitionings)
        handle = SnapshotHandle(self._next_id, pins, self)
        self._next_id += 1
        self._active[handle.snapshot_id] = handle
        return handle

    def _forget(self, handle: SnapshotHandle) -> None:
        self._active.pop(handle.snapshot_id, None)

    @property
    def active_count(self) -> int:
        return len(self._active)

    def active_handles(self) -> list[SnapshotHandle]:
        return [self._active[key] for key in sorted(self._active)]

    def pinned_versions(self, table_name: str) -> list[int]:
        """Sorted distinct versions of ``table_name`` still pinned by readers."""
        versions = {
            handle.pins[table_name].version
            for handle in self._active.values()
            if table_name in handle.pins
        }
        return sorted(versions)

    def __repr__(self) -> str:
        return f"SnapshotManager(active={self.active_count})"
