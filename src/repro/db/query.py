"""Relational-algebra operators and a fluent query builder.

The operators here cover what the paper's prototype delegates to PostgreSQL:
selection, projection, inner/outer joins (used to build the pre-joined TPC-H
table), group-by with aggregates (used by the quad-tree partitioner to compute
group sizes, radii and centroids), order-by and limit.

Example::

    result = (
        from_table(recipes)
        .where(col("gluten") == "free")
        .order_by("saturated_fat")
        .limit(10)
        .execute()
    )
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.db.aggregates import AggregateFunction, AggregateSpec, aggregate_groups
from repro.db.expressions import Expression
from repro.errors import QueryError


class QueryBuilder:
    """Fluent builder for single-table queries (select / project / sort / limit)."""

    def __init__(self, table: Table):
        self._table = table
        self._predicates: list[Expression] = []
        self._projection: list[str] | None = None
        self._order_by: list[tuple[str, bool]] = []
        self._limit: int | None = None

    def where(self, predicate: Expression) -> "QueryBuilder":
        """Add a selection predicate (conjunctive with previous ones)."""
        self._predicates.append(predicate)
        return self

    def select(self, *columns: str) -> "QueryBuilder":
        """Project to the given columns."""
        self._projection = list(columns)
        return self

    def order_by(self, column: str, descending: bool = False) -> "QueryBuilder":
        """Sort the result by ``column`` (stable, applied in call order)."""
        self._order_by.append((column, descending))
        return self

    def limit(self, n: int) -> "QueryBuilder":
        """Keep only the first ``n`` rows of the (sorted) result."""
        if n < 0:
            raise QueryError("limit must be non-negative")
        self._limit = n
        return self

    def execute(self) -> Table:
        """Run the accumulated query and return the result table."""
        result = self._table
        for predicate in self._predicates:
            mask = np.asarray(predicate.evaluate(result), dtype=bool)
            result = result.filter(mask)
        if self._order_by:
            result = order_by(result, self._order_by)
        if self._limit is not None:
            result = result.head(self._limit)
        if self._projection is not None:
            result = result.select_columns(self._projection)
        return result

    def matching_indices(self) -> np.ndarray:
        """Return the original-table row indices satisfying all predicates.

        This is the path used for base-predicate evaluation in the PaQL→ILP
        pipeline, where the surviving tuple *positions* matter.
        """
        mask = np.ones(self._table.num_rows, dtype=bool)
        for predicate in self._predicates:
            mask &= np.asarray(predicate.evaluate(self._table), dtype=bool)
        return np.nonzero(mask)[0]


def from_table(table: Table) -> QueryBuilder:
    """Start a fluent query over ``table``."""
    return QueryBuilder(table)


def order_by(table: Table, keys: Sequence[tuple[str, bool]]) -> Table:
    """Sort ``table`` by a list of ``(column, descending)`` keys."""
    if not keys:
        return table
    indices = np.arange(table.num_rows)
    # Apply keys from last to first with a stable sort to get SQL semantics.
    for column, descending in reversed(list(keys)):
        values = table.column(column)
        if table.schema[column].dtype is DataType.STRING:
            sortable = np.array(["" if v is None else v for v in values[indices]], dtype=object)
            order = np.argsort(sortable, kind="stable")
        else:
            order = np.argsort(np.asarray(values, dtype=np.float64)[indices], kind="stable")
        if descending:
            order = order[::-1]
        indices = indices[order]
    return table.take(indices)


def group_by(
    table: Table,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """SQL-style GROUP BY with aggregate projections.

    Args:
        table: Input relation.
        keys: Grouping columns (any type).
        aggregates: Aggregates to compute per group.

    Returns:
        A table with one row per distinct key combination, containing the key
        columns followed by one column per aggregate.
    """
    if not keys:
        raise QueryError("group_by requires at least one key column")
    table.schema.require(keys)

    group_ids, key_rows = _dense_group_ids(table, keys)
    num_groups = len(key_rows)

    columns: dict[str, list | np.ndarray] = {}
    schema_columns: list[Column] = []
    for key in keys:
        source = table.schema[key]
        schema_columns.append(Column(key, source.dtype, source.nullable))
        columns[key] = [row[key] for row in key_rows]

    for spec in aggregates:
        values = (
            table.numeric_column(spec.column)
            if spec.function is not AggregateFunction.COUNT
            else np.zeros(table.num_rows)
        )
        result = aggregate_groups(values, group_ids, spec.function, num_groups)
        out_name = spec.output_name
        schema_columns.append(Column(out_name, DataType.FLOAT, nullable=True))
        columns[out_name] = result

    return Table(Schema(schema_columns), columns, name=f"{table.name}_grouped")


def group_labels(table: Table, keys: Sequence[str]) -> tuple[np.ndarray, Table]:
    """Return dense group ids per row and a table of the distinct key rows.

    Exposed separately because the partitioner needs the per-row labelling,
    not just the aggregated output.
    """
    group_ids, key_rows = _dense_group_ids(table, keys)
    distinct = Table.from_rows(table.schema.project(keys), key_rows, name="groups")
    return group_ids, distinct


def inner_join(
    left: Table,
    right: Table,
    on: Sequence[tuple[str, str]],
    suffix: str = "_right",
) -> Table:
    """Hash inner join of two tables on equality of key pairs.

    Args:
        left: Left relation.
        right: Right relation.
        on: Pairs ``(left_column, right_column)`` to equate.
        suffix: Appended to right-side column names that clash with the left.
    """
    return _hash_join(left, right, on, suffix, outer=False)


def full_outer_join(
    left: Table,
    right: Table,
    on: Sequence[tuple[str, str]],
    suffix: str = "_right",
) -> Table:
    """Full outer hash join; unmatched sides produce NULLs.

    Used to build the paper's pre-joined TPC-H table, which deliberately
    contains NULLs that individual package queries then project away.
    """
    return _hash_join(left, right, on, suffix, outer=True)


def _hash_join(
    left: Table,
    right: Table,
    on: Sequence[tuple[str, str]],
    suffix: str,
    outer: bool,
) -> Table:
    if not on:
        raise QueryError("join requires at least one key pair")
    left_keys = [pair[0] for pair in on]
    right_keys = [pair[1] for pair in on]
    left.schema.require(left_keys)
    right.schema.require(right_keys)

    right_index: dict[tuple, list[int]] = {}
    right_key_columns = [right.column(k) for k in right_keys]
    for i in range(right.num_rows):
        key = tuple(_normalise_key(col[i]) for col in right_key_columns)
        right_index.setdefault(key, []).append(i)

    left_key_columns = [left.column(k) for k in left_keys]
    left_rows: list[int] = []
    right_rows: list[int] = []  # -1 means no match (outer join padding)
    matched_right: set[int] = set()
    for i in range(left.num_rows):
        key = tuple(_normalise_key(col[i]) for col in left_key_columns)
        matches = right_index.get(key, [])
        if matches:
            for j in matches:
                left_rows.append(i)
                right_rows.append(j)
                matched_right.add(j)
        elif outer:
            left_rows.append(i)
            right_rows.append(-1)

    unmatched_right = [j for j in range(right.num_rows) if j not in matched_right] if outer else []

    # Build output schema: all left columns + right columns (renamed on clash,
    # join keys from the right are dropped since they equal the left keys).
    out_columns: list[Column] = list(left.schema.columns)
    right_name_map: dict[str, str] = {}
    for column in right.schema.columns:
        if column.name in right_keys:
            continue
        out_name = column.name if column.name not in left.schema else column.name + suffix
        right_name_map[column.name] = out_name
        dtype = column.dtype
        nullable = column.nullable or outer
        if outer and dtype is DataType.INT:
            dtype = DataType.FLOAT
        out_columns.append(Column(out_name, dtype, nullable))

    left_idx = np.array(left_rows, dtype=np.int64)
    right_idx = np.array(right_rows, dtype=np.int64)

    data: dict[str, list | np.ndarray] = {}
    num_matched = len(left_rows)
    num_out = num_matched + len(unmatched_right)

    for column in left.schema.columns:
        values = left.column(column.name)
        matched_part = values[left_idx] if num_matched else values[:0]
        if unmatched_right:
            pad = _null_pad(column, len(unmatched_right))
            data[column.name] = _concat_with_nulls(column, matched_part, pad)
        else:
            data[column.name] = matched_part
    for column in right.schema.columns:
        if column.name in right_keys:
            continue
        out_name = right_name_map[column.name]
        values = right.column(column.name)
        matched_values = []
        for j in right_rows:
            matched_values.append(None if j < 0 else values[j])
        tail = [values[j] for j in unmatched_right]
        data[out_name] = matched_values + tail

    out_schema_cols = []
    for column in out_columns:
        if column.name in left.schema.names:
            dtype = column.dtype
            nullable = column.nullable
            if outer and unmatched_right and dtype is DataType.INT:
                dtype = DataType.FLOAT
            if outer and unmatched_right:
                nullable = nullable or dtype is not DataType.INT
            out_schema_cols.append(Column(column.name, dtype, nullable))
        else:
            out_schema_cols.append(column)

    assert num_out == len(next(iter(data.values()))) if data else True
    return Table(Schema(out_schema_cols), data, name=f"{left.name}_join_{right.name}")


def _dense_group_ids(table: Table, keys: Sequence[str]) -> tuple[np.ndarray, list[dict]]:
    key_columns = [table.column(k) for k in keys]
    mapping: dict[tuple, int] = {}
    key_rows: list[dict] = []
    group_ids = np.empty(table.num_rows, dtype=np.int64)
    for i in range(table.num_rows):
        key = tuple(_normalise_key(col[i]) for col in key_columns)
        gid = mapping.get(key)
        if gid is None:
            gid = len(mapping)
            mapping[key] = gid
            key_rows.append({k: col[i] for k, col in zip(keys, key_columns)})
        group_ids[i] = gid
    return group_ids, key_rows


def _normalise_key(value: object) -> object:
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    return value


def _null_pad(column: Column, n: int) -> list:
    return [None] * n


def _concat_with_nulls(column: Column, matched: np.ndarray, pad: list) -> list:
    return list(matched) + pad
