"""Write-ahead logging of catalog commits.

The catalog's in-memory state (tables, partitionings, registered caches) dies
with the process; before this module, everything since the last full
:meth:`~repro.db.catalog.Database.save` was lost with it.  The
:class:`WriteAheadLog` closes that window with the classic discipline: every
:meth:`~repro.db.catalog.Database.update_table` appends one
:class:`WalRecord` — length-prefixed, CRC-checksummed, fsynced — *before* the
in-memory commit, so :meth:`~repro.db.catalog.Database.recover` can replay
the log over the last on-disk snapshot and land every table, partitioning
and cache subscription on the exact pre-crash committed version.

Record framing (one record per commit)::

    +------+----------------+---------------+------------------+
    | RWAL | payload length | payload CRC32 | pickled WalRecord|
    | 4 B  | 4 B big-endian | 4 B big-endian| <length> bytes   |
    +------+----------------+---------------+------------------+

A crash can cut the final record short at any byte: replay stops at the
first frame whose magic, length or checksum does not verify, treats the
remainder as a torn tail, and truncates it so the next append starts on a
clean boundary.  Corruption *before* the tail cannot be distinguished from a
tear and is handled the same way — everything after the damage is discarded,
which is exactly the prefix-durability contract fsync-per-commit buys.

File I/O goes through the small :class:`LogStorage` seam (:class:`FileLogStorage`
over a real file, :class:`MemoryLogStorage` for tests) so the crash-injection
harness in ``tests/db/crashsim.py`` can interpose a fault-injecting
implementation with named crash points and prove, not just claim, the
recovery guarantees.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.errors import WalError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (catalog imports wal)
    from repro.dataset.table import Table, TableDelta
    from repro.partition.partitioning import (
        MaintenanceProfile,
        PartitioningStats,
    )

#: Frame magic; a record not starting with it is torn/foreign and ends replay.
_MAGIC = b"RWAL"

#: Frame header layout: magic + payload length + payload CRC32.
_HEADER = struct.Struct(">4sII")

#: Record kinds a :class:`WalRecord` can carry (see the factory methods).
RECORD_KINDS = ("create", "update", "drop", "partition", "checkpoint")


@dataclass(frozen=True, eq=False)
class WalRecord:
    """One logged catalog commit.

    The payload fields are kind-specific (the rest stay ``None``):

    * ``create`` — ``table``: the full table registered in the catalog;
    * ``update`` — ``delta`` + ``policy``: one versioned
      :class:`~repro.dataset.table.TableDelta` commit and the maintenance
      policy it ran under, so replay re-runs
      :class:`~repro.partition.maintenance.PartitionMaintainer` identically;
    * ``drop`` — no payload, the table (and its partitionings) went away;
    * ``partition`` — ``label`` + the partitioning's reconstruction state
      (gid assignment, attributes, build stats, version, maintenance
      profile); the base table is *not* duplicated, replay re-binds to the
      catalog's copy;
    * ``checkpoint`` — ``versions``: every table's committed version at the
      moment the log was compacted into an on-disk snapshot, so recovery can
      verify the snapshot it loads is the one the marker describes.
    """

    kind: str
    table_name: str = ""
    lsn: int = -1
    delta: "TableDelta | None" = None
    table: "Table | None" = None
    policy: str | None = None
    label: str | None = None
    group_ids: object | None = None
    attributes: list[str] | None = None
    stats: "PartitioningStats | None" = None
    version: int | None = None
    maintenance: "MaintenanceProfile | None" = None
    versions: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise WalError(
                f"unknown WAL record kind {self.kind!r} "
                f"(expected one of {RECORD_KINDS})"
            )

    # -- factories (one per record kind) ---------------------------------------

    @classmethod
    def create(cls, table_name: str, table: "Table") -> "WalRecord":
        return cls(kind="create", table_name=table_name, table=table)

    @classmethod
    def update(
        cls, table_name: str, delta: "TableDelta", policy: str
    ) -> "WalRecord":
        return cls(kind="update", table_name=table_name, delta=delta, policy=policy)

    @classmethod
    def drop(cls, table_name: str) -> "WalRecord":
        return cls(kind="drop", table_name=table_name)

    @classmethod
    def partition(cls, table_name: str, label: str, partitioning) -> "WalRecord":
        return cls(
            kind="partition",
            table_name=table_name,
            label=label,
            group_ids=partitioning.group_ids,
            attributes=list(partitioning.attributes),
            stats=partitioning.stats,
            version=partitioning.version,
            maintenance=partitioning.maintenance,
        )

    @classmethod
    def checkpoint(cls, versions: dict[str, int]) -> "WalRecord":
        return cls(kind="checkpoint", versions=dict(versions))

    def __repr__(self) -> str:
        extras = ""
        if self.kind == "update" and self.delta is not None:
            extras = f", delta={self.delta!r}"
        elif self.kind == "checkpoint":
            extras = f", versions={self.versions!r}"
        return (
            f"WalRecord(kind={self.kind!r}, table={self.table_name!r}, "
            f"lsn={self.lsn}{extras})"
        )


def encode_record(record: WalRecord) -> bytes:
    """Frame one record: magic + length + CRC32 + pickled payload."""
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_stream(data: bytes) -> tuple[list[WalRecord], int, bool]:
    """Decode every complete record from ``data``.

    Returns ``(records, valid_bytes, torn)``: the committed records, the
    byte offset of the first frame that failed to verify (== ``len(data)``
    when the log is clean), and whether trailing bytes were discarded.
    """
    records: list[WalRecord] = []
    offset = 0
    stream = io.BytesIO(data)
    while True:
        header = stream.read(_HEADER.size)
        if len(header) < _HEADER.size:
            return records, offset, len(header) > 0
        magic, length, crc = _HEADER.unpack(header)
        if magic != _MAGIC:
            return records, offset, True
        payload = stream.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            return records, offset, True
        try:
            record = pickle.loads(payload)
        except Exception:
            # A checksummed frame that does not unpickle is damage the CRC
            # could not see (e.g. a truncated pickle of exactly the framed
            # length); treat it as the tail like any other torn record.
            return records, offset, True
        if not isinstance(record, WalRecord):
            return records, offset, True
        records.append(record)
        offset += _HEADER.size + length


class LogStorage:
    """Byte-level storage seam the WAL writes through.

    The contract mirrors a POSIX file plus the page cache: :meth:`append`
    buffers bytes, :meth:`sync` makes everything buffered durable, and
    :meth:`read` returns the *durable* content.  The crash-injection harness
    implements this interface with named crash points; production code uses
    :class:`FileLogStorage`.
    """

    def read(self) -> bytes:
        raise NotImplementedError

    def append(self, data: bytes) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def reset(self, data: bytes = b"") -> None:
        """Atomically replace the entire durable content with ``data``."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class FileLogStorage(LogStorage):
    """Real on-disk storage: append-mode writes, fsync-backed durability."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: io.BufferedWriter | None = None

    def _writer(self) -> io.BufferedWriter:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "ab")
        return self._handle

    def read(self) -> bytes:
        if not self.path.exists():
            return b""
        return self.path.read_bytes()

    def append(self, data: bytes) -> None:
        self._writer().write(data)

    def sync(self) -> None:
        handle = self._writer()
        handle.flush()
        os.fsync(handle.fileno())

    def reset(self, data: bytes = b"") -> None:
        self.close()
        # Write-then-rename so a crash mid-reset leaves either the old log or
        # the new one, never a half-written hybrid.
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._sync_directory()

    def _sync_directory(self) -> None:
        # Make the rename itself durable; some filesystems refuse to fsync a
        # directory fd, which leaves the same guarantees a plain rename has.
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None


class MemoryLogStorage(LogStorage):
    """In-memory storage with real durability semantics for tests."""

    def __init__(self, initial: bytes = b""):
        self.durable = bytes(initial)
        self.buffered = b""

    def read(self) -> bytes:
        return self.durable

    def append(self, data: bytes) -> None:
        self.buffered += data

    def sync(self) -> None:
        self.durable += self.buffered
        self.buffered = b""

    def reset(self, data: bytes = b"") -> None:
        self.durable = bytes(data)
        self.buffered = b""


class WriteAheadLog:
    """Append-only, checksummed, fsync-on-commit log of :class:`WalRecord`\\ s.

    Args:
        storage: Where the bytes live — a path (opened as
            :class:`FileLogStorage`) or any :class:`LogStorage`
            implementation.

    Opening scans the existing content once: committed records define the
    next LSN, and a torn tail left by a crash is truncated immediately so
    subsequent appends land on a clean frame boundary.
    """

    def __init__(self, storage: LogStorage | str | Path):
        if isinstance(storage, (str, Path)):
            storage = FileLogStorage(storage)
        self._storage = storage
        self._closed = False
        records, valid_bytes, torn = decode_stream(storage.read())
        if torn:
            storage.reset(storage.read()[:valid_bytes])
        self._next_lsn = records[-1].lsn + 1 if records else 0
        self.recovered_torn_tail = torn

    @property
    def storage(self) -> LogStorage:
        return self._storage

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def append(self, record: WalRecord) -> WalRecord:
        """Durably commit one record (assigning its LSN) and return it.

        The record is on disk — written *and* fsynced — when this returns;
        a crash at any earlier point leaves, at worst, a torn tail that
        replay truncates.  This is the commit point of
        :meth:`~repro.db.catalog.Database.update_table`.
        """
        if self._closed:
            raise WalError("cannot append to a closed write-ahead log")
        record = replace(record, lsn=self._next_lsn)
        self._storage.append(encode_record(record))
        self._storage.sync()
        self._next_lsn += 1
        return record

    def records(self) -> list[WalRecord]:
        """Every committed record, in commit order (torn tails excluded)."""
        records, _, _ = decode_stream(self._storage.read())
        return records

    def __iter__(self) -> Iterator[WalRecord]:
        return iter(self.records())

    def __len__(self) -> int:
        return len(self.records())

    def reset(self, records: tuple[WalRecord, ...] | list[WalRecord] = ()) -> None:
        """Atomically compact the log down to ``records`` (checkpointing)."""
        if self._closed:
            raise WalError("cannot reset a closed write-ahead log")
        data = b""
        for record in records:
            record = replace(record, lsn=self._next_lsn)
            data += encode_record(record)
            self._next_lsn += 1
        self._storage.reset(data)

    def close(self) -> None:
        self._storage.close()
        self._closed = True

    def __repr__(self) -> str:
        return f"WriteAheadLog(records={len(self)}, next_lsn={self._next_lsn})"
