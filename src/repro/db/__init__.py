"""Lightweight relational engine over columnar tables.

This subpackage substitutes for the PostgreSQL layer of the paper's prototype.
It provides:

* a scalar expression language (column references, literals, arithmetic,
  comparisons, boolean connectives) evaluated vectorised over a table,
* aggregate functions (COUNT, SUM, AVG, MIN, MAX),
* relational operators (selection, projection, join, group-by, order-by,
  limit) exposed through a fluent :class:`~repro.db.query.QueryBuilder`,
* hash and sorted indexes,
* a :class:`~repro.db.catalog.Database` catalog of named tables — durable
  through a :class:`~repro.db.wal.WriteAheadLog` of versioned commits
  (``Database.recover`` replays it after a crash) and readable through
  pinned :class:`~repro.db.snapshot.SnapshotHandle` views while updates
  commit underneath.
"""

from repro.db.expressions import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    LogicalOp,
    Not,
    col,
    lit,
)
from repro.db.aggregates import AggregateFunction, aggregate
from repro.db.query import QueryBuilder, from_table, group_by, inner_join
from repro.db.index import HashIndex, SortedIndex
from repro.db.catalog import Database
from repro.db.snapshot import PinnedTable, SnapshotHandle, SnapshotManager
from repro.db.wal import (
    FileLogStorage,
    LogStorage,
    MemoryLogStorage,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "BinaryOp",
    "Comparison",
    "LogicalOp",
    "Not",
    "col",
    "lit",
    "AggregateFunction",
    "aggregate",
    "QueryBuilder",
    "from_table",
    "group_by",
    "inner_join",
    "HashIndex",
    "SortedIndex",
    "Database",
    "PinnedTable",
    "SnapshotHandle",
    "SnapshotManager",
    "LogStorage",
    "FileLogStorage",
    "MemoryLogStorage",
    "WalRecord",
    "WriteAheadLog",
]
