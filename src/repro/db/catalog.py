"""A tiny database catalog: named tables plus named partitionings.

The paper's system stores the input relation, the representative relation and
the group-id column inside PostgreSQL.  :class:`Database` plays that role: it
owns tables by name and remembers which offline partitionings were built for
which table, so a query session can look them up at evaluation time.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.dataset.io import load_table, save_table
from repro.dataset.table import Table
from repro.errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.partition.partitioning import Partitioning


class Database:
    """An in-memory catalog of named tables and their partitionings."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._tables: dict[str, Table] = {}
        self._partitionings: dict[tuple[str, str], "Partitioning"] = {}

    # -- tables ----------------------------------------------------------------

    def create_table(self, table: Table, name: str | None = None, replace: bool = False) -> Table:
        """Register ``table`` in the catalog under ``name`` (default: table.name)."""
        table_name = name or table.name
        if table_name in self._tables and not replace:
            raise CatalogError(f"table {table_name!r} already exists")
        if name is not None and name != table.name:
            table = Table(table.schema, {c: table.column(c) for c in table.schema.names}, name=name)
        self._tables[table_name] = table
        return table

    def table(self, name: str) -> Table:
        """Return the table registered under ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"table {name!r} not found (available: {sorted(self._tables)})"
            ) from None

    def drop_table(self, name: str) -> None:
        """Remove a table and any partitionings built on it."""
        if name not in self._tables:
            raise CatalogError(f"table {name!r} not found")
        del self._tables[name]
        for key in [k for k in self._partitionings if k[0] == name]:
            del self._partitionings[key]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    # -- partitionings -----------------------------------------------------------

    def register_partitioning(
        self, table_name: str, partitioning: "Partitioning", label: str = "default"
    ) -> None:
        """Associate an offline partitioning with a table under ``label``."""
        if table_name not in self._tables:
            raise CatalogError(f"cannot register partitioning: table {table_name!r} not found")
        self._partitionings[(table_name, label)] = partitioning

    def partitioning(self, table_name: str, label: str = "default") -> "Partitioning":
        """Return the partitioning registered for ``table_name`` under ``label``."""
        try:
            return self._partitionings[(table_name, label)]
        except KeyError:
            raise CatalogError(
                f"no partitioning {label!r} registered for table {table_name!r}"
            ) from None

    def has_partitioning(self, table_name: str, label: str = "default") -> bool:
        return (table_name, label) in self._partitionings

    def partitioning_labels(self, table_name: str) -> list[str]:
        return sorted(label for (t, label) in self._partitionings if t == table_name)

    # -- persistence ---------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist every table to ``directory`` as one NPZ file per table."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name, table in self._tables.items():
            save_table(table, directory / f"{name}.npz")

    @classmethod
    def load(cls, directory: str | Path, name: str = "repro") -> "Database":
        """Load every ``.npz`` table found in ``directory`` into a new catalog."""
        directory = Path(directory)
        if not directory.is_dir():
            raise CatalogError(f"{directory} is not a directory")
        db = cls(name=name)
        for path in sorted(directory.glob("*.npz")):
            table = load_table(path)
            db.create_table(table, name=path.stem, replace=True)
        return db

    def __repr__(self) -> str:
        return f"Database(name={self.name!r}, tables={self.table_names()})"
