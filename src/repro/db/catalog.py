"""A tiny database catalog: named tables plus named partitionings.

The paper's system stores the input relation, the representative relation and
the group-id column inside PostgreSQL.  :class:`Database` plays that role: it
owns tables by name and remembers which offline partitionings were built for
which table, so a query session can look them up at evaluation time.

The catalog is *version-aware*: every table snapshot carries a version, every
registered partitioning records the version it describes, and
:meth:`Database.update_table` moves a table to its next version through a
:class:`~repro.dataset.table.TableDelta` while either incrementally
maintaining each registered partitioning (``policy="maintain"``, the default
— no full re-partition on the hot path) or leaving it behind as *stale*
(``policy="stale"``); stale partitionings are detected by comparing versions
and refused by the engine's AUTO method.  :meth:`save`/:meth:`load`
round-trip the tables *and* every registered partitioning (under
``<table>.partitionings/<label>/``) with versions intact.

The catalog is also *durable* and *snapshot-consistent*:

* attach a :class:`~repro.db.wal.WriteAheadLog` and every commit —
  ``create_table``, ``update_table``, ``drop_table``,
  ``register_partitioning`` — is fsynced to the log *before* it lands in
  memory, so :meth:`Database.recover` replays a crashed catalog (tables,
  partitionings via deterministic :class:`PartitionMaintainer` replay, and
  registered caches' update subscriptions) onto the exact last committed
  versions; :meth:`checkpoint` compacts the log into a fresh on-disk
  snapshot;
* :meth:`snapshot` pins a consistent ``(table version, partitioning
  version)`` read view (:class:`~repro.db.snapshot.SnapshotHandle`) that
  keeps serving the same committed state while later commits proceed
  underneath — old versions stay alive until the handle is released.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.dataset.io import load_table, save_table
from repro.dataset.table import Table, TableDelta
from repro.db.snapshot import SnapshotHandle, SnapshotManager
from repro.db.wal import WalRecord, WriteAheadLog
from repro.errors import CatalogError, RecoveryError
from repro.partition.maintenance import MaintenanceStats, PartitionMaintainer
from repro.partition.partitioning import Partitioning

#: Suffix of the per-table partitioning directories written by :meth:`Database.save`.
_PARTITIONINGS_SUFFIX = ".partitionings"

#: Manifest recording, per catalog name, which tables a save wrote (scoping
#: later cleanups to that catalog's own artifacts) and the catalog's
#: configuration, so :meth:`Database.load` restores it.
_MANIFEST_NAME = "_catalog_manifest.json"


def _read_manifest(directory: Path) -> dict:
    path = directory / _MANIFEST_NAME
    if not path.is_file():
        return {}
    try:
        manifest = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return {}
    return manifest if isinstance(manifest, dict) else {}

#: Valid per-update / per-database maintenance policies.
MAINTENANCE_POLICIES = ("maintain", "stale")


@dataclass
class TableUpdateResult:
    """Outcome of one :meth:`Database.update_table` call."""

    table: Table
    """The new table version now registered in the catalog."""

    delta: TableDelta
    """The delta that produced it."""

    maintained: dict[str, MaintenanceStats] = field(default_factory=dict)
    """Per-label maintenance profile of every partitioning carried along."""

    stale_labels: list[str] = field(default_factory=list)
    """Labels of partitionings left behind (now stale) by the policy."""


class Database:
    """An in-memory catalog of named tables and their partitionings.

    Args:
        name: Catalog name (used in ``repr`` only).
        maintenance_policy: What :meth:`update_table` does with registered
            partitionings by default — ``"maintain"`` carries them through the
            delta incrementally, ``"stale"`` leaves them at the old version.
        maintainer: The :class:`PartitionMaintainer` used for maintenance
            (default: a fresh one with the partitionings' own partitioners).
        wal: Optional write-ahead log (or a path one should live at); when
            attached, every catalog commit is durably logged before it is
            applied, making :meth:`recover` possible after a crash.
    """

    def __init__(
        self,
        name: str = "repro",
        maintenance_policy: str = "maintain",
        maintainer: PartitionMaintainer | None = None,
        wal: WriteAheadLog | str | Path | None = None,
    ):
        if maintenance_policy not in MAINTENANCE_POLICIES:
            raise CatalogError(
                f"unknown maintenance policy {maintenance_policy!r} "
                f"(expected one of {MAINTENANCE_POLICIES})"
            )
        self.name = name
        self.maintenance_policy = maintenance_policy
        self.maintainer = maintainer or PartitionMaintainer()
        self._tables: dict[str, Table] = {}
        self._partitionings: dict[tuple[str, str], Partitioning] = {}
        self._caches: list = []
        self._snapshots = SnapshotManager()
        self._wal: WriteAheadLog | None = None
        if wal is not None:
            self.attach_wal(wal)

    # -- durability ---------------------------------------------------------------

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log, if any."""
        return self._wal

    def attach_wal(self, wal: WriteAheadLog | str | Path) -> WriteAheadLog:
        """Start logging every commit to ``wal`` (a log or a path for one).

        Attaching does *not* replay existing log content — use
        :meth:`recover` to reconstruct a crashed catalog.  Attach an empty
        (or freshly checkpointed) log to a catalog whose state is already
        durable elsewhere, otherwise recovery would double-apply history.
        """
        if not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal)
        self._wal = wal
        return wal

    def detach_wal(self) -> WriteAheadLog | None:
        """Stop logging commits; returns the previously attached log."""
        wal, self._wal = self._wal, None
        return wal

    def _log(self, record: WalRecord) -> None:
        """Durably commit ``record`` before the in-memory state changes.

        This is the write-ahead discipline's single funnel: when it returns,
        the record is fsynced; if it raises (storage failure, simulated
        crash), the in-memory catalog is untouched and the caller's commit
        never happened.
        """
        if self._wal is not None:
            self._wal.append(record)

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self, names: Iterable[str] | None = None) -> SnapshotHandle:
        """Pin a consistent read view of the current committed state.

        The returned handle keeps serving exactly this moment's
        ``(table version, partitioning version)`` pairs while later
        :meth:`update_table` commits proceed; release it (or use it as a
        context manager) when the reader is done.
        """
        return self._snapshots.acquire(self, names)

    @property
    def snapshots(self) -> SnapshotManager:
        """The manager tracking this catalog's active snapshot handles."""
        return self._snapshots

    # -- result caches -----------------------------------------------------------

    def register_cache(self, cache) -> None:
        """Subscribe a result cache to this catalog's update stream.

        A registered cache receives ``notify_update(name, delta, maintained,
        stale_labels)`` after every committed :meth:`update_table` (with each
        label's :class:`MaintenanceStats`, whose ``touched_groups`` drive
        delta-aware invalidation) and ``invalidate_table(name)`` whenever a
        table is dropped or replaced out-of-band.
        """
        if cache not in self._caches:
            self._caches.append(cache)

    def unregister_cache(self, cache) -> None:
        """Remove a cache from the update stream (no-op if not registered)."""
        if cache in self._caches:
            self._caches.remove(cache)

    def _invalidate_caches(self, table_name: str) -> None:
        for cache in self._caches:
            cache.invalidate_table(table_name)

    # -- tables ----------------------------------------------------------------

    def create_table(self, table: Table, name: str | None = None, replace: bool = False) -> Table:
        """Register ``table`` in the catalog under ``name`` (default: table.name)."""
        table_name = name or table.name
        replacing = table_name in self._tables
        if replacing and not replace:
            raise CatalogError(f"table {table_name!r} already exists")
        if name is not None and name != table.name:
            table = Table(
                table.schema,
                {c: table.column(c) for c in table.schema.names},
                name=name,
                version=table.version,
            )
        self._log(WalRecord.create(table_name, table))
        if replacing:
            # Out-of-band replacement does not bump versions, so registered
            # partitionings can no longer be trusted (or even shape-checked)
            # against the new table: drop them, as drop_table would.  Cached
            # results are equally untrustworthy.
            for key in [k for k in self._partitionings if k[0] == table_name]:
                del self._partitionings[key]
            self._invalidate_caches(table_name)
        self._tables[table_name] = table
        return table

    def table(self, name: str) -> Table:
        """Return the table registered under ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"table {name!r} not found (available: {sorted(self._tables)})"
            ) from None

    def drop_table(self, name: str) -> None:
        """Remove a table and any partitionings built on it."""
        if name not in self._tables:
            raise CatalogError(f"table {name!r} not found")
        self._log(WalRecord.drop(name))
        del self._tables[name]
        for key in [k for k in self._partitionings if k[0] == name]:
            del self._partitionings[key]
        self._invalidate_caches(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    # -- versioned updates -------------------------------------------------------

    def update_table(
        self, name: str, delta: TableDelta, policy: str | None = None
    ) -> TableUpdateResult:
        """Move table ``name`` to its next version through ``delta``.

        Every partitioning registered for the table is either maintained
        through the delta (``policy="maintain"``) — so it describes the new
        version and keeps its τ/ω guarantees — or left at its old version
        (``policy="stale"``), where version comparison marks it stale until
        it is rebuilt or re-registered.  ``policy=None`` uses the catalog's
        :attr:`maintenance_policy`.

        With a write-ahead log attached, the delta record is fsynced to the
        log *after* maintenance succeeds but *before* any in-memory state
        changes — the append is the commit point.  A crash (or storage
        failure) before it leaves the catalog untouched; a crash after it is
        exactly what :meth:`recover` replays.
        """
        policy = self.maintenance_policy if policy is None else policy
        if policy not in MAINTENANCE_POLICIES:
            raise CatalogError(
                f"unknown maintenance policy {policy!r} "
                f"(expected one of {MAINTENANCE_POLICIES})"
            )
        table = self.table(name)
        new_table = table.apply_delta(delta)

        # Maintain first, commit last: a failure mid-maintenance (a broken
        # custom maintainer, a pathological re-split) must leave the catalog
        # exactly as it was, so the caller can retry the same delta.
        result = TableUpdateResult(table=new_table, delta=delta)
        updated: dict[tuple[str, str], Partitioning] = {}
        for (table_name, label), partitioning in sorted(self._partitionings.items()):
            if table_name != name:
                continue
            # A partitioning that already lags the pre-update version cannot
            # be carried through this delta (deltas are anchored to the
            # current version): it stays stale until rebuilt.
            if policy == "maintain" and partitioning.version == delta.base_version:
                maintained, stats = self.maintainer.maintain(
                    partitioning, new_table, delta
                )
                updated[(table_name, label)] = maintained
                result.maintained[label] = stats
            else:
                result.stale_labels.append(label)
        self._log(WalRecord.update(name, delta, policy))
        self._tables[name] = new_table
        self._partitionings.update(updated)
        # Commit done: feed the delta (with each label's touched-group set)
        # to the registered result caches so they can coalesce it.
        for cache in self._caches:
            cache.notify_update(name, delta, result.maintained, result.stale_labels)
        return result

    # -- partitionings -----------------------------------------------------------

    def register_partitioning(
        self, table_name: str, partitioning: Partitioning, label: str = "default"
    ) -> None:
        """Associate an offline partitioning with a table under ``label``."""
        if table_name not in self._tables:
            raise CatalogError(f"cannot register partitioning: table {table_name!r} not found")
        self._log(WalRecord.partition(table_name, label, partitioning))
        self._partitionings[(table_name, label)] = partitioning

    def partitioning(self, table_name: str, label: str = "default") -> Partitioning:
        """Return the partitioning registered for ``table_name`` under ``label``."""
        try:
            return self._partitionings[(table_name, label)]
        except KeyError:
            raise CatalogError(
                f"no partitioning {label!r} registered for table {table_name!r}"
            ) from None

    def has_partitioning(self, table_name: str, label: str = "default") -> bool:
        return (table_name, label) in self._partitionings

    def partitioning_labels(self, table_name: str) -> list[str]:
        return sorted(label for (t, label) in self._partitionings if t == table_name)

    def partitioning_version(self, table_name: str, label: str = "default") -> int:
        """The table version the registered partitioning describes."""
        return self.partitioning(table_name, label).version

    def is_partitioning_stale(self, table_name: str, label: str = "default") -> bool:
        """Whether the partitioning lags behind the table's current version."""
        return self.partitioning(table_name, label).version != self.table(table_name).version

    # -- persistence ---------------------------------------------------------------

    def save(self, directory: str | Path) -> list[tuple[str, str]]:
        """Persist the catalog: one NPZ per table, one subdirectory per
        registered partitioning under ``<table>.partitionings/<label>/``.

        Only partitionings describing their table's *current* version are
        persisted: a stale partitioning is anchored to a table version that
        no longer exists in the catalog, so there is nothing valid to restore
        it against — rebuilding (or maintaining before saving) is the
        recourse, exactly as at runtime.  The skipped ``(table, label)``
        pairs are returned so callers can see what was not persisted.

        Catalogs may share a directory (each cleans up only the artifacts
        its own manifest entry records), but the table-file namespace is
        per-directory: catalogs sharing a directory must use disjoint table
        names, or their ``<table>.npz`` files overwrite each other.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Remove artifacts of tables a *previous save of this catalog* wrote
        # but that have since been dropped, so a re-save does not resurrect
        # them at load time.  The manifest is keyed by catalog name, scoping
        # the cleanup: files this catalog never wrote (a user's unrelated
        # .npz, a different catalog sharing the directory) are left alone.
        manifest = _read_manifest(directory)
        catalogs = manifest.setdefault("catalogs", {})
        previously_saved = set(catalogs.get(self.name, {}).get("tables", []))
        for name in previously_saved - set(self._tables):
            (directory / f"{name}.npz").unlink(missing_ok=True)
            stale_dir = directory / f"{name}{_PARTITIONINGS_SUFFIX}"
            if stale_dir.is_dir():
                shutil.rmtree(stale_dir)
        for name, table in self._tables.items():
            save_table(table, directory / f"{name}.npz")
            partitionings_dir = directory / f"{name}{_PARTITIONINGS_SUFFIX}"
            if partitionings_dir.exists():
                shutil.rmtree(partitionings_dir)
        skipped: list[tuple[str, str]] = []
        for (table_name, label), partitioning in self._partitionings.items():
            if partitioning.version != self.table(table_name).version:
                skipped.append((table_name, label))
                continue
            partitioning.save(directory / f"{table_name}{_PARTITIONINGS_SUFFIX}" / label)
        catalogs[self.name] = {
            "tables": sorted(self._tables),
            "maintenance_policy": self.maintenance_policy,
        }
        (directory / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        return skipped

    @classmethod
    def load(cls, directory: str | Path, name: str = "repro") -> "Database":
        """Load the tables — and their persisted partitionings — from ``directory``.

        If the directory's manifest has an entry for ``name``, the catalog's
        configuration (its maintenance policy) is restored from it and only
        *that catalog's* tables are loaded, so catalogs sharing a directory
        stay isolated.  Without a manifest entry, every ``.npz`` in the
        directory is loaded.  Partitioning directories that do not match a
        loaded table (another catalog's, or orphaned artifacts) are skipped,
        mirroring :meth:`save`'s tolerance of foreign files.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise CatalogError(f"{directory} is not a directory")
        entry = _read_manifest(directory).get("catalogs", {}).get(name)
        db = cls(
            name=name,
            maintenance_policy=(entry or {}).get("maintenance_policy", "maintain"),
        )
        own_tables = set(entry["tables"]) if entry is not None else None
        for path in sorted(directory.glob("*.npz")):
            if own_tables is not None and path.stem not in own_tables:
                continue
            table = load_table(path)
            db.create_table(table, name=path.stem, replace=True)
        for partitionings_dir in sorted(directory.glob(f"*{_PARTITIONINGS_SUFFIX}")):
            if not partitionings_dir.is_dir():
                continue
            table_name = partitionings_dir.name[: -len(_PARTITIONINGS_SUFFIX)]
            if table_name not in db:
                continue
            for label_dir in sorted(p for p in partitionings_dir.iterdir() if p.is_dir()):
                partitioning = Partitioning.load(label_dir, db.table(table_name))
                db.register_partitioning(table_name, partitioning, label=label_dir.name)
        return db

    # -- checkpoint / recovery -------------------------------------------------------

    def checkpoint(self, directory: str | Path) -> list[tuple[str, str]]:
        """Compact the write-ahead log into a fresh on-disk snapshot.

        Persists the current committed state with :meth:`save`, then resets
        the attached log down to a single ``checkpoint`` marker recording
        every table's version — replay work after the next crash starts from
        here instead of the beginning of history.  A crash *during* the
        checkpoint is safe in both orders: before the log reset, recovery
        loads the new snapshot and skips the already-absorbed records (their
        versions lag the snapshot); the reset itself is an atomic replace.

        Returns :meth:`save`'s skipped ``(table, label)`` pairs (stale
        partitionings that had nothing consistent to persist).  Active
        snapshot handles are unaffected — they hold their pinned versions in
        memory regardless of what the log retains.
        """
        skipped = self.save(directory)
        if self._wal is not None:
            versions = {name: table.version for name, table in self._tables.items()}
            self._wal.reset([WalRecord.checkpoint(versions)])
        return skipped

    @classmethod
    def recover(
        cls,
        wal: WriteAheadLog | str | Path,
        directory: str | Path | None = None,
        name: str = "repro",
        caches: Iterable = (),
    ) -> "Database":
        """Rebuild the catalog a crashed process left behind.

        Loads the last snapshot from ``directory`` (when given — a catalog
        that never checkpointed recovers from the log alone), registers
        ``caches`` so they subscribe to the replayed update stream, then
        replays every committed log record in order:

        * ``create``/``drop``/``partition`` records reconstruct the catalog
          shape;
        * ``update`` records re-run :meth:`update_table` under the logged
          policy — :class:`PartitionMaintainer` replay is deterministic, so
          maintained partitionings land bit-identical to the pre-crash state;
        * records whose versions the snapshot already includes are skipped
          (the crash fell inside a checkpoint's save/reset window);
        * a version gap neither of those explains raises
          :class:`~repro.errors.RecoveryError` — recovery never guesses.

        The returned catalog has the log attached and keeps appending to it,
        so a second crash recovers the same way.  The log's torn tail (a
        commit cut short mid-write) was already truncated when ``wal``
        opened; everything fsynced survives, everything past the last commit
        point does not — that is the guarantee the crash-injection suite
        asserts point by point.
        """
        if not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal)
        if directory is not None and Path(directory).is_dir():
            db = cls.load(directory, name=name)
        else:
            db = cls(name=name)
        for cache in caches:
            db.register_cache(cache)
        for record in wal.records():
            db._apply_record(record)
        db._wal = wal
        return db

    def _apply_record(self, record: WalRecord) -> None:
        """Replay one committed log record onto the in-memory state."""
        name = record.table_name
        if record.kind == "checkpoint":
            for table_name, version in record.versions.items():
                if table_name not in self._tables or (
                    self._tables[table_name].version < version
                ):
                    raise RecoveryError(
                        f"checkpoint marker expects table {table_name!r} at "
                        f"version {version}, but the loaded snapshot "
                        + (
                            f"has it at {self._tables[table_name].version}"
                            if table_name in self._tables
                            else "does not contain it"
                        )
                        + " — recover from the directory the checkpoint wrote"
                    )
        elif record.kind == "create":
            assert record.table is not None
            if name in self._tables and (
                self._tables[name].version >= record.table.version
            ):
                return  # snapshot already includes this registration
            self.create_table(record.table, name=name, replace=True)
        elif record.kind == "drop":
            if name in self._tables:
                self.drop_table(name)
        elif record.kind == "partition":
            if name not in self._tables:
                raise RecoveryError(
                    f"log registers a partitioning for unknown table {name!r}"
                )
            table = self._tables[name]
            if table.version != record.version:
                return  # snapshot already carried this partitioning forward
            assert record.stats is not None and record.attributes is not None
            partitioning = Partitioning(
                table,
                record.group_ids,
                record.attributes,
                record.stats,
                version=record.version,
                maintenance=record.maintenance,
            )
            self.register_partitioning(name, partitioning, label=record.label or "default")
        elif record.kind == "update":
            assert record.delta is not None
            if name not in self._tables:
                raise RecoveryError(
                    f"log updates unknown table {name!r} (snapshot and log "
                    "disagree; was the snapshot directory overwritten?)"
                )
            current = self._tables[name].version
            if current >= record.delta.new_version:
                return  # snapshot already includes this commit
            if current != record.delta.base_version:
                raise RecoveryError(
                    f"cannot replay table {name!r}: log delta moves version "
                    f"{record.delta.base_version} -> {record.delta.new_version} "
                    f"but the recovered table is at {current}"
                )
            self.update_table(name, record.delta, policy=record.policy)
        else:  # pragma: no cover - WalRecord.__post_init__ rejects these
            raise RecoveryError(f"unknown record kind {record.kind!r}")

    def __repr__(self) -> str:
        return f"Database(name={self.name!r}, tables={self.table_names()})"
