"""Aggregate functions used by both the relational engine and PaQL.

PaQL global predicates are linear aggregates over a package (COUNT, SUM, and
AVG which is rewritten linearly during ILP translation); the relational
group-by operator additionally supports MIN and MAX.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.dataset.table import Table
from repro.errors import ExpressionError


class AggregateFunction(enum.Enum):
    """Aggregate function names shared by PaQL and the group-by operator."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"

    @property
    def is_linear(self) -> bool:
        """Whether the aggregate can be expressed as a linear function.

        COUNT and SUM are directly linear; AVG becomes linear when moved to
        one side of a constraint (the rewrite used by the translation rules).
        MIN / MAX are not linear and therefore not allowed in PaQL global
        predicates in this implementation (matching the paper's scope).
        """
        return self in (AggregateFunction.COUNT, AggregateFunction.SUM, AggregateFunction.AVG)

    @classmethod
    def parse(cls, name: str) -> "AggregateFunction":
        try:
            return cls(name.upper())
        except ValueError:
            raise ExpressionError(f"unknown aggregate function: {name!r}") from None


@dataclass(frozen=True)
class AggregateSpec:
    """An aggregate call, e.g. ``SUM(kcal)`` or ``COUNT(*)``.

    Attributes:
        function: Which aggregate to compute.
        column: The target column name, or ``None`` for ``COUNT(*)``.
        alias: Output column name when used in a group-by projection.
    """

    function: AggregateFunction
    column: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.function is not AggregateFunction.COUNT and self.column is None:
            raise ExpressionError(f"{self.function.value} requires a column argument")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        target = self.column if self.column is not None else "*"
        return f"{self.function.value.lower()}_{target}".replace("*", "all")


def aggregate(table: Table, spec: AggregateSpec, weights: np.ndarray | None = None) -> float:
    """Compute a single aggregate over an entire table.

    Args:
        table: The input relation.
        spec: Which aggregate to compute.
        weights: Optional per-row multiplicities.  When provided, the
            aggregate treats each row as occurring ``weights[i]`` times —
            this is how packages (multisets of tuples) are aggregated without
            materialising repeated rows.

    Returns:
        The aggregate value as a float.  Aggregates over zero rows return 0.0
        for COUNT and SUM, and NaN for AVG/MIN/MAX.
    """
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (table.num_rows,):
            raise ExpressionError(
                f"weights have shape {weights.shape}, expected ({table.num_rows},)"
            )

    if spec.function is AggregateFunction.COUNT:
        if weights is None:
            return float(table.num_rows)
        return float(weights.sum())

    values = table.numeric_column(spec.column)
    if weights is None:
        weights = np.ones(table.num_rows, dtype=np.float64)

    active = weights > 0
    if spec.function is AggregateFunction.SUM:
        return float(np.dot(values, weights))
    if spec.function is AggregateFunction.AVG:
        total_weight = weights.sum()
        if total_weight == 0:
            return float("nan")
        return float(np.dot(values, weights) / total_weight)
    if spec.function is AggregateFunction.MIN:
        return float(values[active].min()) if active.any() else float("nan")
    if spec.function is AggregateFunction.MAX:
        return float(values[active].max()) if active.any() else float("nan")
    raise ExpressionError(f"unsupported aggregate: {spec.function}")


def aggregate_groups(
    values: np.ndarray, group_ids: np.ndarray, function: AggregateFunction, num_groups: int
) -> np.ndarray:
    """Compute an aggregate per group for a dense group-id labelling.

    Args:
        values: Per-row numeric values (ignored for COUNT).
        group_ids: Per-row integer group labels in ``[0, num_groups)``.
        function: The aggregate to compute.
        num_groups: Total number of groups.

    Returns:
        Array of length ``num_groups`` with one aggregate value per group.
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    counts = np.bincount(group_ids, minlength=num_groups).astype(np.float64)
    if function is AggregateFunction.COUNT:
        return counts

    values = np.asarray(values, dtype=np.float64)
    if function is AggregateFunction.SUM:
        return np.bincount(group_ids, weights=values, minlength=num_groups)
    if function is AggregateFunction.AVG:
        sums = np.bincount(group_ids, weights=values, minlength=num_groups)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(counts > 0, sums / counts, np.nan)
    result = np.full(num_groups, np.nan)
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    sorted_values = values[order]
    boundaries = np.searchsorted(sorted_ids, np.arange(num_groups + 1))
    for g in range(num_groups):
        start, stop = boundaries[g], boundaries[g + 1]
        if start == stop:
            continue
        chunk = sorted_values[start:stop]
        result[g] = chunk.min() if function is AggregateFunction.MIN else chunk.max()
    return result
