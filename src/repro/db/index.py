"""Secondary indexes over table columns.

The relational engine is scan-based, but the partitioner and the engine's
group lookups benefit from two classic index structures:

* :class:`HashIndex` — equality lookups (used to fetch all rows of a
  partition group by its ``gid``), and
* :class:`SortedIndex` — range lookups over a numeric column.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.dataset.table import Table
from repro.errors import QueryError


class HashIndex:
    """Equality index from column value to row positions."""

    def __init__(self, table: Table, column: str):
        table.schema.require([column])
        self.column = column
        self._buckets: dict[object, np.ndarray] = {}
        values = table.column(column)
        positions: dict[object, list[int]] = {}
        for i, value in enumerate(values):
            positions.setdefault(_normalise(value), []).append(i)
        for key, rows in positions.items():
            self._buckets[key] = np.array(rows, dtype=np.int64)

    def lookup(self, value: object) -> np.ndarray:
        """Return the row positions whose column equals ``value``."""
        return self._buckets.get(_normalise(value), np.empty(0, dtype=np.int64))

    def keys(self) -> list[object]:
        """Return all distinct indexed values."""
        return list(self._buckets.keys())

    def __contains__(self, value: object) -> bool:
        return _normalise(value) in self._buckets

    def __len__(self) -> int:
        return len(self._buckets)


class SortedIndex:
    """Sorted index over a numeric column supporting range queries."""

    def __init__(self, table: Table, column: str):
        table.schema.require_numeric([column])
        self.column = column
        values = table.numeric_column(column)
        self._order = np.argsort(values, kind="stable")
        self._sorted_values = values[self._order]

    def range(self, low: float | None = None, high: float | None = None,
              include_low: bool = True, include_high: bool = True) -> np.ndarray:
        """Return row positions with values in the given (possibly open) range."""
        if low is not None and high is not None and low > high:
            raise QueryError(f"invalid range: low {low} > high {high}")
        start = 0
        stop = len(self._sorted_values)
        if low is not None:
            side = "left" if include_low else "right"
            start = int(np.searchsorted(self._sorted_values, low, side=side))
        if high is not None:
            side = "right" if include_high else "left"
            stop = int(np.searchsorted(self._sorted_values, high, side=side))
        return np.sort(self._order[start:stop])

    def min(self) -> float:
        if len(self._sorted_values) == 0:
            raise QueryError("index over empty table has no minimum")
        return float(self._sorted_values[0])

    def max(self) -> float:
        if len(self._sorted_values) == 0:
            raise QueryError("index over empty table has no maximum")
        return float(self._sorted_values[-1])

    def __len__(self) -> int:
        return len(self._sorted_values)


def build_group_index(table: Table, gid_column: str = "gid") -> dict[int, np.ndarray]:
    """Build a mapping ``gid -> row positions`` used heavily by SKETCHREFINE."""
    index = HashIndex(table, gid_column)
    return {int(key): index.lookup(key) for key in index.keys()}


def _normalise(value: object) -> object:
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    return value
