"""Vectorised scalar expressions over tables.

Expressions form a small AST — column references, literals, arithmetic,
comparisons and boolean connectives — that evaluates to a NumPy array over all
rows of a :class:`~repro.dataset.table.Table`.  They are used for:

* WHERE-clause base predicates of PaQL queries,
* per-tuple coefficient computation during PaQL→ILP translation, and
* filters inside the relational operators.

The convenience constructors :func:`col` and :func:`lit` plus operator
overloading give a fluent syntax::

    predicate = (col("gluten") == "free") & (col("kcal") < 900)
"""

from __future__ import annotations

import abc
import enum
from typing import Iterable

import numpy as np

from repro.dataset.table import Table
from repro.errors import ExpressionError


class Expression(abc.ABC):
    """Base class for all scalar expressions."""

    @abc.abstractmethod
    def evaluate(self, table: Table) -> np.ndarray:
        """Evaluate the expression over every row of ``table``."""

    @abc.abstractmethod
    def referenced_columns(self) -> set[str]:
        """Return the set of column names the expression reads."""

    # -- operator overloading -------------------------------------------------

    def _binary(self, other: object, op: "ArithmeticOperator") -> "BinaryOp":
        return BinaryOp(self, op, _wrap(other))

    def __add__(self, other: object) -> "BinaryOp":
        return self._binary(other, ArithmeticOperator.ADD)

    def __radd__(self, other: object) -> "BinaryOp":
        return BinaryOp(_wrap(other), ArithmeticOperator.ADD, self)

    def __sub__(self, other: object) -> "BinaryOp":
        return self._binary(other, ArithmeticOperator.SUB)

    def __rsub__(self, other: object) -> "BinaryOp":
        return BinaryOp(_wrap(other), ArithmeticOperator.SUB, self)

    def __mul__(self, other: object) -> "BinaryOp":
        return self._binary(other, ArithmeticOperator.MUL)

    def __rmul__(self, other: object) -> "BinaryOp":
        return BinaryOp(_wrap(other), ArithmeticOperator.MUL, self)

    def __truediv__(self, other: object) -> "BinaryOp":
        return self._binary(other, ArithmeticOperator.DIV)

    def __rtruediv__(self, other: object) -> "BinaryOp":
        return BinaryOp(_wrap(other), ArithmeticOperator.DIV, self)

    def __neg__(self) -> "BinaryOp":
        return BinaryOp(Literal(-1.0), ArithmeticOperator.MUL, self)

    def _compare(self, other: object, op: "ComparisonOperator") -> "Comparison":
        return Comparison(self, op, _wrap(other))

    def __eq__(self, other: object):  # type: ignore[override]
        return self._compare(other, ComparisonOperator.EQ)

    def __ne__(self, other: object):  # type: ignore[override]
        return self._compare(other, ComparisonOperator.NE)

    def __lt__(self, other: object) -> "Comparison":
        return self._compare(other, ComparisonOperator.LT)

    def __le__(self, other: object) -> "Comparison":
        return self._compare(other, ComparisonOperator.LE)

    def __gt__(self, other: object) -> "Comparison":
        return self._compare(other, ComparisonOperator.GT)

    def __ge__(self, other: object) -> "Comparison":
        return self._compare(other, ComparisonOperator.GE)

    def __and__(self, other: "Expression") -> "LogicalOp":
        return LogicalOp(LogicalOperator.AND, [self, other])

    def __or__(self, other: "Expression") -> "LogicalOp":
        return LogicalOp(LogicalOperator.OR, [self, other])

    def __invert__(self) -> "Not":
        return Not(self)

    def __hash__(self) -> int:  # Expressions are identity-hashed (== is overloaded).
        return id(self)

    def is_between(self, low: object, high: object) -> "LogicalOp":
        """Return the predicate ``low <= self <= high``."""
        return (self >= low) & (self <= high)

    def isin(self, values: Iterable[object]) -> "InList":
        """Return the predicate ``self IN values``."""
        return InList(self, list(values))


class ArithmeticOperator(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


class ComparisonOperator(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flip(self) -> "ComparisonOperator":
        """Return the operator with its operand order reversed."""
        mapping = {
            ComparisonOperator.LT: ComparisonOperator.GT,
            ComparisonOperator.LE: ComparisonOperator.GE,
            ComparisonOperator.GT: ComparisonOperator.LT,
            ComparisonOperator.GE: ComparisonOperator.LE,
        }
        return mapping.get(self, self)


class LogicalOperator(enum.Enum):
    AND = "AND"
    OR = "OR"


class ColumnRef(Expression):
    """Reference to a column of the evaluated table."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, table: Table) -> np.ndarray:
        return table.column(self.name)

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant scalar (number or string)."""

    def __init__(self, value: object):
        if isinstance(value, Expression):
            raise ExpressionError("Literal cannot wrap another expression")
        self.value = value

    def evaluate(self, table: Table) -> np.ndarray:
        return np.full(table.num_rows, self.value, dtype=object if isinstance(self.value, str) else np.float64)

    def referenced_columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class BinaryOp(Expression):
    """Arithmetic combination of two expressions."""

    def __init__(self, left: Expression, op: ArithmeticOperator, right: Expression):
        self.left = left
        self.op = op
        self.right = right

    def evaluate(self, table: Table) -> np.ndarray:
        left = np.asarray(self.left.evaluate(table), dtype=np.float64)
        right = np.asarray(self.right.evaluate(table), dtype=np.float64)
        if self.op is ArithmeticOperator.ADD:
            return left + right
        if self.op is ArithmeticOperator.SUB:
            return left - right
        if self.op is ArithmeticOperator.MUL:
            return left * right
        with np.errstate(divide="ignore", invalid="ignore"):
            return left / right

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op.value} {self.right!r})"


class Comparison(Expression):
    """Comparison of two expressions, yielding a boolean mask."""

    def __init__(self, left: Expression, op: ComparisonOperator, right: Expression):
        self.left = left
        self.op = op
        self.right = right

    def evaluate(self, table: Table) -> np.ndarray:
        left = self.left.evaluate(table)
        right = self.right.evaluate(table)
        if _is_string_like(left) or _is_string_like(right):
            left_values = np.asarray(left, dtype=object)
            right_values = np.asarray(right, dtype=object)
        else:
            left_values = np.asarray(left, dtype=np.float64)
            right_values = np.asarray(right, dtype=np.float64)
        if self.op is ComparisonOperator.EQ:
            return left_values == right_values
        if self.op is ComparisonOperator.NE:
            return left_values != right_values
        if self.op is ComparisonOperator.LT:
            return left_values < right_values
        if self.op is ComparisonOperator.LE:
            return left_values <= right_values
        if self.op is ComparisonOperator.GT:
            return left_values > right_values
        return left_values >= right_values

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op.value} {self.right!r})"


class LogicalOp(Expression):
    """Boolean conjunction / disjunction of predicate expressions."""

    def __init__(self, op: LogicalOperator, operands: list[Expression]):
        if len(operands) < 2:
            raise ExpressionError("logical operators need at least two operands")
        self.op = op
        self.operands = list(operands)

    def evaluate(self, table: Table) -> np.ndarray:
        masks = [np.asarray(o.evaluate(table), dtype=bool) for o in self.operands]
        result = masks[0]
        for mask in masks[1:]:
            result = result & mask if self.op is LogicalOperator.AND else result | mask
        return result

    def referenced_columns(self) -> set[str]:
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.referenced_columns()
        return result

    def __repr__(self) -> str:
        joiner = f" {self.op.value} "
        return "(" + joiner.join(repr(o) for o in self.operands) + ")"


class Not(Expression):
    """Boolean negation of a predicate expression."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def evaluate(self, table: Table) -> np.ndarray:
        return ~np.asarray(self.operand.evaluate(table), dtype=bool)

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


class InList(Expression):
    """Membership predicate: expression value is one of a list of constants."""

    def __init__(self, operand: Expression, values: list[object]):
        self.operand = operand
        self.values = list(values)

    def evaluate(self, table: Table) -> np.ndarray:
        evaluated = self.operand.evaluate(table)
        allowed = set(self.values)
        return np.array([v in allowed for v in evaluated], dtype=bool)

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} IN {self.values!r})"


def col(name: str) -> ColumnRef:
    """Shorthand for a column reference expression."""
    return ColumnRef(name)


def lit(value: object) -> Literal:
    """Shorthand for a literal expression."""
    return Literal(value)


def _wrap(value: object) -> Expression:
    return value if isinstance(value, Expression) else Literal(value)


def _is_string_like(values: np.ndarray | object) -> bool:
    array = np.asarray(values)
    return array.dtype == object or array.dtype.kind in ("U", "S")
