"""Shared workload data structures.

A :class:`Workload` bundles a generated table with its suite of package
queries and the union of their query attributes (the paper's "workload
attributes", used as the default offline-partitioning attributes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataset.table import Table
from repro.paql.ast import PackageQuery


@dataclass
class WorkloadQuery:
    """One benchmark query: its identifier plus the built query object."""

    name: str
    query: PackageQuery
    description: str = ""

    @property
    def attributes(self) -> set[str]:
        """Numeric attributes referenced in global constraints and the objective."""
        return self.query.numeric_query_columns


@dataclass
class Workload:
    """A dataset together with its package-query benchmark suite."""

    name: str
    table: Table
    queries: list[WorkloadQuery] = field(default_factory=list)

    @property
    def workload_attributes(self) -> list[str]:
        """Union of all query attributes, in deterministic order.

        The paper partitions each dataset on exactly this attribute set for
        the scalability experiments (Section 5.2.1).
        """
        attributes: set[str] = set()
        for workload_query in self.queries:
            attributes |= workload_query.attributes
        return sorted(attributes)

    def query(self, name: str) -> WorkloadQuery:
        """Look up a query by name (e.g. ``"Q3"``)."""
        for workload_query in self.queries:
            if workload_query.name == name:
                return workload_query
        raise KeyError(f"workload {self.name!r} has no query named {name!r}")

    @property
    def query_names(self) -> list[str]:
        return [q.name for q in self.queries]
