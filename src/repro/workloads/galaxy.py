"""Synthetic stand-in for the SDSS Galaxy view and its package-query workload.

The paper's real-world dataset is ~5.5M tuples extracted from the Galaxy view
of the Sloan Digital Sky Survey (data release 12), with package queries
adapted from the sample SQL queries on the SDSS web site.  The real data
cannot be shipped, so :func:`galaxy_table` generates a seeded synthetic table
with the same *shape*: the photometric columns the sample queries touch
(positions, Petrosian radii/magnitudes/fluxes, PSF and model magnitudes,
extinction, redshift), with realistic skew — magnitudes roughly normal, fluxes
and radii log-normal, positions uniform over the survey footprint.

:func:`galaxy_workload` builds the seven package queries Q1–Q7 following the
paper's adaptation procedure (Section 5.1): selection predicates become global
constraints whose bounds are the original constants multiplied by the expected
package size, a cardinality bound is added, and an aggregate becomes the
objective.  Bounds are derived from the generated table's own statistics so
the queries are feasible with high probability at every data fraction.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.paql.ast import PackageQuery
from repro.paql.builder import query_over
from repro.workloads.specs import Workload, WorkloadQuery

#: Numeric attributes of the synthetic Galaxy view (a superset of all query attributes,
#: allowing the partitioning-coverage experiment to go well above coverage 1).
GALAXY_ATTRIBUTES = (
    "rowc", "colc", "ra", "dec",
    "petroRad_r", "petroMag_r", "petroFlux_r", "petroR50_r",
    "psfMag_r", "modelMag_r", "fiberMag_r", "deVRad_r",
    "expRad_r", "extinction_r", "redshift", "u_g_color",
)

_DEFAULT_ROWS = 5_000


def galaxy_table(num_rows: int = _DEFAULT_ROWS, seed: int = 42) -> Table:
    """Generate the synthetic Galaxy table.

    Args:
        num_rows: Number of tuples (the paper uses 5.5M; benchmarks here
            default to laptop-scale sizes).
        seed: RNG seed for reproducibility.
    """
    rng = np.random.default_rng(seed)
    n = num_rows

    # Latent factors: real SDSS photometric attributes are strongly correlated
    # (bright galaxies are big, nearby, low-redshift...).  Generating the
    # observable columns from a handful of latent factors reproduces that
    # cluster structure, which is what makes centroid representatives
    # informative in the first place.
    sky_patch = rng.integers(0, 24, n)                       # survey stripe
    brightness = rng.normal(0.0, 1.0, n)                      # latent luminosity
    size_factor = 0.6 * brightness + 0.8 * rng.normal(0.0, 1.0, n)
    distance = -0.5 * brightness + 0.85 * rng.normal(0.0, 1.0, n)
    dust = rng.normal(0.0, 1.0, n)

    rowc = rng.uniform(0.0, 2048.0, n)
    colc = rng.uniform(0.0, 1489.0, n)
    ra = (sky_patch * 15.0 + rng.uniform(0.0, 15.0, n)) % 360.0
    dec = np.clip(2.5 * sky_patch - 25.0 + rng.normal(0.0, 4.0, n), -25.0, 85.0)

    petro_mag = 17.5 - 1.6 * brightness + rng.normal(0.0, 0.35, n)     # magnitudes (lower = brighter)
    petro_flux = np.exp(3.0 + 0.9 * brightness + rng.normal(0.0, 0.25, n))  # nanomaggies
    petro_rad = np.exp(1.2 + 0.55 * size_factor + rng.normal(0.0, 0.2, n))  # arcsec
    petro_r50 = petro_rad * (0.5 + 0.05 * rng.normal(0.0, 1.0, n))

    psf_mag = petro_mag + 0.8 + 0.15 * rng.normal(0.0, 1.0, n)
    model_mag = petro_mag + 0.1 * rng.normal(0.0, 1.0, n)
    fiber_mag = petro_mag + 1.6 + 0.2 * rng.normal(0.0, 1.0, n)
    dev_rad = petro_rad * (1.0 + 0.15 * rng.normal(0.0, 1.0, n))
    exp_rad = petro_rad * (0.85 + 0.15 * rng.normal(0.0, 1.0, n))
    extinction = np.abs(0.40 + 0.10 * dust + 0.03 * rng.normal(0.0, 1.0, n))
    redshift = np.abs(0.12 + 0.07 * distance + 0.01 * rng.normal(0.0, 1.0, n))
    u_g_color = 1.4 + 0.3 * dust - 0.2 * brightness + 0.1 * rng.normal(0.0, 1.0, n)

    columns = {
        "rowc": rowc, "colc": colc, "ra": ra, "dec": dec,
        "petroRad_r": petro_rad, "petroMag_r": petro_mag,
        "petroFlux_r": petro_flux, "petroR50_r": petro_r50,
        "psfMag_r": psf_mag, "modelMag_r": model_mag,
        "fiberMag_r": fiber_mag, "deVRad_r": dev_rad,
        "expRad_r": exp_rad, "extinction_r": extinction,
        "redshift": redshift, "u_g_color": u_g_color,
    }
    columns = {name: np.round(values, 5) for name, values in columns.items()}
    schema = Schema.numeric(GALAXY_ATTRIBUTES)
    return Table(schema, columns, name="galaxy")


def galaxy_workload(table: Table | None = None, seed: int = 42) -> Workload:
    """Build the Galaxy benchmark workload (7 package queries).

    Constraint bounds are centred on ``column mean × expected package size``
    so that random packages of the target cardinality are feasible with high
    probability — the paper's own synthesis procedure for the Galaxy queries.
    """
    if table is None:
        table = galaxy_table(seed=seed)

    mean = {name: float(np.nanmean(table.numeric_column(name))) for name in GALAXY_ATTRIBUTES}

    def sum_window(attribute: str, cardinality: float, spread: float = 0.35) -> tuple[float, float]:
        centre = mean[attribute] * cardinality
        return (1.0 - spread) * centre, (1.0 + spread) * centre

    queries: list[WorkloadQuery] = []

    # Q1 — night-sky style: a region sample of 10 galaxies with bounded total
    # redshift and flux, maximising total Petrosian flux.
    low_z, high_z = sum_window("redshift", 10)
    queries.append(WorkloadQuery(
        "Q1",
        query_over("galaxy", name="galaxy_q1")
        .no_repetition()
        .count_equals(10)
        .sum_between("redshift", low_z, high_z)
        .maximize_sum("petroFlux_r")
        .build(),
        "10 galaxies, total redshift in a band, maximise total flux",
    ))

    # Q2 — a harder query: three simultaneous SUM windows (the paper's Q2 is
    # the one DIRECT consistently fails on).
    low_mag, high_mag = sum_window("petroMag_r", 15, spread=0.2)
    low_rad, high_rad = sum_window("petroRad_r", 15, spread=0.4)
    low_ext, high_ext = sum_window("extinction_r", 15, spread=0.5)
    queries.append(WorkloadQuery(
        "Q2",
        query_over("galaxy", name="galaxy_q2")
        .no_repetition()
        .count_equals(15)
        .sum_between("petroMag_r", low_mag, high_mag)
        .sum_between("petroRad_r", low_rad, high_rad)
        .sum_between("extinction_r", low_ext, high_ext)
        .minimize_sum("psfMag_r")
        .build(),
        "15 galaxies, three simultaneous photometric windows, minimise PSF magnitude",
    ))

    # Q3 — bounded cardinality range with an average constraint.
    queries.append(WorkloadQuery(
        "Q3",
        query_over("galaxy", name="galaxy_q3")
        .no_repetition()
        .count_between(5, 12)
        .avg_at_most("petroMag_r", mean["petroMag_r"])
        .sum_at_least("petroFlux_r", mean["petroFlux_r"] * 5)
        .maximize_sum("petroR50_r")
        .build(),
        "5–12 bright-on-average galaxies with a flux floor, maximise half-light radius",
    ))

    # Q4 — large package with positional spread constraints.
    low_ra, high_ra = sum_window("ra", 20, spread=0.3)
    low_dec, high_dec = sum_window("dec", 20, spread=0.6)
    queries.append(WorkloadQuery(
        "Q4",
        query_over("galaxy", name="galaxy_q4")
        .no_repetition()
        .count_equals(20)
        .sum_between("ra", low_ra, high_ra)
        .sum_between("dec", low_dec, high_dec)
        .minimize_sum("extinction_r")
        .build(),
        "20 galaxies spread over the footprint, minimise total extinction",
    ))

    # Q5 — small, highly selective query (fast for both methods in the paper).
    queries.append(WorkloadQuery(
        "Q5",
        query_over("galaxy", name="galaxy_q5")
        .no_repetition()
        .count_equals(3)
        .sum_at_most("redshift", mean["redshift"] * 3 * 1.2)
        .maximize_sum("petroFlux_r")
        .build(),
        "3 low-redshift galaxies maximising total flux",
    ))

    # Q6 — repetition allowed (REPEAT 1) with tight equality-style windows.
    low_fib, high_fib = sum_window("fiberMag_r", 12, spread=0.15)
    queries.append(WorkloadQuery(
        "Q6",
        query_over("galaxy", name="galaxy_q6")
        .repeat(1)
        .count_equals(12)
        .sum_between("fiberMag_r", low_fib, high_fib)
        .sum_at_most("deVRad_r", mean["deVRad_r"] * 12 * 1.3)
        .minimize_sum("u_g_color")
        .build(),
        "12 observations (repeats allowed) in a tight fiber-magnitude window, minimise colour",
    ))

    # Q7 — wide cardinality range with mixed direction constraints.
    queries.append(WorkloadQuery(
        "Q7",
        query_over("galaxy", name="galaxy_q7")
        .no_repetition()
        .count_between(8, 25)
        .sum_at_least("petroR50_r", mean["petroR50_r"] * 8)
        .sum_at_most("psfMag_r", mean["psfMag_r"] * 25)
        .maximize_sum("modelMag_r")
        .build(),
        "8–25 galaxies with radius floor and magnitude ceiling, maximise total model magnitude",
    ))

    return Workload("galaxy", table, queries)
