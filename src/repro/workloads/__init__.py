"""Workload generators and benchmark query suites.

The paper evaluates on the SDSS Galaxy view and on a pre-joined TPC-H table,
with seven package queries per dataset.  Neither dataset can be shipped here,
so this subpackage generates seeded synthetic stand-ins with the same numeric
structure (column counts, value ranges, skew, NULL patterns) and builds the
corresponding query workloads with bounds derived from the data statistics —
the same procedure the paper used to adapt its SQL queries into package
queries (Section 5.1).
"""

from repro.workloads.specs import Workload, WorkloadQuery
from repro.workloads.recipes import recipes_table, meal_planner_query, MEAL_PLANNER_PAQL
from repro.workloads.galaxy import galaxy_table, galaxy_workload
from repro.workloads.tpch import tpch_table, tpch_workload

__all__ = [
    "Workload",
    "WorkloadQuery",
    "recipes_table",
    "meal_planner_query",
    "MEAL_PLANNER_PAQL",
    "galaxy_table",
    "galaxy_workload",
    "tpch_table",
    "tpch_workload",
]
