"""Synthetic stand-in for the paper's pre-joined TPC-H table and workload.

The paper builds a single ~17.5M-tuple table by full-outer-joining the TPC-H
relations on the attributes its seven package queries need; each query then
keeps only the tuples with non-NULL values on its own attributes (Figure 3
reports the resulting per-query table sizes).  :func:`tpch_table` reproduces
that structure: a wide numeric table mixing lineitem-, order-, part- and
supplier-style columns, where each "source relation" contributes NULLs to the
rows that did not originate from it — so the per-query NULL projection yields
tables of different sizes, exactly as in Figure 3.

:func:`tpch_workload` builds the seven package queries following the paper's
adaptation rules: group-by aggregates of the original TPC-H query templates
become global constraints with bounds drawn uniformly at random from the
attribute's value range scaled by the expected package size, plus a
cardinality bound and an objective.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.paql.ast import PackageQuery
from repro.paql.builder import query_over
from repro.workloads.specs import Workload, WorkloadQuery

#: All numeric attributes of the pre-joined table.
TPCH_ATTRIBUTES = (
    "quantity", "extendedprice", "discount", "tax", "shipdelay",
    "ordertotal", "orderpriority_score", "retailprice", "partsize",
    "supplycost", "availqty", "acctbal",
)

#: Which attributes each simulated source relation contributes.  Rows not
#: drawn from a relation have NULLs on its attributes (full-outer-join effect).
_RELATION_ATTRIBUTES = {
    "lineitem": ("quantity", "extendedprice", "discount", "tax", "shipdelay"),
    "orders": ("ordertotal", "orderpriority_score"),
    "part": ("retailprice", "partsize"),
    "partsupp": ("supplycost", "availqty"),
    "supplier": ("acctbal",),
}

#: Fraction of rows carrying non-NULL values for each source relation.  The
#: lineitem block is the largest, mirroring Figure 3 where five of the seven
#: queries see the full 6M-row projection, one sees a much smaller one and one
#: a larger one.
_RELATION_COVERAGE = {
    "lineitem": 0.70,
    "orders": 0.85,
    "part": 0.60,
    "partsupp": 0.55,
    "supplier": 0.90,
}

_DEFAULT_ROWS = 8_000


def tpch_table(num_rows: int = _DEFAULT_ROWS, seed: int = 1) -> Table:
    """Generate the synthetic pre-joined TPC-H table (with NULL blocks)."""
    rng = np.random.default_rng(seed)
    n = num_rows

    values: dict[str, np.ndarray] = {
        "quantity": rng.integers(1, 51, n).astype(np.float64),
        "extendedprice": np.round(rng.uniform(900.0, 105_000.0, n), 2),
        "discount": np.round(rng.uniform(0.0, 0.10, n), 2),
        "tax": np.round(rng.uniform(0.0, 0.08, n), 2),
        "shipdelay": rng.integers(1, 122, n).astype(np.float64),
        "ordertotal": np.round(rng.uniform(850.0, 560_000.0, n), 2),
        "orderpriority_score": rng.integers(1, 6, n).astype(np.float64),
        "retailprice": np.round(900.0 + rng.uniform(0.0, 1_200.0, n), 2),
        "partsize": rng.integers(1, 51, n).astype(np.float64),
        "supplycost": np.round(rng.uniform(1.0, 1_000.0, n), 2),
        "availqty": rng.integers(1, 10_000, n).astype(np.float64),
        "acctbal": np.round(rng.uniform(-999.0, 9_999.0, n), 2),
    }

    # Inject the full-outer-join NULL pattern per source relation.
    for relation, attributes in _RELATION_ATTRIBUTES.items():
        coverage = _RELATION_COVERAGE[relation]
        missing = rng.random(n) >= coverage
        for attribute in attributes:
            column = values[attribute].astype(np.float64).copy()
            column[missing] = np.nan
            values[attribute] = column

    schema = Schema([Column(name, DataType.FLOAT, nullable=True) for name in TPCH_ATTRIBUTES])
    return Table(schema, values, name="tpch")


def query_projection(table: Table, query: PackageQuery) -> Table:
    """The per-query projection: rows with non-NULL values on all query attributes.

    This is the table whose size Figure 3 reports per query, and the relation
    each query is actually evaluated on.
    """
    attributes = sorted(query.numeric_query_columns)
    return table.drop_nulls(attributes)


def tpch_workload(table: Table | None = None, seed: int = 1) -> Workload:
    """Build the TPC-H benchmark workload (7 package queries).

    Bounds follow the paper's rule for TPC-H: uniform random values from the
    attribute's value range multiplied by the expected package size (the seed
    makes them deterministic).
    """
    if table is None:
        table = tpch_table(seed=seed)
    rng = np.random.default_rng(seed + 1000)

    def stats(attribute: str) -> tuple[float, float, float]:
        column = table.numeric_column(attribute)
        valid = column[~np.isnan(column)]
        return float(valid.mean()), float(valid.min()), float(valid.max())

    def random_window(attribute: str, cardinality: float, spread: float = 0.4) -> tuple[float, float]:
        mean, _, _ = stats(attribute)
        centre = mean * cardinality * rng.uniform(0.9, 1.1)
        return (1.0 - spread) * centre, (1.0 + spread) * centre

    queries: list[WorkloadQuery] = []

    # Q1 — pricing-summary style (TPC-H Q1): bounded total quantity and price,
    # minimise total discount "given away".
    low_q, high_q = random_window("quantity", 12)
    queries.append(WorkloadQuery(
        "Q1",
        query_over("tpch", name="tpch_q1")
        .no_repetition()
        .count_equals(12)
        .sum_between("quantity", low_q, high_q)
        .sum_at_most("extendedprice", stats("extendedprice")[0] * 12 * 1.4)
        .minimize_sum("discount")
        .build(),
        "12 line items with bounded quantity and price, minimise total discount",
    ))

    # Q2 — minimum-cost supplier style (TPC-H Q2): minimise supply cost subject
    # to availability and size windows (the paper's problematic minimisation).
    low_avail, high_avail = random_window("availqty", 10, spread=0.5)
    queries.append(WorkloadQuery(
        "Q2",
        query_over("tpch", name="tpch_q2")
        .no_repetition()
        .count_equals(10)
        .sum_between("availqty", low_avail, high_avail)
        .sum_at_most("partsize", stats("partsize")[0] * 10 * 1.3)
        .minimize_sum("supplycost")
        .build(),
        "10 part-supplier pairs with bounded availability, minimise supply cost",
    ))

    # Q3 — shipping-priority style (TPC-H Q3): maximise revenue under delay budget.
    queries.append(WorkloadQuery(
        "Q3",
        query_over("tpch", name="tpch_q3")
        .no_repetition()
        .count_between(5, 15)
        .sum_at_most("shipdelay", stats("shipdelay")[0] * 15)
        .sum_at_least("quantity", stats("quantity")[0] * 5)
        .maximize_sum("extendedprice")
        .build(),
        "5–15 line items under a total-delay budget, maximise revenue",
    ))

    # Q4 — order-priority style (TPC-H Q4): bounded priority score, maximise order value.
    low_p, high_p = random_window("orderpriority_score", 8, spread=0.3)
    queries.append(WorkloadQuery(
        "Q4",
        query_over("tpch", name="tpch_q4")
        .no_repetition()
        .count_equals(8)
        .sum_between("orderpriority_score", low_p, high_p)
        .maximize_sum("ordertotal")
        .build(),
        "8 orders with a bounded total priority score, maximise total value",
    ))

    # Q5 — local-supplier-volume style (TPC-H Q5): small package over supplier data.
    queries.append(WorkloadQuery(
        "Q5",
        query_over("tpch", name="tpch_q5")
        .no_repetition()
        .count_equals(4)
        .sum_at_least("acctbal", stats("acctbal")[0] * 4 * 0.5)
        .maximize_sum("acctbal")
        .build(),
        "4 suppliers with healthy total balance, maximise total balance",
    ))

    # Q6 — forecasting-revenue style (TPC-H Q6): discount/quantity windows with repeats.
    low_d, high_d = random_window("discount", 14, spread=0.5)
    queries.append(WorkloadQuery(
        "Q6",
        query_over("tpch", name="tpch_q6")
        .repeat(1)
        .count_equals(14)
        .sum_between("discount", low_d, high_d)
        .sum_at_most("quantity", stats("quantity")[0] * 14 * 1.2)
        .maximize_sum("extendedprice")
        .build(),
        "14 line items (repeats allowed) in a discount window, maximise revenue",
    ))

    # Q7 — volume-shipping style (TPC-H Q7): tax and retail-price windows, minimise cost.
    low_t, high_t = random_window("tax", 10, spread=0.5)
    queries.append(WorkloadQuery(
        "Q7",
        query_over("tpch", name="tpch_q7")
        .no_repetition()
        .count_between(6, 10)
        .sum_between("tax", low_t, high_t)
        .sum_at_most("retailprice", stats("retailprice")[0] * 10 * 1.2)
        .minimize_sum("supplycost")
        .build(),
        "6–10 items in a tax window under a retail-price cap, minimise supply cost",
    ))

    return Workload("tpch", table, queries)
