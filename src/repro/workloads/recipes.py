"""The meal-planner example dataset (Example 1 of the paper).

A small synthetic table of recipes with gluten labels, calories and saturated
fat, plus the running-example query Q of Section 2.1: three gluten-free meals
totalling between 2.0 and 2.5 kcal (thousands of calories) while minimising
saturated fat.  Used by the quickstart example and throughout the tests as a
human-readable fixture.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.db.expressions import col
from repro.paql.ast import PackageQuery
from repro.paql.builder import query_over

MEAL_PLANNER_PAQL = """
SELECT PACKAGE(R) AS P
FROM recipes R REPEAT 0
WHERE R.gluten = 'free'
SUCH THAT COUNT(P.*) = 3 AND
          SUM(P.kcal) BETWEEN 2.0 AND 2.5
MINIMIZE SUM(P.saturated_fat)
"""

_DISH_STEMS = (
    "lentil stew", "quinoa bowl", "grilled salmon", "rice pilaf", "tofu curry",
    "roast chicken", "bean chili", "veggie omelette", "buckwheat salad", "baked cod",
    "polenta bake", "stuffed peppers", "pumpkin soup", "millet porridge", "shrimp stir fry",
)


def recipes_table(num_rows: int = 120, seed: int = 7) -> Table:
    """Generate a seeded synthetic recipes table.

    Columns: ``name`` (string), ``gluten`` ('free' or 'contains'), ``kcal``
    (in thousands of calories, 0.3–1.4), ``saturated_fat`` (grams),
    ``protein`` (grams) and ``carbs`` (grams).
    """
    rng = np.random.default_rng(seed)
    names = [
        f"{_DISH_STEMS[i % len(_DISH_STEMS)]} #{i // len(_DISH_STEMS) + 1}"
        for i in range(num_rows)
    ]
    gluten = rng.choice(["free", "contains"], size=num_rows, p=[0.6, 0.4])
    kcal = np.round(rng.uniform(0.3, 1.4, size=num_rows), 3)
    saturated_fat = np.round(rng.gamma(shape=2.0, scale=2.5, size=num_rows), 2)
    protein = np.round(rng.uniform(5.0, 45.0, size=num_rows), 1)
    carbs = np.round(rng.uniform(0.0, 90.0, size=num_rows), 1)

    schema = Schema(
        [
            Column("name", DataType.STRING),
            Column("gluten", DataType.STRING),
            Column("kcal", DataType.FLOAT),
            Column("saturated_fat", DataType.FLOAT),
            Column("protein", DataType.FLOAT),
            Column("carbs", DataType.FLOAT),
        ]
    )
    return Table(
        schema,
        {
            "name": list(names),
            "gluten": list(gluten),
            "kcal": kcal,
            "saturated_fat": saturated_fat,
            "protein": protein,
            "carbs": carbs,
        },
        name="recipes",
    )


def meal_planner_query() -> PackageQuery:
    """The running-example query built programmatically (equivalent to the PaQL text)."""
    return (
        query_over("recipes", name="meal_planner")
        .no_repetition()
        .where(col("gluten") == "free")
        .count_equals(3)
        .sum_between("kcal", 2.0, 2.5)
        .minimize_sum("saturated_fat")
        .build()
    )


def balanced_meal_query() -> PackageQuery:
    """A richer example: the paper's filtered-count comparison constraint.

    Requires at least as many carb-providing meals as low-protein meals, on
    top of the base meal-planner constraints.
    """
    return (
        query_over("recipes", name="balanced_meal")
        .no_repetition()
        .where(col("gluten") == "free")
        .count_equals(3)
        .sum_between("kcal", 2.0, 2.5)
        .compare_counts(col("carbs") > 0, col("protein") <= 5)
        .minimize_sum("saturated_fat")
        .build()
    )
