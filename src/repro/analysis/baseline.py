"""The committed-baseline mechanism.

A baseline file grandfathers *justified* pre-existing findings so the lint
can gate CI from day one without a flag-day cleanup.  Entries match findings
by :meth:`~repro.analysis.core.Finding.fingerprint` — rule, path, enclosing
symbol and message, but **not** line number — so they survive unrelated edits
to the file.  Every entry carries a human-written ``justification``; an empty
one is itself reported, which keeps the baseline honest.

Entries that no longer match any finding are reported as *stale* so the
baseline shrinks as violations are fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

BASELINE_VERSION = 1

#: Default baseline filename, looked up relative to the lint root.
DEFAULT_BASELINE_NAME = "repro-lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    symbol: str
    message: str
    justification: str = ""

    def fingerprint(self) -> str:
        return f"{self.rule}::{self.path}::{self.symbol}::{self.message}"

    def as_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """A loaded baseline file."""

    entries: list[BaselineEntry] = field(default_factory=list)
    path: Path | None = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls(entries=[], path=path)
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                symbol=str(raw.get("symbol", "<module>")),
                message=str(raw["message"]),
                justification=str(raw.get("justification", "")),
            )
            for raw in data.get("entries", [])
        ]
        return cls(entries=entries, path=path)

    def save(self, path: Path | None = None) -> None:
        target = path if path is not None else self.path
        if target is None:
            raise ValueError("baseline has no path to save to")
        payload = {
            "version": BASELINE_VERSION,
            "entries": [e.as_dict() for e in sorted(
                self.entries, key=lambda e: (e.path, e.rule, e.symbol, e.message)
            )],
        }
        target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: list[Finding], path: Path | None = None) -> "Baseline":
        """Build a baseline grandfathering ``findings`` (empty justifications:
        fill them in before committing)."""
        entries = [
            BaselineEntry(
                rule=f.rule, path=f.path, symbol=f.symbol, message=f.message,
                justification="TODO: justify or fix",
            )
            for f in findings
        ]
        return cls(entries=entries, path=path)

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition ``findings`` against the baseline.

        Returns ``(new, grandfathered, stale_entries)``: findings with no
        entry, findings matched by an entry, and entries that matched no
        finding (candidates for deletion).
        """
        by_fingerprint: dict[str, BaselineEntry] = {
            entry.fingerprint(): entry for entry in self.entries
        }
        matched: set[str] = set()
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            fp = finding.fingerprint()
            if fp in by_fingerprint:
                matched.add(fp)
                grandfathered.append(finding)
            else:
                new.append(finding)
        stale = [e for e in self.entries if e.fingerprint() not in matched]
        return new, grandfathered, stale
