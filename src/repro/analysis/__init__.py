"""repro-lint: AST-based enforcement of the repo's reproducibility invariants.

The conventions that keep this system correct — deterministic solve paths,
picklable worker payloads, relative-tolerance feasibility checks — used to
live only in reviewer memory and regression tests.  This package checks them
mechanically, before runtime:

* ``python -m repro.analysis src/repro`` — CLI (text or ``--format=json``),
  exit 1 on any non-baselined finding;
* :func:`run_lint` — pytest-friendly API, used by the self-check test that
  keeps ``src/repro`` clean modulo the committed baseline;
* ``# repro-lint: disable=<rule>`` — inline suppression;
  ``repro-lint-baseline.json`` — committed, justified grandfather list.

See ``docs/repro_lint.md`` for the rule catalogue.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.config import LintConfig
from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    ProjectInfo,
    all_checkers,
    register,
)
from repro.analysis.runner import LintReport, run_lint

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Checker",
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleInfo",
    "ProjectInfo",
    "all_checkers",
    "register",
    "run_lint",
]
