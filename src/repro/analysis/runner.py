"""Lint runner: collect files, run checkers, apply suppressions + baseline."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry, DEFAULT_BASELINE_NAME
from repro.analysis.config import LintConfig
from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    ProjectInfo,
    all_checkers,
)

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    """Actionable findings: not suppressed, not grandfathered."""
    grandfathered: list[Finding] = field(default_factory=list)
    """Findings matched by a baseline entry."""
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    """Baseline entries that matched nothing (fixed — delete them)."""
    suppressed: int = 0
    """Findings silenced by inline ``# repro-lint: disable`` comments."""
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the tree is clean modulo the committed baseline."""
        return not self.findings and not self.parse_errors

    def format_text(self, verbose: bool = False) -> str:
        lines: list[str] = []
        for finding in self.findings:
            lines.append(finding.format_text())
        for error in self.parse_errors:
            lines.append(f"error: {error}")
        if verbose:
            for finding in self.grandfathered:
                lines.append(f"baselined: {finding.format_text()}")
        for entry in self.stale_baseline:
            lines.append(
                f"stale baseline entry (fixed? delete it): "
                f"[{entry.rule}] {entry.path} :: {entry.symbol}"
            )
        lines.append(
            f"repro-lint: {len(self.findings)} finding(s), "
            f"{len(self.grandfathered)} baselined, {self.suppressed} suppressed, "
            f"{self.files_checked} file(s), rules: {', '.join(self.rules_run)}"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "suppressed": self.suppressed,
            "findings": [f.as_dict() for f in self.findings],
            "grandfathered": [f.as_dict() for f in self.grandfathered],
            "stale_baseline": [e.as_dict() for e in self.stale_baseline],
            "parse_errors": self.parse_errors,
        }
        return json.dumps(payload, indent=2)


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    seen.add(candidate)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def _relative_to_cwd(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) and return a :class:`LintReport`.

    This is the pytest-friendly API: build a config, point it at a tree (or a
    fixture file), and assert on ``report.findings``.
    """
    config = config or LintConfig()
    resolved = [Path(p) for p in paths]
    files = collect_files(resolved)

    registry = all_checkers()
    rule_names = config.rules if config.rules is not None else sorted(registry)
    unknown = [r for r in rule_names if r not in registry]
    if unknown:
        raise ValueError(f"unknown lint rule(s): {', '.join(unknown)}")
    checkers: list[Checker] = [
        registry[rule](config.options_for(rule)) for rule in rule_names
    ]

    report = LintReport(rules_run=list(rule_names))
    project = ProjectInfo()
    raw_findings: list[Finding] = []
    suppression_lookup: dict[str, ModuleInfo] = {}

    for file_path in files:
        rel = _relative_to_cwd(file_path)
        try:
            module = ModuleInfo.parse(file_path, rel_path=rel)
        except SyntaxError as exc:
            report.parse_errors.append(f"{rel}: {exc.msg} (line {exc.lineno})")
            continue
        project.modules.append(module)
        suppression_lookup[rel] = module
        report.files_checked += 1
        for checker in checkers:
            raw_findings.extend(checker.check_module(module))
    for checker in checkers:
        raw_findings.extend(checker.finalize(project))

    kept: list[Finding] = []
    for finding in raw_findings:
        module_info = suppression_lookup.get(finding.path)
        if module_info is not None and module_info.suppressions.is_suppressed(finding):
            report.suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.column, f.rule, f.message))

    baseline = _resolve_baseline(config, resolved)
    if baseline is not None:
        new, grandfathered, stale = baseline.split(kept)
        report.findings = new
        report.grandfathered = grandfathered
        report.stale_baseline = stale
        for entry in baseline.entries:
            justification = entry.justification.strip()
            if not justification or justification.startswith("TODO"):
                report.findings.append(
                    Finding(
                        rule="baseline",
                        path=entry.path,
                        line=1,
                        column=0,
                        symbol=entry.symbol,
                        message=(
                            f"baseline entry for [{entry.rule}] {entry.symbol} "
                            f"has no justification — explain why it is exempt"
                        ),
                    )
                )
    else:
        report.findings = kept
    return report


def _resolve_baseline(
    config: LintConfig, roots: Iterable[Path]
) -> Baseline | None:
    if not config.use_baseline:
        return None
    if config.baseline_path is not None:
        return Baseline.load(config.baseline_path)
    # Default: a committed baseline next to (or above) the first lint root.
    for root in roots:
        base = root if root.is_dir() else root.parent
        for candidate_dir in (base, *base.resolve().parents):
            candidate = candidate_dir / DEFAULT_BASELINE_NAME
            if candidate.exists():
                return Baseline.load(candidate)
        break
    return None
