"""tolerance — no bare float equality in solver/validation code.

Feasibility and objective comparisons accumulate rounding error proportional
to the magnitudes involved; PR 3 standardised on *relative* tolerances
(``violation <= tolerance * scale`` in ``core/validation.py``, scaled row
tolerances in presolve).  A bare ``==`` / ``!=`` between float-typed
expressions silently reintroduces exact comparison and flips feasibility
verdicts at the 1e-16 level.

Without type inference the checker is heuristic: a comparison operand counts
as float-typed when it is

* a float literal (``x == 0.0``),
* a ``float(...)`` / ``np.float64(...)`` conversion,
* a true division (``a / b == c``), or
* a name/attribute whose terminal identifier matches one of the configured
  ``float_name_patterns`` (``*objective*``, ``*violation*``, ``numerator``,
  ...), which is how the repo's float-valued locals are actually named.

Integer comparisons (``n == 0``, ``size == 0``, ``lp_solves == 0``) never
match and stay legal.  Exact comparison is *occasionally* right — division
guards, structural-nonzero detection — and those sites carry an inline
``# repro-lint: disable=tolerance`` or a justified baseline entry.

Options:
    scope: dotted module prefixes the rule applies to.
    float_name_patterns: fnmatch patterns over terminal identifiers.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    module_in_scope,
    register,
)


@register
class ToleranceChecker(Checker):
    name = "tolerance"
    description = (
        "float-typed expressions must not be compared with bare == / != in "
        "solver and validation code; use the relative-tolerance helpers"
    )
    default_config: dict[str, object] = {
        "scope": ["repro.ilp", "repro.core.validation"],
        "float_name_patterns": [
            "*objective*", "*violation*", "*tolerance*", "*seconds*",
            "*ratio*", "*_ms", "numerator", "denominator", "gap",
            "residual*", "rhs", "lhs",
        ],
    }

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module_in_scope(module.module, self.str_list("scope")):
            return
        patterns = self.str_list("float_name_patterns")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                culprit = next(
                    (
                        expr
                        for expr in (left, right)
                        if self._float_like(expr, patterns)
                    ),
                    None,
                )
                if culprit is not None:
                    yield module.finding(
                        self.name,
                        node,
                        f"bare {'==' if isinstance(op, ast.Eq) else '!='} "
                        f"between float-typed expressions "
                        f"({self._describe(culprit)}); compare through a "
                        f"relative-tolerance helper (see core/validation.py)",
                    )
                    break

    def _float_like(self, node: ast.AST, patterns: list[str]) -> bool:
        if isinstance(node, ast.UnaryOp):
            return self._float_like(node.operand, patterns)
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "float":
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "float64", "float32", "float16",
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        terminal: str | None = None
        if isinstance(node, ast.Name):
            terminal = node.id
        elif isinstance(node, ast.Attribute):
            terminal = node.attr
        if terminal is not None:
            return any(fnmatch(terminal, p) for p in patterns)
        return False

    @staticmethod
    def _describe(node: ast.AST) -> str:
        if isinstance(node, ast.Constant):
            return f"float literal {node.value!r}"
        if isinstance(node, ast.Name):
            return f"float-named variable {node.id!r}"
        if isinstance(node, ast.Attribute):
            return f"float-named attribute .{node.attr}"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return "a true division"
        return "a float conversion"
