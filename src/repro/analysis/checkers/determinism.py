"""determinism — solve/exec paths must be reproducible by construction.

The parallel solve plane's contract is that a parallel run is bit-identical
to a serial one (PR 6).  Three classes of construct break that silently:

* **wall clocks** — ``time.time()`` jumps with NTP and differs across
  workers; timings feeding stats/decisions must use ``time.perf_counter()``
  or ``time.monotonic()``.
* **global-state RNG** — ``random.random()`` / ``np.random.rand()`` etc.
  depend on hidden process state, so a warm worker diverges from a cold
  one.  Seeded generators (``np.random.default_rng(seed)``) and explicit
  reseeding (``np.random.seed(task_seed)`` — the task runner's guard) are
  the sanctioned forms.
* **unordered iteration** — ``for g in {...}`` / ``set(...)`` feeding merge
  ordering makes result order depend on hash seeds.  Iterate ``sorted(...)``
  instead (the ascending-gid merge rule).

Each sub-rule has its own module scope (dotted-prefix lists; empty = all
linted files, which the fixture tests use).

Options:
    time_scope / rng_scope / set_iteration_scope: dotted module prefixes.
    banned_time_calls: call chains reported by the clock rule.
    allowed_np_random / allowed_random: attribute names exempt from the
        global-RNG rule (seeding and generator constructors).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    dotted_name,
    module_in_scope,
    register,
)


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # Set algebra (a | b, a & b, a - b) over set operands.
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


@register
class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "solve/exec paths must use monotonic clocks, seeded RNG, and ordered "
        "iteration so parallel output stays bit-identical to serial"
    )
    default_config: dict[str, object] = {
        "time_scope": ["repro.exec", "repro.core", "repro.ilp"],
        "rng_scope": ["repro.exec", "repro.core.sketchrefine"],
        "set_iteration_scope": ["repro.exec", "repro.core.sketchrefine"],
        "banned_time_calls": ["time.time", "time.clock"],
        "allowed_np_random": [
            "default_rng", "Generator", "SeedSequence", "seed",
            "get_state", "set_state",
        ],
        "allowed_random": ["seed", "Random", "SystemRandom", "getstate", "setstate"],
    }

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        in_time = module_in_scope(module.module, self.str_list("time_scope"))
        in_rng = module_in_scope(module.module, self.str_list("rng_scope"))
        in_set = module_in_scope(module.module, self.str_list("set_iteration_scope"))
        if not (in_time or in_rng or in_set):
            return
        banned_time = set(self.str_list("banned_time_calls"))
        allowed_np = set(self.str_list("allowed_np_random"))
        allowed_rand = set(self.str_list("allowed_random"))

        # Names imported from the random / numpy.random modules, e.g.
        # ``from random import shuffle`` — calls to them are global-state RNG.
        rng_imports: dict[str, str] = {}
        if in_rng:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ImportFrom) and node.module in (
                    "random", "numpy.random",
                ):
                    allowed = allowed_rand if node.module == "random" else allowed_np
                    for alias in node.names:
                        if alias.name not in allowed:
                            rng_imports[alias.asname or alias.name] = (
                                f"{node.module}.{alias.name}"
                            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if in_time and chain in banned_time:
                    yield module.finding(
                        self.name,
                        node,
                        f"{chain}() is a wall clock (NTP jumps, differs across "
                        f"workers); use time.perf_counter() or time.monotonic()",
                    )
                if in_rng and chain is not None:
                    yield from self._check_rng_call(
                        module, node, chain, allowed_np, allowed_rand, rng_imports
                    )
            if in_set:
                iters: list[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                if isinstance(node, ast.comprehension):
                    iters.append(node.iter)
                for candidate in iters:
                    if _is_set_expression(candidate):
                        yield module.finding(
                            self.name,
                            candidate,
                            "iteration over a set is hash-order dependent and "
                            "breaks deterministic merge ordering; iterate "
                            "sorted(...) instead",
                        )

    def _check_rng_call(
        self,
        module: ModuleInfo,
        node: ast.Call,
        chain: str,
        allowed_np: set[str],
        allowed_rand: set[str],
        rng_imports: dict[str, str],
    ) -> Iterator[Finding]:
        parts = chain.split(".")
        message = (
            "{call}() draws from hidden global RNG state, so a warm worker "
            "diverges from a cold one; use a seeded np.random.default_rng(...) "
            "generator (or reseed explicitly like the solve-task runner)"
        )
        if parts[0] in ("np", "numpy") and len(parts) >= 3 and parts[1] == "random":
            if parts[2] not in allowed_np:
                yield module.finding(self.name, node, message.format(call=chain))
        elif parts[0] == "random" and len(parts) == 2:
            if parts[1] not in allowed_rand:
                yield module.finding(self.name, node, message.format(call=chain))
        elif len(parts) == 1 and parts[0] in rng_imports:
            yield module.finding(
                self.name, node, message.format(call=rng_imports[parts[0]])
            )
