"""pickle-safety — worker-pool payload classes must drop derived caches.

Every class reachable from a :class:`~repro.exec.tasks.SolveTask` payload
crosses the process boundary.  The parallel solve plane's determinism
contract (PR 6) requires that *derived, process-local* state — memo caches,
scratch arrays, lazily-built views — is dropped on pickling and rebuilt in
the worker; shipping it bloats task payloads and can alias one process's
scratch objects into another.

For each configured payload class this checker flags an attribute when

* its name looks like a cache (``*cache*``, ``*memo*``, ``_work*``,
  ``_scratch*``) — any visibility, or
* it is underscore-private (derived state by convention) and not in the
  class's ``plain_attrs`` allowlist,

unless ``__getstate__`` *handles* it: assigns ``state["attr"] = ...``,
``state.pop("attr")`` or ``del state["attr"]``.  A payload class with a
flagged attribute and no ``__getstate__`` at all is reported once per
attribute, so **new** cache-like attributes on payload classes flag until
explicitly handled — the drift guard the parallel plane relies on.

Attributes are discovered from class-level annotated assignments (dataclass
fields), ``__slots__`` entries and ``self.X = ...`` stores in any method.

Options:
    payload_classes: mapping of class name → list of allowed *plain*
        underscore attributes (state that genuinely belongs in the pickle).
    cache_name_patterns: fnmatch patterns naming cache-like attributes.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator, Mapping

from repro.analysis.core import Checker, Finding, ModuleInfo, register


def _class_attributes(cls: ast.ClassDef) -> dict[str, ast.AST]:
    """Every instance attribute the class defines → a representative node."""
    attrs: dict[str, ast.AST] = {}
    for stmt in cls.body:
        # Dataclass-style annotated fields.
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            attrs.setdefault(stmt.target.id, stmt)
        # __slots__ tuples/lists of attribute names.
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    for element in ast.walk(stmt.value):
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            attrs.setdefault(element.value, stmt)
    # self.X = ... stores anywhere in the class body (methods included).
    for node in ast.walk(cls):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.setdefault(target.attr, target)
    return attrs


def _getstate_handled(cls: ast.ClassDef) -> set[str] | None:
    """Attribute names ``__getstate__`` resets/drops; ``None`` if undefined.

    Recognised forms inside ``__getstate__`` (``state`` being any local
    dict): ``state["attr"] = ...``, ``del state["attr"]``,
    ``state.pop("attr", ...)``.
    """
    getstate = next(
        (
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__getstate__"
        ),
        None,
    )
    if getstate is None:
        return None
    handled: set[str] = set()
    for node in ast.walk(getstate):
        if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Constant):
            if isinstance(node.slice.value, str):
                handled.add(node.slice.value)
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "pop"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                handled.add(node.args[0].value)
    return handled


@register
class PickleSafetyChecker(Checker):
    name = "pickle-safety"
    description = (
        "SolveTask-reachable classes must drop memo/cache attributes in "
        "__getstate__ so worker payloads stay lean and process-local state "
        "never crosses the pool boundary"
    )
    default_config: dict[str, object] = {
        # Class → underscore attributes that legitimately belong in the
        # pickle.  This is the single source of truth for what crosses the
        # process boundary; tests/analysis/test_pickle_roundtrip.py pickles
        # an instance of every class listed here.
        "payload_classes": {
            "SolveTask": [],
            "SolveTaskResult": [],
            "IlpModel": ["_names"],
            "Variable": [],
            "Constraint": [],
            "Objective": [],
            "MatrixForm": [],
            "Postsolve": [],
            "SimplexBasis": [],
            "SolveStats": [],
            "Solution": [],
            "BranchAndBoundSolver": [],
            "SolverLimits": [],
            # Durable-service payloads: WAL records cross the process
            # boundary via the log file; snapshot handles ship pinned views
            # to read-only workers (the live manager must stay home).
            "WalRecord": [],
            "PinnedTable": [],
            "SnapshotHandle": ["_released"],
        },
        "cache_name_patterns": ["*cache*", "*memo*", "_work*", "_scratch*"],
    }

    def _payload_classes(self) -> Mapping[str, list[str]]:
        value = self.options["payload_classes"]
        assert isinstance(value, Mapping)
        return value

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        payload = self._payload_classes()
        patterns = self.str_list("cache_name_patterns")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in payload:
                continue
            allowed = set(payload[node.name])
            attrs = _class_attributes(node)
            handled = _getstate_handled(node)
            for attr, site in sorted(attrs.items()):
                if attr.startswith("__"):
                    continue
                cache_like = any(fnmatch(attr, p) for p in patterns)
                private = attr.startswith("_")
                if not cache_like and (not private or attr in allowed):
                    continue
                if handled is not None and attr in handled:
                    continue
                if handled is None:
                    reason = f"and {node.name} defines no __getstate__"
                else:
                    reason = f"but {node.name}.__getstate__ does not reset it"
                kind = "cache-like" if cache_like else "private/derived"
                yield module.finding(
                    self.name,
                    site,
                    f"{node.name}.{attr} is a {kind} attribute on a worker "
                    f"payload class {reason}; drop it on pickling (or allow-"
                    f"list it in the pickle-safety payload_classes config)",
                )
