"""env-access — environment variables are read only by the config layer.

Scattered ``os.environ`` reads make a run's behaviour depend on ambient
process state that never appears in stats, cache keys or benchmark records.
The sanctioned pattern is the ``REPRO_WORKERS`` one: a single config-layer
module owns the read, names the variable in a module constant, validates the
value, and everything else takes plain parameters.

Flags ``os.environ[...]`` / ``os.environ.get(...)`` / ``os.getenv(...)``
(and ``environ`` / ``getenv`` imported from ``os``) outside the configured
allowlist of config-layer modules.

Options:
    allowed_modules: dotted module names that may touch the environment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    dotted_name,
    register,
)


@register
class EnvAccessChecker(Checker):
    name = "env-access"
    description = (
        "os.environ may only be read through the config layer (the "
        "REPRO_WORKERS pattern)"
    )
    default_config: dict[str, object] = {
        "allowed_modules": ["repro.exec.pool"],
    }

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        allowed = set(self.str_list("allowed_modules"))
        if module.module in allowed:
            return

        imported_env: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in ("environ", "getenv"):
                        imported_env.add(alias.asname or alias.name)

        for node in ast.walk(module.tree):
            chain = dotted_name(node) if isinstance(node, ast.Attribute) else None
            hit: str | None = None
            if chain in ("os.environ", "os.getenv"):
                hit = chain
            elif isinstance(node, ast.Name) and node.id in imported_env:
                hit = f"os.{node.id}"
            if hit is not None:
                yield module.finding(
                    self.name,
                    node,
                    f"{hit} read outside the config layer; route it through "
                    f"{' / '.join(sorted(allowed)) or 'the config module'} "
                    f"(named constant + validation) and pass the value in",
                )
