"""stats-drift — stats dataclasses and the code writing them must agree.

The engine's observability rests on its stats dataclasses (``SolveStats``,
``SketchRefineStats``, ``CacheStats``, ...).  Two failure modes drift in
silently:

* code assigns ``stats.some_field = ...`` for a field the class never
  declared — Python happily creates it, benchmarks/JSON reports silently
  miss it, and ``as_dict()``-style exports drop it;
* a field is declared (and documented) on the class but nothing ever writes
  it, so dashboards read a default forever.

This is a *project-wide* rule: declarations are collected from every linted
module (classes whose names match ``stats_class_patterns``), writes are
attribute stores whose receiver *looks like* a stats object
(``stats.x = ...``, ``self.last_stats.x += ...``) plus constructor keyword /
positional arguments of a stats class.  Both directions are reported in
:meth:`finalize` once the whole project was visited.

Options:
    stats_class_patterns: fnmatch patterns naming stats classes.
    receiver_patterns: fnmatch patterns over the receiver's terminal name.
    never_written_ok: fields exempt from the declared-but-never-written rule
        (``Class.field`` form) — e.g. fields only external callers populate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    ProjectInfo,
    register,
)


@dataclass
class _StatsClass:
    name: str
    module: ModuleInfo
    node: ast.ClassDef
    fields: list[str] = field(default_factory=list)
    field_nodes: dict[str, ast.AST] = field(default_factory=dict)


@dataclass
class _Write:
    attr: str
    module: ModuleInfo
    node: ast.AST


@register
class StatsDriftChecker(Checker):
    name = "stats-drift"
    description = (
        "attributes written on stats objects must be declared on a stats "
        "class, and declared fields must be written somewhere"
    )
    default_config: dict[str, object] = {
        "stats_class_patterns": ["*Stats"],
        "receiver_patterns": ["stats", "*_stats"],
        "never_written_ok": [],
    }

    def __init__(self, options: dict[str, object] | None = None) -> None:
        super().__init__(options)
        self._classes: list[_StatsClass] = []
        self._writes: list[_Write] = []
        self._constructed: set[str] = set()

    # -- per-module collection ---------------------------------------------------

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        class_patterns = self.str_list("stats_class_patterns")
        receiver_patterns = self.str_list("receiver_patterns")
        known_names = {c.name for c in self._classes}

        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and any(
                fnmatch(node.name, p) for p in class_patterns
            ):
                self._collect_class(module, node)
                known_names.add(node.name)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and self._receiver_matches(
                        target.value, receiver_patterns
                    ):
                        self._writes.append(_Write(target.attr, module, target))
            elif isinstance(node, ast.Call):
                callee = node.func
                callee_name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute) else None
                )
                if callee_name is not None and any(
                    fnmatch(callee_name, p) for p in class_patterns
                ):
                    for kw in node.keywords:
                        if kw.arg is not None:
                            self._constructed.add(f"{callee_name}.{kw.arg}")
                    for position, _ in enumerate(node.args):
                        self._constructed.add(f"{callee_name}[{position}]")
        return iter(())

    def _collect_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        cls = _StatsClass(name=node.name, module=module, node=node)
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cls.fields.append(stmt.target.id)
                cls.field_nodes[stmt.target.id] = stmt
        self._classes.append(cls)

    @staticmethod
    def _receiver_matches(receiver: ast.AST, patterns: list[str]) -> bool:
        terminal: str | None = None
        if isinstance(receiver, ast.Name):
            terminal = receiver.id
        elif isinstance(receiver, ast.Attribute):
            terminal = receiver.attr
        if terminal is None:
            return False
        return any(fnmatch(terminal, p) for p in patterns)

    # -- project-wide reconciliation ---------------------------------------------

    def finalize(self, project: ProjectInfo) -> Iterator[Finding]:
        declared: set[str] = set()
        for cls in self._classes:
            declared.update(cls.fields)

        # Writes to fields no stats class declares.
        if self._classes:  # without declarations there is nothing to check
            for write in self._writes:
                if write.attr not in declared:
                    yield write.module.finding(
                        self.name,
                        write.node,
                        f"stats attribute {write.attr!r} is assigned but "
                        f"declared on no stats class — declare it (with a "
                        f"docstring) or rename the write",
                    )

        # Declared fields nothing ever writes.
        written = {w.attr for w in self._writes}
        exempt = set(self.str_list("never_written_ok"))
        for cls in self._classes:
            for position, name in enumerate(cls.fields):
                if name in written:
                    continue
                if f"{cls.name}.{name}" in self._constructed:
                    continue
                if f"{cls.name}[{position}]" in self._constructed:
                    continue
                if f"{cls.name}.{name}" in exempt:
                    continue
                yield cls.module.finding(
                    self.name,
                    cls.field_nodes[name],
                    f"{cls.name}.{name} is declared but never assigned "
                    f"anywhere — dead telemetry reads its default forever; "
                    f"wire it up or remove the field",
                )
