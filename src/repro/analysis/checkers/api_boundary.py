"""api-boundary — a MatrixForm is immutable once built.

``MatrixForm`` is the IR shared by every solver consumer; its buffers are
*structurally shared* (``with_bounds`` views alias the objective/constraint
arrays, branch-and-bound nodes share one form, solve tasks pickle it to
workers).  Mutating a form after it is handed to a solver or pool therefore
corrupts other nodes' views — or, worse, only the parallel path.  The one
sanctioned mutable slot is the ``cache`` scratch dict.

The checker flags stores to a form's data attributes (``form.b_ub = ...``,
``form.c[...] = ...``, ``form.bounds += ...``) on any receiver it can infer
to be a ``MatrixForm``:

* a variable assigned from ``MatrixForm(...)``, ``*.to_matrix(...)`` or
  ``*.with_bounds(...)`` in the same scope,
* a parameter or variable annotated ``MatrixForm``, or
* a name matching the configured receiver patterns (``form``, ``*_form``).

The defining module (and any other allowlisted builder) is exempt: the
constructor has to populate the fields it owns.

Options:
    frozen_attrs: attribute names that must never be stored to.
    allowed_modules: dotted modules exempt from the rule.
    receiver_patterns: fnmatch patterns for name-based inference.
    constructor_calls: terminal callable names that produce a MatrixForm.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    register,
)


def _annotation_is(annotation: ast.AST | None, class_name: str) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return class_name in annotation.value
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == class_name:
            return True
        if isinstance(node, ast.Attribute) and node.attr == class_name:
            return True
    return False


@register
class ApiBoundaryChecker(Checker):
    name = "api-boundary"
    description = (
        "MatrixForm is immutable once built — no stores to its data "
        "attributes outside the defining module (cache dict excepted)"
    )
    default_config: dict[str, object] = {
        "class_name": "MatrixForm",
        "frozen_attrs": ["c", "a_ub", "b_ub", "a_eq", "b_eq", "bounds", "maximize"],
        "allowed_modules": ["repro.ilp.matrix_form"],
        "receiver_patterns": ["form", "*_form", "matrix_form"],
        "constructor_calls": ["MatrixForm", "to_matrix", "with_bounds"],
    }

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module in set(self.str_list("allowed_modules")):
            return
        class_name = str(self.options["class_name"])
        frozen = set(self.str_list("frozen_attrs"))
        patterns = self.str_list("receiver_patterns")
        constructors = set(self.str_list("constructor_calls"))

        # Names bound from a form-producing call or annotated as the class.
        form_names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = node.value.func
                terminal = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute) else None
                )
                if terminal in constructors:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            form_names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if _annotation_is(node.annotation, class_name) and isinstance(
                    node.target, ast.Name
                ):
                    form_names.add(node.target.id)
            elif isinstance(node, ast.arg):
                if _annotation_is(node.annotation, class_name):
                    form_names.add(node.arg)

        def is_form(receiver: ast.AST) -> bool:
            if isinstance(receiver, ast.Name):
                return receiver.id in form_names or any(
                    fnmatch(receiver.id, p) for p in patterns
                )
            if isinstance(receiver, ast.Attribute):
                return any(fnmatch(receiver.attr, p) for p in patterns)
            return False

        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                # form.attr = ... / form.attr += ...
                attribute = target if isinstance(target, ast.Attribute) else None
                # form.attr[...] = ... (mutating buffer contents in place)
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Attribute
                ):
                    attribute = target.value
                if (
                    attribute is not None
                    and attribute.attr in frozen
                    and is_form(attribute.value)
                ):
                    yield module.finding(
                        self.name,
                        target,
                        f"store to {class_name}.{attribute.attr} outside "
                        f"{' / '.join(self.str_list('allowed_modules'))}: forms "
                        f"are structurally shared (with_bounds views, B&B "
                        f"nodes, pickled tasks) — build a new form instead",
                    )
