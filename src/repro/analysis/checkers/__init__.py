"""Built-in repro-lint checkers.

Importing this package populates :data:`repro.analysis.core.REGISTRY`; each
module registers one rule via the :func:`repro.analysis.core.register`
decorator.  Third-party/experimental checkers can register the same way and
are picked up by name.
"""

from repro.analysis.checkers import (  # noqa: F401
    api_boundary,
    determinism,
    env_access,
    pickle_safety,
    stats_drift,
    tolerance,
)

__all__ = [
    "api_boundary",
    "determinism",
    "env_access",
    "pickle_safety",
    "stats_drift",
    "tolerance",
]
