"""Lint-run configuration: rule selection and per-checker options.

A :class:`LintConfig` can be built programmatically (the pytest API), from a
JSON file (``--config``), or left at defaults (the committed rule set).  Per
checker, ``options[rule]`` is merged *over* the checker's
``default_config`` — so a config file only states deviations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping


@dataclass
class LintConfig:
    """Configuration of one lint run."""

    rules: list[str] | None = None
    """Rule names to run (``None`` = every registered checker)."""

    options: dict[str, dict[str, object]] = field(default_factory=dict)
    """Per-rule option overrides, merged over each checker's defaults."""

    baseline_path: Path | None = None
    """Baseline file (``None`` = ``repro-lint-baseline.json`` next to the
    first lint root, if present)."""

    use_baseline: bool = True

    @classmethod
    def from_file(cls, path: Path) -> "LintConfig":
        """Load a JSON config: ``{"rules": [...], "options": {rule: {...}}}``."""
        data = json.loads(path.read_text(encoding="utf-8"))
        rules = data.get("rules")
        options_raw = data.get("options", {})
        if not isinstance(options_raw, Mapping):
            raise ValueError(f"{path}: 'options' must be an object")
        options = {str(rule): dict(opts) for rule, opts in options_raw.items()}
        baseline = data.get("baseline")
        return cls(
            rules=[str(r) for r in rules] if rules is not None else None,
            options=options,
            baseline_path=Path(baseline) if baseline else None,
        )

    def options_for(self, rule: str) -> dict[str, object]:
        return dict(self.options.get(rule, {}))
