"""CLI entry point: ``python -m repro.analysis [paths...] [options]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig
from repro.analysis.core import all_checkers
from repro.analysis.runner import run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: AST-based checks of the repo's determinism, "
            "picklability and tolerance invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        help="JSON config file ({'rules': [...], 'options': {rule: {...}}})",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="baseline file (default: repro-lint-baseline.json found near "
        "the first lint root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit; "
        "justifications start as TODOs that must be filled in",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print baselined findings in text output",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for name, cls in sorted(all_checkers().items()):
            print(f"{name}: {cls.description}")
        return 0

    if args.config is not None:
        config = LintConfig.from_file(args.config)
    else:
        config = LintConfig()
    if args.rules:
        config.rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    if args.baseline is not None:
        config.baseline_path = args.baseline
    if args.no_baseline:
        config.use_baseline = False

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    if args.update_baseline:
        config.use_baseline = False
        report = run_lint(paths, config)
        target = args.baseline or Path("repro-lint-baseline.json")
        Baseline.from_findings(report.findings, path=target).save()
        print(
            f"wrote {len(report.findings)} entr{'y' if len(report.findings) == 1 else 'ies'} "
            f"to {target} — fill in the justifications before committing"
        )
        return 0

    report = run_lint(paths, config)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text(verbose=args.verbose))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
