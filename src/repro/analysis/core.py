"""Core object model of the repro-lint static-analysis framework.

The framework walks Python ASTs and reports :class:`Finding`\\ s — violations
of the repo's *reproducibility invariants* (determinism, picklability,
tolerance discipline, ...).  The moving parts:

* :class:`ModuleInfo` — one parsed source file (AST + raw lines + the dotted
  module name used for scoping rules to subtrees of the package).
* :class:`ProjectInfo` — every module of one lint run, for checkers that need
  a whole-project view (e.g. stats-drift matches attribute *writes* in one
  module against field *declarations* in another).
* :class:`Checker` — base class; subclasses register themselves under a rule
  name via :func:`register` and implement :meth:`check_module` (per file)
  and/or :meth:`finalize` (once, after every module was visited).
* suppressions — ``# repro-lint: disable=<rule>[,<rule>...]`` on the
  offending line silences that line; ``# repro-lint: disable-file=<rule>``
  anywhere silences the whole file for the listed rules.

Line-level suppression matches the *reported* line of the finding (the AST
node's ``lineno``), so for a multi-line statement the comment goes on the
first line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Suppression comment grammar: ``# repro-lint: disable=a,b`` (line) and
#: ``# repro-lint: disable-file=a,b`` (whole file).  ``all`` matches any rule.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\-\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    """Path as given to the runner (repo-relative POSIX form preferred)."""
    line: int
    column: int
    message: str
    symbol: str = "<module>"
    """Dotted enclosing scope (``Class.method``), used for baseline matching
    so entries survive unrelated line drift."""

    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline file."""
        return f"{self.rule}::{self.path}::{self.symbol}::{self.message}"

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Parsed suppression comments of one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_level: set[str] = field(default_factory=set)

    def is_suppressed(self, finding: Finding) -> bool:
        for rules in (self.file_level, self.by_line.get(finding.line, set())):
            if "all" in rules or finding.rule in rules:
                return True
        return False


def parse_suppressions(lines: list[str]) -> Suppressions:
    """Extract ``# repro-lint: disable`` comments from raw source lines."""
    result = Suppressions()
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        if match.group("kind") == "disable-file":
            result.file_level.update(rules)
        else:
            result.by_line.setdefault(lineno, set()).update(rules)
    return result


def module_name_for(path: Path) -> str:
    """Dotted module name used for rule scoping.

    The name is anchored at the nearest ``repro`` package ancestor
    (``.../src/repro/exec/pool.py`` → ``repro.exec.pool``); files outside the
    package (test fixtures) fall back to their bare stem, so fixture tests
    scope rules with single-segment module names.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def module_in_scope(module: str, prefixes: Iterable[str]) -> bool:
    """Whether ``module`` falls under any dotted ``prefixes``.

    An empty prefix list means *everywhere* — fixture tests use it to point a
    path-scoped rule at arbitrary files.
    """
    prefix_list = list(prefixes)
    if not prefix_list:
        return True
    return any(module == p or module.startswith(p + ".") for p in prefix_list)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    rel_path: str
    module: str
    tree: ast.Module
    lines: list[str]
    suppressions: Suppressions
    _scope_map: dict[int, str] | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def parse(cls, path: Path, rel_path: str | None = None) -> "ModuleInfo":
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        return cls(
            path=path,
            rel_path=rel_path if rel_path is not None else path.as_posix(),
            module=module_name_for(path),
            tree=ast.parse(source, filename=str(path)),
            lines=lines,
            suppressions=parse_suppressions(lines),
        )

    def scope_of(self, node: ast.AST) -> str:
        """Dotted enclosing class/function scope of ``node`` (lazy, cached)."""
        if self._scope_map is None:
            self._scope_map = _build_scope_map(self.tree)
        return self._scope_map.get(id(node), "<module>")

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=rule,
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
            symbol=self.scope_of(node),
        )


def _build_scope_map(tree: ast.Module) -> dict[int, str]:
    """Map ``id(node)`` → dotted enclosing scope for every node in the tree."""
    scopes: dict[int, str] = {}

    def visit(node: ast.AST, scope: str) -> None:
        scopes[id(node)] = scope
        child_scope = scope
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            child_scope = node.name if scope == "<module>" else f"{scope}.{node.name}"
            scopes[id(node)] = child_scope
        for child in ast.iter_child_nodes(node):
            visit(child, child_scope)

    for top in ast.iter_child_nodes(tree):
        visit(top, "<module>")
    return scopes


@dataclass
class ProjectInfo:
    """Every module of one lint run, in deterministic (sorted-path) order."""

    modules: list[ModuleInfo] = field(default_factory=list)


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class Checker:
    """Base class for one lint rule.

    Subclasses set :attr:`name` / :attr:`description` / :attr:`default_config`
    and are instantiated once per run with the merged per-rule options.
    """

    name: str = ""
    description: str = ""
    #: Per-rule options (documented per checker); merged with any user config.
    default_config: dict[str, object] = {}

    def __init__(self, options: dict[str, object] | None = None) -> None:
        merged = dict(self.default_config)
        if options:
            merged.update(options)
        self.options = merged

    def option(self, key: str) -> object:
        return self.options[key]

    def str_list(self, key: str) -> list[str]:
        value = self.options.get(key, [])
        return [str(v) for v in value] if isinstance(value, (list, tuple)) else []

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for one file (default: none)."""
        return iter(())

    def finalize(self, project: ProjectInfo) -> Iterator[Finding]:
        """Yield cross-module findings after every file was visited."""
        return iter(())


#: Rule name → checker class.  Populated by :func:`register` at import time
#: (``repro.analysis.checkers`` imports every built-in checker module).
REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} has no rule name")
    if cls.name in REGISTRY:
        raise ValueError(f"duplicate checker rule name {cls.name!r}")
    REGISTRY[cls.name] = cls
    return cls


def all_checkers() -> dict[str, type[Checker]]:
    """The registry, with the built-in checkers guaranteed to be loaded."""
    # Imported lazily to avoid a cycle (checker modules import this module).
    from repro.analysis import checkers as _builtin  # noqa: F401

    return dict(REGISTRY)
