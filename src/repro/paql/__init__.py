"""PaQL — the Package Query Language.

Implements the declarative language of Section 2 of the paper:

* :mod:`repro.paql.lexer` / :mod:`repro.paql.parser` — tokenizer and
  recursive-descent parser for the Appendix A.4 grammar,
* :mod:`repro.paql.ast` — the query AST (:class:`PackageQuery`, global
  constraints, objective),
* :mod:`repro.paql.validator` — semantic validation against a table schema,
* :mod:`repro.paql.builder` — a fluent programmatic alternative to writing
  PaQL text,
* :mod:`repro.paql.pretty` — converts an AST back into canonical PaQL text.
"""

from repro.paql.ast import (
    AggregateRef,
    GlobalConstraint,
    LinearAggregateExpression,
    Objective,
    ObjectiveDirection,
    PackageQuery,
)
from repro.paql.parser import parse_paql
from repro.paql.builder import PackageQueryBuilder, query_over
from repro.paql.validator import validate_query
from repro.paql.pretty import format_paql

__all__ = [
    "PackageQuery",
    "GlobalConstraint",
    "AggregateRef",
    "LinearAggregateExpression",
    "Objective",
    "ObjectiveDirection",
    "parse_paql",
    "PackageQueryBuilder",
    "query_over",
    "validate_query",
    "format_paql",
]
