"""Fluent programmatic construction of PaQL queries.

Writing PaQL text is the user-facing interface, but workload generators and
tests benefit from a builder that constructs the AST directly::

    query = (
        query_over("recipes")
        .no_repetition()
        .where(col("gluten") == "free")
        .count_equals(3)
        .sum_between("kcal", 2.0, 2.5)
        .minimize_sum("saturated_fat")
        .build()
    )
"""

from __future__ import annotations

from repro.db.aggregates import AggregateFunction
from repro.db.expressions import Expression
from repro.paql.ast import (
    AggregateRef,
    ConstraintSenseKeyword,
    GlobalConstraint,
    LinearAggregateExpression,
    Objective,
    ObjectiveDirection,
    PackageQuery,
)


class PackageQueryBuilder:
    """Incrementally build a :class:`~repro.paql.ast.PackageQuery`."""

    def __init__(self, relation: str, name: str | None = None):
        self._relation = relation
        self._name = name
        self._repeat: int | None = None
        self._base_predicate: Expression | None = None
        self._constraints: list[GlobalConstraint] = []
        self._objective: Objective | None = None

    # -- FROM clause options ----------------------------------------------------------

    def named(self, name: str) -> "PackageQueryBuilder":
        """Attach a human-readable name (used in benchmark reports)."""
        self._name = name
        return self

    def repeat(self, k: int) -> "PackageQueryBuilder":
        """Allow each tuple to appear up to ``k`` additional times (REPEAT k)."""
        self._repeat = k
        return self

    def no_repetition(self) -> "PackageQueryBuilder":
        """Forbid repeated tuples (REPEAT 0)."""
        return self.repeat(0)

    # -- WHERE clause -------------------------------------------------------------------

    def where(self, predicate: Expression) -> "PackageQueryBuilder":
        """Set (or AND-extend) the base predicate."""
        if self._base_predicate is None:
            self._base_predicate = predicate
        else:
            self._base_predicate = self._base_predicate & predicate
        return self

    # -- SUCH THAT clause -----------------------------------------------------------------

    def constrain(self, constraint: GlobalConstraint) -> "PackageQueryBuilder":
        """Add an arbitrary pre-built global constraint."""
        self._constraints.append(constraint)
        return self

    def count_equals(self, value: float) -> "PackageQueryBuilder":
        """COUNT(P.*) = value."""
        return self._add_simple(AggregateRef(AggregateFunction.COUNT), ConstraintSenseKeyword.EQ, value)

    def count_at_most(self, value: float) -> "PackageQueryBuilder":
        """COUNT(P.*) <= value."""
        return self._add_simple(AggregateRef(AggregateFunction.COUNT), ConstraintSenseKeyword.LE, value)

    def count_at_least(self, value: float) -> "PackageQueryBuilder":
        """COUNT(P.*) >= value."""
        return self._add_simple(AggregateRef(AggregateFunction.COUNT), ConstraintSenseKeyword.GE, value)

    def count_between(self, low: float, high: float) -> "PackageQueryBuilder":
        """low <= COUNT(P.*) <= high."""
        return self._add_between(AggregateRef(AggregateFunction.COUNT), low, high)

    def sum_at_most(self, column: str, value: float) -> "PackageQueryBuilder":
        """SUM(P.column) <= value."""
        return self._add_simple(
            AggregateRef(AggregateFunction.SUM, column), ConstraintSenseKeyword.LE, value
        )

    def sum_at_least(self, column: str, value: float) -> "PackageQueryBuilder":
        """SUM(P.column) >= value."""
        return self._add_simple(
            AggregateRef(AggregateFunction.SUM, column), ConstraintSenseKeyword.GE, value
        )

    def sum_between(self, column: str, low: float, high: float) -> "PackageQueryBuilder":
        """low <= SUM(P.column) <= high."""
        return self._add_between(AggregateRef(AggregateFunction.SUM, column), low, high)

    def sum_equals(self, column: str, value: float) -> "PackageQueryBuilder":
        """SUM(P.column) = value."""
        return self._add_simple(
            AggregateRef(AggregateFunction.SUM, column), ConstraintSenseKeyword.EQ, value
        )

    def avg_at_most(self, column: str, value: float) -> "PackageQueryBuilder":
        """AVG(P.column) <= value."""
        return self._add_simple(
            AggregateRef(AggregateFunction.AVG, column), ConstraintSenseKeyword.LE, value
        )

    def avg_at_least(self, column: str, value: float) -> "PackageQueryBuilder":
        """AVG(P.column) >= value."""
        return self._add_simple(
            AggregateRef(AggregateFunction.AVG, column), ConstraintSenseKeyword.GE, value
        )

    def filtered_count_at_least(
        self, condition: Expression, value: float
    ) -> "PackageQueryBuilder":
        """(SELECT COUNT(*) FROM P WHERE condition) >= value."""
        aggregate = AggregateRef(AggregateFunction.COUNT, filter=condition)
        return self._add_simple(aggregate, ConstraintSenseKeyword.GE, value)

    def filtered_count_at_most(
        self, condition: Expression, value: float
    ) -> "PackageQueryBuilder":
        """(SELECT COUNT(*) FROM P WHERE condition) <= value."""
        aggregate = AggregateRef(AggregateFunction.COUNT, filter=condition)
        return self._add_simple(aggregate, ConstraintSenseKeyword.LE, value)

    def compare_counts(
        self, left_condition: Expression, right_condition: Expression
    ) -> "PackageQueryBuilder":
        """(COUNT where left) >= (COUNT where right), the paper's example."""
        expression = LinearAggregateExpression(
            [
                (1.0, AggregateRef(AggregateFunction.COUNT, filter=left_condition)),
                (-1.0, AggregateRef(AggregateFunction.COUNT, filter=right_condition)),
            ]
        )
        self._constraints.append(
            GlobalConstraint(expression, ConstraintSenseKeyword.GE, 0.0)
        )
        return self

    # -- objective --------------------------------------------------------------------------

    def minimize_sum(self, column: str) -> "PackageQueryBuilder":
        """MINIMIZE SUM(P.column)."""
        return self._set_objective(ObjectiveDirection.MINIMIZE, column)

    def maximize_sum(self, column: str) -> "PackageQueryBuilder":
        """MAXIMIZE SUM(P.column)."""
        return self._set_objective(ObjectiveDirection.MAXIMIZE, column)

    def minimize_count(self) -> "PackageQueryBuilder":
        """MINIMIZE COUNT(P.*)."""
        self._objective = Objective(
            ObjectiveDirection.MINIMIZE,
            LinearAggregateExpression.of(AggregateRef(AggregateFunction.COUNT)),
        )
        return self

    def maximize_count(self) -> "PackageQueryBuilder":
        """MAXIMIZE COUNT(P.*)."""
        self._objective = Objective(
            ObjectiveDirection.MAXIMIZE,
            LinearAggregateExpression.of(AggregateRef(AggregateFunction.COUNT)),
        )
        return self

    def objective(self, objective: Objective) -> "PackageQueryBuilder":
        """Set an arbitrary pre-built objective."""
        self._objective = objective
        return self

    # -- build -------------------------------------------------------------------------------

    def build(self) -> PackageQuery:
        """Return the assembled :class:`PackageQuery`."""
        return PackageQuery(
            relation=self._relation,
            repeat=self._repeat,
            base_predicate=self._base_predicate,
            global_constraints=list(self._constraints),
            objective=self._objective,
            name=self._name,
        )

    # -- internals ------------------------------------------------------------------------------

    def _add_simple(
        self, aggregate: AggregateRef, sense: ConstraintSenseKeyword, value: float
    ) -> "PackageQueryBuilder":
        self._constraints.append(
            GlobalConstraint(LinearAggregateExpression.of(aggregate), sense, float(value))
        )
        return self

    def _add_between(
        self, aggregate: AggregateRef, low: float, high: float
    ) -> "PackageQueryBuilder":
        self._constraints.append(
            GlobalConstraint(
                LinearAggregateExpression.of(aggregate),
                ConstraintSenseKeyword.BETWEEN,
                float(low),
                float(high),
            )
        )
        return self

    def _set_objective(self, direction: ObjectiveDirection, column: str) -> "PackageQueryBuilder":
        self._objective = Objective(
            direction,
            LinearAggregateExpression.of(AggregateRef(AggregateFunction.SUM, column)),
        )
        return self


def query_over(relation: str, name: str | None = None) -> PackageQueryBuilder:
    """Start building a package query over ``relation``."""
    return PackageQueryBuilder(relation, name=name)
