"""Semantic validation of PaQL queries against a table schema.

Parsing only checks syntax; validation checks that the query makes sense for
a concrete input relation:

* every referenced column exists,
* columns used in aggregates and the objective are numeric,
* AVG constraints can be linearised (they need a plain, unfiltered aggregate),
* the query stays within the linear fragment handled by the translation rules.
"""

from __future__ import annotations

from repro.dataset.schema import Schema
from repro.db.aggregates import AggregateFunction
from repro.errors import PaQLValidationError
from repro.paql.ast import AggregateRef, GlobalConstraint, PackageQuery


def validate_query(query: PackageQuery, schema: Schema) -> None:
    """Raise :class:`PaQLValidationError` if ``query`` is invalid for ``schema``."""
    _validate_columns_exist(query, schema)
    _validate_numeric_usage(query, schema)
    for constraint in query.global_constraints:
        _validate_constraint(constraint)
    if query.objective is not None:
        for _, aggregate in query.objective.expression.terms:
            _validate_aggregate(aggregate, in_objective=True)
    if query.repeat is not None and query.repeat < 0:
        raise PaQLValidationError("REPEAT must be non-negative")


def _validate_columns_exist(query: PackageQuery, schema: Schema) -> None:
    for column in sorted(query.referenced_columns):
        if column not in schema:
            raise PaQLValidationError(
                f"query references unknown column {column!r} "
                f"(relation {query.relation!r} has: {', '.join(schema.names)})"
            )


def _validate_numeric_usage(query: PackageQuery, schema: Schema) -> None:
    aggregates: list[AggregateRef] = []
    for constraint in query.global_constraints:
        aggregates.extend(a for _, a in constraint.expression.terms)
    if query.objective is not None:
        aggregates.extend(a for _, a in query.objective.expression.terms)
    for aggregate in aggregates:
        if aggregate.column is not None and not schema[aggregate.column].is_numeric:
            raise PaQLValidationError(
                f"aggregate {aggregate.function.value} over non-numeric column {aggregate.column!r}"
            )


def _validate_constraint(constraint: GlobalConstraint) -> None:
    if not constraint.expression.terms:
        raise PaQLValidationError("a global constraint must reference at least one aggregate")
    has_avg = any(a.function is AggregateFunction.AVG for _, a in constraint.expression.terms)
    if has_avg and len(constraint.expression.terms) > 1:
        raise PaQLValidationError(
            "AVG can only appear alone in a global constraint "
            "(the linearisation rewrites AVG(P.attr) <= v as SUM(P.attr - v) <= 0)"
        )
    for _, aggregate in constraint.expression.terms:
        _validate_aggregate(aggregate, in_objective=False)


def _validate_aggregate(aggregate: AggregateRef, in_objective: bool) -> None:
    if not aggregate.function.is_linear:
        raise PaQLValidationError(
            f"{aggregate.function.value} is not a linear aggregate; "
            "only COUNT, SUM and AVG are supported in package constraints"
        )
    if aggregate.function is AggregateFunction.AVG and in_objective:
        raise PaQLValidationError(
            "AVG objectives are ratio objectives and cannot be translated to a linear ILP; "
            "use SUM with a cardinality constraint instead"
        )
    if aggregate.function is AggregateFunction.AVG and aggregate.filter is not None:
        raise PaQLValidationError("filtered AVG aggregates are not supported")
