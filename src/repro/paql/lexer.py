"""Tokenizer for PaQL text.

The token set covers the Appendix A.4 grammar: SQL-style keywords, identifiers
(optionally qualified, e.g. ``R.kcal`` or ``P.*``), numeric and string
literals, comparison and arithmetic operators, and punctuation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PaQLSyntaxError

KEYWORDS = {
    "SELECT",
    "PACKAGE",
    "AS",
    "FROM",
    "REPEAT",
    "WHERE",
    "SUCH",
    "THAT",
    "AND",
    "OR",
    "NOT",
    "IN",
    "BETWEEN",
    "MINIMIZE",
    "MAXIMIZE",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"      # = <> <= >= < >
    ARITHMETIC = "arithmetic"  # + - * /
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    STAR = "*"
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def matches_keyword(self, keyword: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == keyword

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Split PaQL text into tokens, raising :class:`PaQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(text)

    def push(token_type: TokenType, value: str) -> None:
        tokens.append(Token(token_type, value, line, column))

    while i < length:
        ch = text[i]

        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            column += 1
            i += 1
            continue
        if ch == "-" and i + 1 < length and text[i + 1] == "-":
            # SQL-style line comment.
            while i < length and text[i] != "\n":
                i += 1
            continue

        if ch == "'":
            end = text.find("'", i + 1)
            if end == -1:
                raise PaQLSyntaxError("unterminated string literal", line, column)
            push(TokenType.STRING, text[i + 1 : end])
            column += end - i + 1
            i = end + 1
            continue

        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exponent = False
            while j < length:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exponent:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exponent and j > i:
                    seen_exponent = True
                    j += 1
                    if j < length and text[j] in "+-":
                        j += 1
                else:
                    break
            push(TokenType.NUMBER, text[i:j])
            column += j - i
            i = j
            continue

        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                push(TokenType.KEYWORD, upper)
            else:
                push(TokenType.IDENTIFIER, word)
            column += j - i
            i = j
            continue

        two = text[i : i + 2]
        if two in ("<=", ">=", "<>", "!="):
            push(TokenType.OPERATOR, "<>" if two == "!=" else two)
            column += 2
            i += 2
            continue
        if ch in "=<>":
            push(TokenType.OPERATOR, ch)
        elif ch in "+-/":
            push(TokenType.ARITHMETIC, ch)
        elif ch == "*":
            push(TokenType.STAR, ch)
        elif ch == "(":
            push(TokenType.LPAREN, ch)
        elif ch == ")":
            push(TokenType.RPAREN, ch)
        elif ch == ",":
            push(TokenType.COMMA, ch)
        elif ch == ".":
            push(TokenType.DOT, ch)
        else:
            raise PaQLSyntaxError(f"unexpected character {ch!r}", line, column)
        column += 1
        i += 1

    tokens.append(Token(TokenType.END, "", line, column))
    return tokens
