"""Render a :class:`~repro.paql.ast.PackageQuery` back to canonical PaQL text.

The formatter is the inverse of the parser on the supported fragment: for any
query the parser produces, ``parse_paql(format_paql(query))`` yields an
equivalent query (a property exercised by the round-trip tests).
"""

from __future__ import annotations

from repro.db.expressions import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    LogicalOp,
    Not,
)
from repro.paql.ast import (
    AggregateRef,
    ConstraintSenseKeyword,
    GlobalConstraint,
    LinearAggregateExpression,
    PackageQuery,
)


def format_paql(query: PackageQuery) -> str:
    """Return canonical PaQL text for ``query``."""
    lines = [
        f"SELECT PACKAGE({query.relation_alias}) AS {query.package_alias}",
    ]
    from_line = f"FROM {query.relation} {query.relation_alias}"
    if query.repeat is not None:
        from_line += f" REPEAT {query.repeat}"
    lines.append(from_line)
    if query.base_predicate is not None:
        lines.append(f"WHERE {format_expression(query.base_predicate, query.relation_alias)}")
    if query.global_constraints:
        constraint_text = " AND\n          ".join(
            _format_constraint(c, query.package_alias) for c in query.global_constraints
        )
        lines.append(f"SUCH THAT {constraint_text}")
    if query.objective is not None:
        lines.append(
            f"{query.objective.direction.value} "
            f"{_format_linear(query.objective.expression, query.package_alias)}"
        )
    return "\n".join(lines)


def format_expression(expression: Expression, alias: str) -> str:
    """Format a per-tuple expression, qualifying column references with ``alias``."""
    if isinstance(expression, ColumnRef):
        return f"{alias}.{expression.name}"
    if isinstance(expression, Literal):
        if isinstance(expression.value, str):
            return f"'{expression.value}'"
        return _format_number(float(expression.value))
    if isinstance(expression, BinaryOp):
        return (
            f"({format_expression(expression.left, alias)} {expression.op.value} "
            f"{format_expression(expression.right, alias)})"
        )
    if isinstance(expression, Comparison):
        return (
            f"{format_expression(expression.left, alias)} {expression.op.value} "
            f"{format_expression(expression.right, alias)}"
        )
    if isinstance(expression, LogicalOp):
        joiner = f" {expression.op.value} "
        return "(" + joiner.join(format_expression(o, alias) for o in expression.operands) + ")"
    if isinstance(expression, Not):
        return f"NOT {format_expression(expression.operand, alias)}"
    if isinstance(expression, InList):
        values = ", ".join(
            f"'{v}'" if isinstance(v, str) else _format_number(float(v)) for v in expression.values
        )
        return f"{format_expression(expression.operand, alias)} IN ({values})"
    raise TypeError(f"cannot format expression of type {type(expression).__name__}")


def _format_constraint(constraint: GlobalConstraint, alias: str) -> str:
    lhs = _format_linear(constraint.expression, alias)
    if constraint.sense is ConstraintSenseKeyword.BETWEEN:
        return f"{lhs} BETWEEN {_format_number(constraint.lower)} AND {_format_number(constraint.upper)}"
    return f"{lhs} {constraint.sense.value} {_format_number(constraint.lower)}"


def _format_linear(expression: LinearAggregateExpression, alias: str) -> str:
    parts: list[str] = []
    for coefficient, aggregate in expression.terms:
        aggregate_text = _format_aggregate(aggregate, alias)
        if coefficient == 1.0:
            term = aggregate_text
        elif coefficient == -1.0:
            term = f"- {aggregate_text}"
        else:
            term = f"{_format_number(coefficient)} * {aggregate_text}"
        parts.append(term)
    if expression.constant:
        parts.append(_format_number(expression.constant))
    if not parts:
        return "0"
    text = parts[0]
    for part in parts[1:]:
        text += f" - {part[2:]}" if part.startswith("- ") else f" + {part}"
    return text


def _format_aggregate(aggregate: AggregateRef, alias: str) -> str:
    target = f"{alias}.{aggregate.column}" if aggregate.column else f"{alias}.*"
    if aggregate.filter is None:
        return f"{aggregate.function.value}({target})"
    inner_target = "*" if aggregate.column is None else aggregate.column
    condition = format_expression(aggregate.filter, alias)
    return (
        f"(SELECT {aggregate.function.value}({inner_target}) FROM {alias} WHERE {condition})"
    )


def _format_number(value: float | None) -> str:
    if value is None:
        return "0"
    if value == int(value):
        return str(int(value))
    return repr(float(value))
