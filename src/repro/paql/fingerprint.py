"""Canonical fingerprints for PaQL package queries.

Two PaQL texts that mean the same thing should hit the same cache entry.
:func:`query_fingerprint` therefore hashes a *normalised* rendering of the
query AST rather than the query text, so the fingerprint is invariant under:

* whitespace, case of keywords and alias names (``AS P`` vs ``AS pkg``) —
  aliases are purely cosmetic binders and never appear in the canonical form;
* the order of WHERE-clause conjuncts/disjuncts (``a AND b`` ≡ ``b AND a``,
  nested associations are flattened first);
* the order of SUCH THAT constraints (they are conjunctive);
* the order of terms inside a linear aggregate expression, including
  duplicate aggregates, which are merged (``SUM(x) + SUM(x)`` ≡ ``2*SUM(x)``);
* comparison orientation (``5 >= x`` ≡ ``x <= 5``) and number formatting
  (``1`` vs ``1.0`` vs ``1e0``).

The canonical rendering itself is exposed as :func:`canonical_query_text` for
debugging cache keys; the fingerprint is a SHA-256 prefix of it.

What the fingerprint deliberately does *not* capture: the contents or version
of the relation the query runs over.  That is the cache key's job — a
fingerprint identifies the *question*, the cache pairs it with the *data*.
"""

from __future__ import annotations

import hashlib

from repro.db.expressions import (
    BinaryOp,
    ColumnRef,
    Comparison,
    ComparisonOperator,
    Expression,
    InList,
    Literal,
    LogicalOp,
    LogicalOperator,
    Not,
)
from repro.paql.ast import (
    AggregateRef,
    ConstraintSenseKeyword,
    GlobalConstraint,
    LinearAggregateExpression,
    PackageQuery,
)

#: Length of the hex fingerprint (a SHA-256 prefix; 16 hex chars = 64 bits,
#: far below any realistic collision risk for a per-process cache).
_FINGERPRINT_HEX_CHARS = 16


def query_fingerprint(query: PackageQuery) -> str:
    """Return the canonical hex fingerprint of ``query``."""
    text = canonical_query_text(query)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_FINGERPRINT_HEX_CHARS]


def canonical_query_text(query: PackageQuery) -> str:
    """Render ``query`` into the normalised form the fingerprint hashes.

    The rendering is deterministic and alias-free; it is *not* valid PaQL
    (it exists to be hashed and eyeballed, not parsed).
    """
    parts = [f"FROM {query.relation}"]
    parts.append(f"REPEAT {query.repeat if query.repeat is not None else '*'}")
    if query.base_predicate is not None:
        parts.append(f"WHERE {_canonical_expression(query.base_predicate)}")
    constraints = sorted(_canonical_constraint(c) for c in query.global_constraints)
    parts.extend(f"SUCH THAT {text}" for text in constraints)
    if query.objective is not None:
        parts.append(
            f"{query.objective.direction.value} "
            f"{_canonical_linear(query.objective.expression)}"
        )
    return "\n".join(parts)


# -- per-tuple expressions ------------------------------------------------------------


def _canonical_expression(expression: Expression) -> str:
    if isinstance(expression, ColumnRef):
        return f"col:{expression.name}"
    if isinstance(expression, Literal):
        if isinstance(expression.value, str):
            return f"str:{expression.value!r}"
        return f"num:{_canonical_number(float(expression.value))}"
    if isinstance(expression, BinaryOp):
        left = _canonical_expression(expression.left)
        right = _canonical_expression(expression.right)
        # + and * are commutative: order the operands canonically.
        if expression.op.value in "+*" and right < left:
            left, right = right, left
        return f"({left} {expression.op.value} {right})"
    if isinstance(expression, Comparison):
        return _canonical_comparison(expression)
    if isinstance(expression, LogicalOp):
        flattened = _flatten_logical(expression.op, expression.operands)
        rendered = sorted(_canonical_expression(o) for o in flattened)
        return "(" + f" {expression.op.value} ".join(rendered) + ")"
    if isinstance(expression, Not):
        return f"(NOT {_canonical_expression(expression.operand)})"
    if isinstance(expression, InList):
        values = sorted(
            f"str:{v!r}" if isinstance(v, str) else f"num:{_canonical_number(float(v))}"
            for v in expression.values
        )
        return f"({_canonical_expression(expression.operand)} IN [{', '.join(values)}])"
    raise TypeError(f"cannot fingerprint expression of type {type(expression).__name__}")


def _canonical_comparison(comparison: Comparison) -> str:
    left, op, right = comparison.left, comparison.op, comparison.right
    # Orient literal-vs-expression comparisons with the literal on the right
    # (``5 >= x`` and ``x <= 5`` are the same predicate).
    if isinstance(left, Literal) and not isinstance(right, Literal):
        left, right = right, left
        op = op.flip()
    left_text = _canonical_expression(left)
    right_text = _canonical_expression(right)
    # = and <> are symmetric: order the operands canonically.
    if op in (ComparisonOperator.EQ, ComparisonOperator.NE) and right_text < left_text:
        left_text, right_text = right_text, left_text
    return f"({left_text} {op.value} {right_text})"


def _flatten_logical(op: LogicalOperator, operands: list[Expression]) -> list[Expression]:
    """Flatten nested same-operator trees: ``(a AND b) AND c`` → ``[a, b, c]``."""
    flat: list[Expression] = []
    for operand in operands:
        if isinstance(operand, LogicalOp) and operand.op is op:
            flat.extend(_flatten_logical(op, operand.operands))
        else:
            flat.append(operand)
    return flat


# -- aggregates and global constraints --------------------------------------------------


def _canonical_aggregate(aggregate: AggregateRef) -> str:
    target = aggregate.column if aggregate.column is not None else "*"
    text = f"{aggregate.function.value}({target})"
    if aggregate.filter is not None:
        text += f"[{_canonical_expression(aggregate.filter)}]"
    return text


def _canonical_linear(expression: LinearAggregateExpression) -> str:
    # Merge duplicate aggregates, drop zero coefficients, order by aggregate.
    merged: dict[str, float] = {}
    for coefficient, aggregate in expression.terms:
        key = _canonical_aggregate(aggregate)
        merged[key] = merged.get(key, 0.0) + float(coefficient)
    terms = [
        f"{_canonical_number(coefficient)}*{key}"
        for key, coefficient in sorted(merged.items())
        if coefficient != 0.0
    ]
    if expression.constant:
        terms.append(_canonical_number(expression.constant))
    return " + ".join(terms) if terms else "0"


def _canonical_constraint(constraint: GlobalConstraint) -> str:
    lhs = _canonical_linear(constraint.expression)
    if constraint.sense is ConstraintSenseKeyword.BETWEEN:
        return (
            f"{lhs} BETWEEN {_canonical_number(constraint.lower)} "
            f"AND {_canonical_number(constraint.upper or 0.0)}"
        )
    return f"{lhs} {constraint.sense.value} {_canonical_number(constraint.lower)}"


def _canonical_number(value: float) -> str:
    value = float(value)
    if value == 0.0:
        value = 0.0  # collapse -0.0
    return repr(value)
