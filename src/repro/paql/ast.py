"""Abstract syntax tree for PaQL package queries.

The AST mirrors the language of Section 2.1 of the paper:

* base predicates (WHERE) are ordinary per-tuple boolean expressions and are
  represented with the vectorised expression classes of :mod:`repro.db`,
* global predicates (SUCH THAT) are linear combinations of aggregates over the
  package compared against constants (or against each other, which normalises
  to a single linear combination compared against zero),
* the objective (MINIMIZE / MAXIMIZE) is a linear combination of aggregates.

Aggregates may carry a per-tuple *filter* expression, which models the
sub-query form ``(SELECT COUNT(*) FROM P WHERE P.carbs > 0)`` from the paper;
the filter restricts which tuples of the package contribute to the aggregate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.db.aggregates import AggregateFunction
from repro.db.expressions import Expression
from repro.errors import PaQLValidationError


class ConstraintSenseKeyword(enum.Enum):
    """Comparison operators allowed in global predicates."""

    LE = "<="
    GE = ">="
    EQ = "="
    BETWEEN = "BETWEEN"


class ObjectiveDirection(enum.Enum):
    """Objective direction keywords."""

    MINIMIZE = "MINIMIZE"
    MAXIMIZE = "MAXIMIZE"


@dataclass(frozen=True)
class AggregateRef:
    """One aggregate over the package, e.g. ``SUM(P.kcal)`` or ``COUNT(P.*)``.

    Attributes:
        function: COUNT, SUM or AVG (the linear aggregates of the paper).
        column: Target attribute; ``None`` only for COUNT.
        filter: Optional per-tuple predicate restricting which package tuples
            contribute (the sub-query ``WHERE`` form).
    """

    function: AggregateFunction
    column: str | None = None
    filter: Expression | None = None

    def __post_init__(self) -> None:
        if self.function is not AggregateFunction.COUNT and self.column is None:
            raise PaQLValidationError(f"{self.function.value} requires a column")

    @property
    def referenced_columns(self) -> set[str]:
        columns: set[str] = set()
        if self.column is not None:
            columns.add(self.column)
        if self.filter is not None:
            columns |= self.filter.referenced_columns()
        return columns

    def describe(self) -> str:
        target = f"P.{self.column}" if self.column else "P.*"
        text = f"{self.function.value}({target})"
        if self.filter is not None:
            text = f"(SELECT {self.function.value}({'*' if self.column is None else self.column}) FROM P WHERE {self.filter!r})"
        return text


@dataclass
class LinearAggregateExpression:
    """A linear combination ``sum_k coefficient_k * aggregate_k + constant``."""

    terms: list[tuple[float, AggregateRef]] = field(default_factory=list)
    constant: float = 0.0

    def add(self, coefficient: float, aggregate: AggregateRef) -> "LinearAggregateExpression":
        self.terms.append((float(coefficient), aggregate))
        return self

    def negated(self) -> "LinearAggregateExpression":
        return LinearAggregateExpression(
            [(-c, a) for c, a in self.terms], constant=-self.constant
        )

    def plus(self, other: "LinearAggregateExpression") -> "LinearAggregateExpression":
        return LinearAggregateExpression(
            list(self.terms) + list(other.terms), self.constant + other.constant
        )

    def scaled(self, factor: float) -> "LinearAggregateExpression":
        return LinearAggregateExpression(
            [(c * factor, a) for c, a in self.terms], self.constant * factor
        )

    @property
    def referenced_columns(self) -> set[str]:
        columns: set[str] = set()
        for _, aggregate in self.terms:
            columns |= aggregate.referenced_columns
        return columns

    @property
    def is_constant(self) -> bool:
        return not self.terms

    @classmethod
    def of(cls, aggregate: AggregateRef, coefficient: float = 1.0) -> "LinearAggregateExpression":
        return cls([(coefficient, aggregate)])

    @classmethod
    def constant_of(cls, value: float) -> "LinearAggregateExpression":
        return cls([], constant=float(value))


@dataclass
class GlobalConstraint:
    """A global predicate ``expression <sense> bound`` over the package.

    A BETWEEN constraint stores both bounds (``lower`` and ``upper``); the
    other senses store the single bound in ``lower``.
    Constraints are normalised so the right-hand side is a constant: a
    comparison between two aggregate expressions ``f(P) >= g(P)`` becomes
    ``f(P) - g(P) >= 0``.
    """

    expression: LinearAggregateExpression
    sense: ConstraintSenseKeyword
    lower: float
    upper: float | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if self.sense is ConstraintSenseKeyword.BETWEEN:
            if self.upper is None:
                raise PaQLValidationError("BETWEEN constraint requires two bounds")
            if self.lower > self.upper:
                raise PaQLValidationError(
                    f"BETWEEN bounds out of order: {self.lower} > {self.upper}"
                )
        elif self.upper is not None:
            raise PaQLValidationError(f"{self.sense.value} constraint takes a single bound")

    @property
    def referenced_columns(self) -> set[str]:
        return self.expression.referenced_columns

    def describe(self) -> str:
        lhs = _describe_expression(self.expression)
        if self.sense is ConstraintSenseKeyword.BETWEEN:
            return f"{lhs} BETWEEN {_fmt(self.lower)} AND {_fmt(self.upper)}"
        return f"{lhs} {self.sense.value} {_fmt(self.lower)}"


@dataclass
class Objective:
    """The MINIMIZE/MAXIMIZE clause."""

    direction: ObjectiveDirection
    expression: LinearAggregateExpression

    @property
    def referenced_columns(self) -> set[str]:
        return self.expression.referenced_columns

    def describe(self) -> str:
        return f"{self.direction.value} {_describe_expression(self.expression)}"


@dataclass
class PackageQuery:
    """A complete PaQL package query.

    Attributes:
        relation: Name of the input relation in the catalog.
        package_alias: Name given to the package result (``AS P``).
        relation_alias: Alias of the input relation in the FROM clause.
        repeat: Maximum number of *additional* repetitions of a tuple
            (``REPEAT 0`` forbids repetition; ``None`` means unbounded).
        base_predicate: WHERE-clause per-tuple predicate, or ``None``.
        global_constraints: SUCH THAT constraints (conjunctive).
        objective: Optional MINIMIZE/MAXIMIZE clause.
    """

    relation: str
    package_alias: str = "P"
    relation_alias: str = "R"
    repeat: int | None = None
    base_predicate: Expression | None = None
    global_constraints: list[GlobalConstraint] = field(default_factory=list)
    objective: Objective | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if self.repeat is not None and self.repeat < 0:
            raise PaQLValidationError("REPEAT must be non-negative")

    @property
    def referenced_columns(self) -> set[str]:
        """All attribute names the query mentions anywhere."""
        columns: set[str] = set()
        if self.base_predicate is not None:
            columns |= self.base_predicate.referenced_columns()
        for constraint in self.global_constraints:
            columns |= constraint.referenced_columns
        if self.objective is not None:
            columns |= self.objective.referenced_columns
        return columns

    @property
    def numeric_query_columns(self) -> set[str]:
        """Attributes used in global constraints and the objective.

        These are the attributes that matter for partitioning (the paper's
        "query attributes").
        """
        columns: set[str] = set()
        for constraint in self.global_constraints:
            columns |= constraint.referenced_columns
        if self.objective is not None:
            columns |= self.objective.referenced_columns
        return columns

    @property
    def max_multiplicity(self) -> int | None:
        """Maximum allowed multiplicity per tuple (``None`` = unbounded)."""
        return None if self.repeat is None else self.repeat + 1

    def with_constraints(self, extra: Iterable[GlobalConstraint]) -> "PackageQuery":
        """Return a copy of the query with additional global constraints."""
        return PackageQuery(
            relation=self.relation,
            package_alias=self.package_alias,
            relation_alias=self.relation_alias,
            repeat=self.repeat,
            base_predicate=self.base_predicate,
            global_constraints=list(self.global_constraints) + list(extra),
            objective=self.objective,
            name=self.name,
        )

    def describe(self) -> str:
        parts = [f"PackageQuery over {self.relation}"]
        if self.repeat is not None:
            parts.append(f"REPEAT {self.repeat}")
        parts.extend(c.describe() for c in self.global_constraints)
        if self.objective is not None:
            parts.append(self.objective.describe())
        return "; ".join(parts)


def _describe_expression(expression: LinearAggregateExpression) -> str:
    chunks = []
    for coefficient, aggregate in expression.terms:
        prefix = "" if coefficient == 1.0 else f"{_fmt(coefficient)}*"
        chunks.append(f"{prefix}{aggregate.describe()}")
    if expression.constant:
        chunks.append(_fmt(expression.constant))
    return " + ".join(chunks) if chunks else "0"


def _fmt(value: float | None) -> str:
    if value is None:
        return "?"
    if value == int(value):
        return str(int(value))
    return f"{value:g}"
