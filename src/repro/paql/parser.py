"""Recursive-descent parser for PaQL.

Implements the grammar of Appendix A.4 of the paper:

.. code-block:: text

    SELECT PACKAGE(rel_alias) [AS] package_name
    FROM rel_name [AS] rel_alias [REPEAT repeat]
    [ WHERE w_condition ]
    [ SUCH THAT st_condition ]
    [ (MINIMIZE | MAXIMIZE) objective ]

``w_condition`` is an ordinary per-tuple boolean expression; ``st_condition``
is a conjunction of global constraints over package aggregates, where each
aggregate is written either as ``SUM(P.attr)`` / ``COUNT(P.*)`` / ``AVG(P.attr)``
or as the sub-query form ``(SELECT COUNT(*) FROM P WHERE <condition>)``.

Comparisons between two aggregate expressions are normalised so the constant
ends up on the right-hand side (e.g. ``f(P) >= g(P)`` becomes
``f(P) - g(P) >= 0``), matching the translation rules of Section 3.1.
"""

from __future__ import annotations

from repro.db.aggregates import AggregateFunction
from repro.db.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOperator,
    Expression,
    Literal,
    LogicalOp,
    LogicalOperator,
    Not,
)
from repro.errors import PaQLSyntaxError
from repro.paql.ast import (
    AggregateRef,
    ConstraintSenseKeyword,
    GlobalConstraint,
    LinearAggregateExpression,
    Objective,
    ObjectiveDirection,
    PackageQuery,
)
from repro.paql.lexer import Token, TokenType, tokenize

_COMPARISON_OPERATORS = {
    "=": ComparisonOperator.EQ,
    "<>": ComparisonOperator.NE,
    "<": ComparisonOperator.LT,
    "<=": ComparisonOperator.LE,
    ">": ComparisonOperator.GT,
    ">=": ComparisonOperator.GE,
}

_GLOBAL_SENSES = {
    "=": ConstraintSenseKeyword.EQ,
    "<=": ConstraintSenseKeyword.LE,
    ">=": ConstraintSenseKeyword.GE,
    # Strict inequalities are accepted and treated as their non-strict
    # counterparts (the paper's formal language only uses <= and >=).
    "<": ConstraintSenseKeyword.LE,
    ">": ConstraintSenseKeyword.GE,
}


def parse_paql(text: str) -> PackageQuery:
    """Parse PaQL text into a :class:`~repro.paql.ast.PackageQuery`."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0
        self._package_alias = "P"
        self._relation_alias = "R"

    # -- token plumbing ------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        self._position += 1
        return token

    def _check_keyword(self, keyword: str) -> bool:
        return self._current.matches_keyword(keyword)

    def _accept_keyword(self, keyword: str) -> bool:
        if self._check_keyword(keyword):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> Token:
        if not self._check_keyword(keyword):
            raise self._error(f"expected keyword {keyword}")
        return self._advance()

    def _expect(self, token_type: TokenType) -> Token:
        if self._current.type is not token_type:
            raise self._error(f"expected {token_type.value}")
        return self._advance()

    def _error(self, message: str) -> PaQLSyntaxError:
        token = self._current
        found = token.value or "end of input"
        return PaQLSyntaxError(f"{message}, found {found!r}", token.line, token.column)

    # -- top level -------------------------------------------------------------------

    def parse_query(self) -> PackageQuery:
        self._expect_keyword("SELECT")
        self._expect_keyword("PACKAGE")
        self._expect(TokenType.LPAREN)
        self._relation_alias = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.RPAREN)
        package_alias = "P"
        if self._accept_keyword("AS"):
            package_alias = self._expect(TokenType.IDENTIFIER).value
        elif self._current.type is TokenType.IDENTIFIER:
            package_alias = self._advance().value
        self._package_alias = package_alias

        self._expect_keyword("FROM")
        relation = self._expect(TokenType.IDENTIFIER).value
        relation_alias = self._relation_alias
        if self._accept_keyword("AS"):
            relation_alias = self._expect(TokenType.IDENTIFIER).value
        elif self._current.type is TokenType.IDENTIFIER:
            relation_alias = self._advance().value
        self._relation_alias = relation_alias

        repeat: int | None = None
        if self._accept_keyword("REPEAT"):
            token = self._expect(TokenType.NUMBER)
            repeat = int(float(token.value))

        base_predicate: Expression | None = None
        if self._accept_keyword("WHERE"):
            base_predicate = self._parse_boolean_expression()

        constraints: list[GlobalConstraint] = []
        if self._accept_keyword("SUCH"):
            self._expect_keyword("THAT")
            constraints = self._parse_constraint_list()

        objective: Objective | None = None
        if self._check_keyword("MINIMIZE") or self._check_keyword("MAXIMIZE"):
            direction = (
                ObjectiveDirection.MINIMIZE
                if self._advance().value == "MINIMIZE"
                else ObjectiveDirection.MAXIMIZE
            )
            expression = self._parse_aggregate_expression()
            objective = Objective(direction, expression)

        if self._current.type is not TokenType.END:
            raise self._error("unexpected trailing input")

        return PackageQuery(
            relation=relation,
            package_alias=package_alias,
            relation_alias=relation_alias,
            repeat=repeat,
            base_predicate=base_predicate,
            global_constraints=constraints,
            objective=objective,
        )

    # -- WHERE clause (per-tuple boolean expressions) -----------------------------------

    def _parse_boolean_expression(self) -> Expression:
        left = self._parse_boolean_term()
        while self._check_keyword("OR"):
            self._advance()
            right = self._parse_boolean_term()
            left = LogicalOp(LogicalOperator.OR, [left, right])
        return left

    def _parse_boolean_term(self) -> Expression:
        left = self._parse_boolean_factor()
        while self._check_keyword("AND"):
            self._advance()
            right = self._parse_boolean_factor()
            left = LogicalOp(LogicalOperator.AND, [left, right])
        return left

    def _parse_boolean_factor(self) -> Expression:
        if self._accept_keyword("NOT"):
            return Not(self._parse_boolean_factor())
        if self._current.type is TokenType.LPAREN and self._looks_like_boolean_group():
            self._advance()
            expression = self._parse_boolean_expression()
            self._expect(TokenType.RPAREN)
            return expression
        return self._parse_comparison()

    def _looks_like_boolean_group(self) -> bool:
        """Distinguish ``(a = 1 OR b = 2)`` from an arithmetic group ``(a + b) > 1``.

        Scan forward to the matching close paren: if a comparison operator or
        BETWEEN/IN occurs inside, it is a boolean group.
        """
        depth = 0
        for index in range(self._position, len(self._tokens)):
            token = self._tokens[index]
            if token.type is TokenType.LPAREN:
                depth += 1
            elif token.type is TokenType.RPAREN:
                depth -= 1
                if depth == 0:
                    return False
            elif depth == 1 and (
                token.type is TokenType.OPERATOR
                or token.matches_keyword("BETWEEN")
                or token.matches_keyword("IN")
            ):
                return True
        return False

    def _parse_comparison(self) -> Expression:
        left = self._parse_arithmetic()
        if self._accept_keyword("BETWEEN"):
            low = self._parse_arithmetic()
            self._expect_keyword("AND")
            high = self._parse_arithmetic()
            return LogicalOp(
                LogicalOperator.AND,
                [
                    Comparison(left, ComparisonOperator.GE, low),
                    Comparison(left, ComparisonOperator.LE, high),
                ],
            )
        if self._accept_keyword("IN"):
            self._expect(TokenType.LPAREN)
            values = [self._parse_literal_value()]
            while self._current.type is TokenType.COMMA:
                self._advance()
                values.append(self._parse_literal_value())
            self._expect(TokenType.RPAREN)
            return left.isin(values)
        if self._current.type is TokenType.OPERATOR:
            operator = _COMPARISON_OPERATORS[self._advance().value]
            right = self._parse_arithmetic()
            return Comparison(left, operator, right)
        raise self._error("expected a comparison operator")

    def _parse_literal_value(self) -> object:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return float(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        raise self._error("expected a literal value")

    def _parse_arithmetic(self) -> Expression:
        left = self._parse_term()
        while self._current.type is TokenType.ARITHMETIC and self._current.value in "+-":
            operator = self._advance().value
            right = self._parse_term()
            left = left + right if operator == "+" else left - right
        return left

    def _parse_term(self) -> Expression:
        left = self._parse_unary()
        while (
            self._current.type is TokenType.STAR
            or (self._current.type is TokenType.ARITHMETIC and self._current.value == "/")
        ):
            operator = self._advance().value
            right = self._parse_unary()
            left = left * right if operator == "*" else left / right
        return left

    def _parse_unary(self) -> Expression:
        if self._current.type is TokenType.ARITHMETIC and self._current.value == "-":
            self._advance()
            return -self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.LPAREN:
            self._advance()
            expression = self._parse_arithmetic()
            self._expect(TokenType.RPAREN)
            return expression
        if token.type is TokenType.IDENTIFIER:
            return ColumnRef(self._parse_column_name())
        raise self._error("expected an expression")

    def _parse_column_name(self) -> str:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._current.type is TokenType.DOT:
            self._advance()
            if self._current.type is TokenType.STAR:
                raise self._error("'*' is only valid inside COUNT()")
            second = self._expect(TokenType.IDENTIFIER).value
            # Qualified reference: alias.column — the alias is dropped because
            # package queries operate over a single relation.
            return second
        return first

    # -- SUCH THAT clause (global constraints) -------------------------------------------

    def _parse_constraint_list(self) -> list[GlobalConstraint]:
        constraints = [self._parse_constraint()]
        while self._check_keyword("AND"):
            self._advance()
            constraints.append(self._parse_constraint())
        if self._check_keyword("OR"):
            raise self._error(
                "disjunctions of global constraints are not supported by the translator"
            )
        return constraints

    def _parse_constraint(self) -> GlobalConstraint:
        left = self._parse_aggregate_expression()
        if self._accept_keyword("BETWEEN"):
            low = self._parse_aggregate_expression()
            self._expect_keyword("AND")
            high = self._parse_aggregate_expression()
            if not low.is_constant or not high.is_constant:
                raise self._error("BETWEEN bounds must be constants")
            return GlobalConstraint(
                expression=LinearAggregateExpression(list(left.terms)),
                sense=ConstraintSenseKeyword.BETWEEN,
                lower=low.constant - left.constant,
                upper=high.constant - left.constant,
            )
        if self._current.type is not TokenType.OPERATOR:
            raise self._error("expected a comparison in global constraint")
        operator = self._advance().value
        if operator == "<>":
            raise self._error("'<>' is not a valid global-constraint comparison")
        sense = _GLOBAL_SENSES[operator]
        right = self._parse_aggregate_expression()
        difference = left.plus(right.negated())
        return GlobalConstraint(
            expression=LinearAggregateExpression(list(difference.terms)),
            sense=sense,
            lower=-difference.constant,
        )

    def _parse_aggregate_expression(self) -> LinearAggregateExpression:
        expression = self._parse_aggregate_term()
        while self._current.type is TokenType.ARITHMETIC and self._current.value in "+-":
            operator = self._advance().value
            term = self._parse_aggregate_term()
            expression = expression.plus(term if operator == "+" else term.negated())
        return expression

    def _parse_aggregate_term(self) -> LinearAggregateExpression:
        factor = self._parse_aggregate_factor()
        while self._current.type is TokenType.STAR or (
            self._current.type is TokenType.ARITHMETIC and self._current.value == "/"
        ):
            operator = self._advance().value
            other = self._parse_aggregate_factor()
            if operator == "*":
                factor = self._multiply(factor, other)
            else:
                if not other.is_constant or other.constant == 0:
                    raise self._error("can only divide an aggregate by a non-zero constant")
                factor = factor.scaled(1.0 / other.constant)
        return factor

    def _multiply(
        self, left: LinearAggregateExpression, right: LinearAggregateExpression
    ) -> LinearAggregateExpression:
        if left.is_constant:
            return right.scaled(left.constant)
        if right.is_constant:
            return left.scaled(right.constant)
        raise self._error("products of aggregates are non-linear and not supported")

    def _parse_aggregate_factor(self) -> LinearAggregateExpression:
        token = self._current
        if token.type is TokenType.ARITHMETIC and token.value == "-":
            self._advance()
            return self._parse_aggregate_factor().negated()
        if token.type is TokenType.NUMBER:
            self._advance()
            return LinearAggregateExpression.constant_of(float(token.value))
        if token.type is TokenType.KEYWORD and token.value in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            return LinearAggregateExpression.of(self._parse_simple_aggregate())
        if token.type is TokenType.LPAREN:
            if self._is_subquery():
                return LinearAggregateExpression.of(self._parse_subquery_aggregate())
            self._advance()
            expression = self._parse_aggregate_expression()
            self._expect(TokenType.RPAREN)
            return expression
        raise self._error("expected an aggregate or a constant")

    def _is_subquery(self) -> bool:
        next_token = self._tokens[self._position + 1]
        return next_token.matches_keyword("SELECT")

    def _parse_simple_aggregate(self) -> AggregateRef:
        function = AggregateFunction.parse(self._advance().value)
        self._expect(TokenType.LPAREN)
        column: str | None = None
        if self._current.type is TokenType.STAR:
            self._advance()
        else:
            column = self._parse_package_column()
        self._expect(TokenType.RPAREN)
        if function is AggregateFunction.COUNT:
            column = None
        return AggregateRef(function, column)

    def _parse_package_column(self) -> str | None:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._current.type is TokenType.DOT:
            self._advance()
            if self._current.type is TokenType.STAR:
                self._advance()
                return None
            return self._expect(TokenType.IDENTIFIER).value
        return first

    def _parse_subquery_aggregate(self) -> AggregateRef:
        """Parse ``(SELECT <AGG>(target) FROM P [WHERE condition])``."""
        self._expect(TokenType.LPAREN)
        self._expect_keyword("SELECT")
        token = self._current
        if not (token.type is TokenType.KEYWORD and token.value in ("COUNT", "SUM", "AVG")):
            raise self._error("sub-query aggregate must be COUNT, SUM or AVG")
        function = AggregateFunction.parse(self._advance().value)
        self._expect(TokenType.LPAREN)
        column: str | None = None
        if self._current.type is TokenType.STAR:
            self._advance()
        else:
            column = self._parse_package_column()
        self._expect(TokenType.RPAREN)
        self._expect_keyword("FROM")
        self._expect(TokenType.IDENTIFIER)  # The package alias.
        condition: Expression | None = None
        if self._accept_keyword("WHERE"):
            condition = self._parse_boolean_expression()
        self._expect(TokenType.RPAREN)
        if function is AggregateFunction.COUNT:
            column = None
        return AggregateRef(function, column, filter=condition)
