"""The worker-pool execution layer (the parallel solve plane).

A :class:`SolvePool` is a thin, deterministic abstraction over
:class:`concurrent.futures.ProcessPoolExecutor`:

* ``workers <= 1`` is a **serial fallback** — :meth:`SolvePool.map` runs the
  function in-process, in submission order, without ever creating an
  executor.  This is the reference execution every parallel run must match
  bit-for-bit.
* ``workers > 1`` fans the items out over worker processes and returns the
  results **in submission order** regardless of completion order, so callers
  can merge deterministically.  Single-item batches stay in-process: there is
  nothing to overlap and the serial path has no IPC cost.
* a crashed worker (killed process, hard exit) surfaces as a clean
  :class:`~repro.errors.SolverError` instead of a hang, and the broken
  executor is discarded so the pool is usable again afterwards.  Exceptions
  *raised* by the mapped function propagate unchanged.

Coordination stays off the hot path (the PACMAN discipline): tasks are pure
functions of their picklable payloads, workers share nothing, and the only
synchronisation is collecting results.

The default worker count comes from the ``REPRO_WORKERS`` environment
variable (``1`` — serial — when unset), so CI can exercise the parallel plane
across the whole suite by exporting ``REPRO_WORKERS=2``.

Because executors are expensive to create and idle workers are cheap to keep,
pools are usually obtained through :func:`shared_pool`, which memoizes one
:class:`SolvePool` per worker count for the whole process.  Call
:func:`shutdown_shared_pools` to reap them (also registered ``atexit``).

Worker processes are started with the ``fork`` context when the platform
offers it: the fork inherits the loaded ``numpy``/``scipy`` pages instead of
re-importing them, which keeps pool start-up in the low milliseconds.  Tasks
must not rely on any inherited *mutable* global state — the task runner in
:mod:`repro.exec.tasks` reseeds the process-global RNG per task, and the
test-suite asserts task results are independent of it.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar

from repro.errors import SolverError

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable giving the default worker count for a
#: default-constructed :class:`SolvePool` (and thus for the engine).
WORKERS_ENV_VAR = "REPRO_WORKERS"


def default_workers() -> int:
    """The worker count implied by the environment (``1`` = serial)."""
    raw = os.environ.get(WORKERS_ENV_VAR)
    if raw is None or not raw.strip():
        return 1
    try:
        value = int(raw)
    except ValueError as exc:
        raise SolverError(
            f"invalid {WORKERS_ENV_VAR}={raw!r}: expected an integer worker count"
        ) from exc
    return max(1, value)


def _mp_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap start-up, inherits loaded libraries)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class SolvePool:
    """A worker pool with a deterministic serial fallback.

    Args:
        workers: Number of worker processes; ``None`` defers to the
            ``REPRO_WORKERS`` environment variable (default ``1``).  A value
            of ``1`` (or less) never spawns processes.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self._executor: ProcessPoolExecutor | None = None

    # -- introspection ---------------------------------------------------------------

    @property
    def is_parallel(self) -> bool:
        """Whether this pool runs work in worker processes."""
        return self.workers > 1

    # -- execution -------------------------------------------------------------------

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """Apply ``fn`` to every item, returning results in submission order.

        Serial pools (and single-item batches) run in-process.  Parallel
        pools submit every item up front — more tasks than workers simply
        queue inside the executor — and collect results in order, so the
        output is independent of scheduling.  ``fn`` and the items must be
        picklable for the parallel path (module-level functions, array-backed
        payloads).
        """
        items = list(items)
        if not self.is_parallel or len(items) <= 1:
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        futures = [executor.submit(fn, item) for item in items]
        try:
            return [future.result() for future in futures]
        except BrokenExecutor as exc:
            # A worker died (hard exit, OOM kill, ...).  The executor is
            # unusable; discard it so the next map() starts a fresh one.
            self.close()
            raise SolverError(
                f"a solve-pool worker crashed while executing {fn.__name__} "
                f"({self.workers} workers, {len(items)} tasks)"
            ) from exc

    # -- lifecycle -------------------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_mp_context()
            )
        return self._executor

    def close(self) -> None:
        """Shut the executor down (idempotent; the pool stays usable)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "SolvePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._executor is not None else "idle"
        return f"SolvePool(workers={self.workers}, {state})"


#: Process-wide pools, one per worker count.  Evaluators share these so a
#: test-suite (or a service) creating many engines does not leak one executor
#: per engine.
_shared_pools: dict[int, SolvePool] = {}


def shared_pool(workers: int | None = None) -> SolvePool:
    """The process-wide :class:`SolvePool` for ``workers`` (memoized).

    ``None`` resolves through ``REPRO_WORKERS`` first, so the returned pool
    reflects the environment at call time.
    """
    count = default_workers() if workers is None else max(1, int(workers))
    pool = _shared_pools.get(count)
    if pool is None:
        pool = SolvePool(count)
        _shared_pools[count] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Close every memoized shared pool (they respawn lazily on next use)."""
    for pool in _shared_pools.values():
        pool.close()
    _shared_pools.clear()


atexit.register(shutdown_shared_pools)
