"""Picklable solve-task payloads for the worker pool.

A :class:`SolveTask` packages everything one independent ILP solve needs —
the model (whose memoized :class:`~repro.ilp.matrix_form.MatrixForm` and
working-matrix caches are dropped on pickling and rebuilt in the worker), the
solver configuration, and an optional warm-start simplex basis — so it can be
shipped to a worker process and executed by :func:`run_solve_task`.

Determinism is the contract: ``run_solve_task(task)`` is a pure function of
the task payload.  The serial execution path calls exactly this function
in-process, so a parallel run is bit-identical to a serial one by
construction.  Two guards keep it that way:

* the process-global NumPy RNG is reseeded per task (``rng_seed``), so any
  stray RNG-dependent code path sees the same stream regardless of which
  worker — or how warm a worker — executes the task, and
* the task carries its own model/solver copies; form-level memo caches (the
  simplex working matrix, the LP presolve memo) are rebuilt per task and
  never shared across workers.

``solve_seconds`` on the result is measured *inside* the executing process
with a monotonic clock: summing it over tasks gives the true compute time,
which callers report separately from their own (overlapped) wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, TypeGuard

import numpy as np

from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.lp_backend import LpBackend, WarmStart
from repro.ilp.model import IlpModel
from repro.ilp.simplex import SimplexBasis
from repro.ilp.status import Solution, SolveStats, SolverStatus


class SupportsSolve(Protocol):
    """The black-box solver contract a :class:`SolveTask` ships."""

    def solve(self, model: IlpModel) -> Solution: ...


def solver_supports_warm_start(solver: object) -> TypeGuard[BranchAndBoundSolver]:
    """Whether ``solver`` consumes a :class:`WarmStart` basis.

    Mirrors the SKETCHREFINE retry rule: only a SIMPLEX-backend
    :class:`BranchAndBoundSolver` with basis reuse enabled qualifies.
    """
    return (
        isinstance(solver, BranchAndBoundSolver)
        and solver.lp_backend is LpBackend.SIMPLEX
        and solver.warm_start_lp
    )


@dataclass
class SolveTask:
    """One independent ILP solve, ready to ship to a worker.

    Attributes:
        task_id: Caller-chosen identifier (SKETCHREFINE uses the group id);
            results are merged by it, so it must be unique within a batch.
        model: The ILP to solve.  Pickling drops its matrix-form memo caches;
            the worker rebuilds them (cheap for refine-sized models).
        solver: Solver to run (``None`` → a default
            :class:`BranchAndBoundSolver`).  Must be picklable for parallel
            execution; :class:`BranchAndBoundSolver` is.
        warm_basis: Optional simplex basis seeding the root LP relaxation.
            Attach only when the solver supports it (see
            :func:`solver_supports_warm_start`) so serial and parallel runs
            issue identical solve calls.
        rng_seed: Per-task seed for the process-global NumPy RNG; ``None``
            skips reseeding.  The bundled solvers are RNG-free — this is a
            determinism guard, not a requirement.
    """

    task_id: int
    model: IlpModel
    solver: SupportsSolve | None = None
    warm_basis: SimplexBasis | None = None
    rng_seed: int | None = 0


@dataclass
class SolveTaskResult:
    """Outcome of one :class:`SolveTask`, picklable for the trip back.

    Only plain data crosses the process boundary: status, values, objective,
    the exported root basis (for warm-starting a retry of the same task), the
    solver statistics, and the solve wall time measured inside the executing
    process.
    """

    task_id: int
    status: SolverStatus
    values: np.ndarray
    objective_value: float
    root_basis: SimplexBasis | None = None
    stats: SolveStats = field(default_factory=SolveStats)
    solve_seconds: float = 0.0
    warm_started: bool = False

    @property
    def has_solution(self) -> bool:
        return self.status.has_solution


def run_solve_task(task: SolveTask) -> SolveTaskResult:
    """Execute one solve task (in-process or inside a worker).

    This is the single implementation both execution paths share: the serial
    fallback calls it directly, the pool pickles the task to a worker and
    calls it there.  Either way the result is a pure function of the payload.
    """
    if task.rng_seed is not None:
        np.random.seed(task.rng_seed)
    started = time.perf_counter()
    solver = task.solver if task.solver is not None else BranchAndBoundSolver()
    if task.warm_basis is not None and solver_supports_warm_start(solver):
        use_warm = True
        solution = solver.solve(task.model, warm_start=WarmStart(basis=task.warm_basis))
    else:
        use_warm = False
        solution = solver.solve(task.model)
    return SolveTaskResult(
        task_id=task.task_id,
        status=solution.status,
        values=np.asarray(solution.values, dtype=np.float64),
        objective_value=solution.objective_value,
        root_basis=solution.root_basis,
        stats=solution.stats,
        solve_seconds=time.perf_counter() - started,
        warm_started=use_warm,
    )
