"""Parallel solve plane: worker pools and picklable solve tasks.

``SolvePool`` executes batches of independent solve tasks over a process
pool (or serially, bit-identically, when ``workers <= 1``); ``SolveTask`` /
``run_solve_task`` define the picklable unit of work.  SKETCHREFINE's refine
phase, the differential harness and the benchmark seeds all fan out through
this layer.
"""

from repro.exec.pool import (
    WORKERS_ENV_VAR,
    SolvePool,
    default_workers,
    shared_pool,
    shutdown_shared_pools,
)
from repro.exec.tasks import (
    SolveTask,
    SolveTaskResult,
    SupportsSolve,
    run_solve_task,
    solver_supports_warm_start,
)

__all__ = [
    "WORKERS_ENV_VAR",
    "SolvePool",
    "SolveTask",
    "SolveTaskResult",
    "SupportsSolve",
    "default_workers",
    "run_solve_task",
    "shared_pool",
    "shutdown_shared_pools",
    "solver_supports_warm_start",
]
