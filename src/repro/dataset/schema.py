"""Typed schemas for columnar tables.

A :class:`Schema` is an ordered collection of named, typed :class:`Column`
definitions.  Types are deliberately small — integers, floats and strings —
because that is all the paper's datasets (SDSS Galaxy, TPC-H) require, and all
numeric package-query machinery operates on floats.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ColumnNotFoundError, SchemaError


class DataType(enum.Enum):
    """Supported column data types."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype:
        """NumPy dtype used for storing a column of this type."""
        if self is DataType.INT:
            return np.dtype(np.int64)
        if self is DataType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(object)

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type participate in arithmetic."""
        return self in (DataType.INT, DataType.FLOAT)

    @classmethod
    def infer(cls, values: Iterable[object]) -> "DataType":
        """Infer the narrowest type able to hold every value in ``values``.

        Empty input defaults to ``FLOAT`` since numeric columns are by far the
        most common in package queries.
        """
        seen_float = False
        seen_any = False
        for value in values:
            seen_any = True
            if value is None:
                seen_float = True
                continue
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, np.integer)):
                continue
            if isinstance(value, (float, np.floating)):
                seen_float = True
                continue
            return cls.STRING
        if not seen_any:
            return cls.FLOAT
        return cls.FLOAT if seen_float else cls.INT


@dataclass(frozen=True)
class Column:
    """A named, typed column definition.

    Attributes:
        name: Column name; must be a non-empty identifier-like string.
        dtype: The column's :class:`DataType`.
        nullable: Whether the column may contain NULLs (NaN for floats,
            ``None`` for strings).  Integer columns cannot be nullable.
    """

    name: str
    dtype: DataType = DataType.FLOAT
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.nullable and self.dtype is DataType.INT:
            raise SchemaError(
                f"column {self.name!r}: integer columns cannot be nullable; use FLOAT"
            )

    @property
    def is_numeric(self) -> bool:
        return self.dtype.is_numeric


class Schema:
    """An ordered, immutable collection of :class:`Column` definitions."""

    __slots__ = ("_columns", "_by_name")

    def __init__(self, columns: Iterable[Column]):
        cols = tuple(columns)
        if not cols:
            raise SchemaError("a schema must contain at least one column")
        by_name: dict[str, Column] = {}
        for col in cols:
            if not isinstance(col, Column):
                raise SchemaError(f"expected Column, got {type(col).__name__}")
            if col.name in by_name:
                raise SchemaError(f"duplicate column name: {col.name!r}")
            by_name[col.name] = col
        self._columns = cols
        self._by_name = by_name

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(cls, **dtypes: DataType | str) -> "Schema":
        """Build a schema from keyword arguments, e.g. ``Schema.of(a="float")``."""
        columns = []
        for name, dtype in dtypes.items():
            if isinstance(dtype, str):
                dtype = DataType(dtype)
            columns.append(Column(name, dtype))
        return cls(columns)

    @classmethod
    def numeric(cls, names: Iterable[str]) -> "Schema":
        """Build an all-float schema from column names."""
        return cls(Column(name, DataType.FLOAT) for name in names)

    # -- lookup ---------------------------------------------------------------

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self._columns)

    @property
    def numeric_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self._columns if col.is_numeric)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.names) from None

    def column(self, name: str) -> Column:
        """Return the column definition for ``name`` or raise."""
        return self[name]

    def index_of(self, name: str) -> int:
        """Return the ordinal position of ``name`` in the schema."""
        for i, col in enumerate(self._columns):
            if col.name == name:
                return i
        raise ColumnNotFoundError(name, self.names)

    def require(self, names: Iterable[str]) -> None:
        """Raise if any of ``names`` is missing from the schema."""
        for name in names:
            if name not in self:
                raise ColumnNotFoundError(name, self.names)

    def require_numeric(self, names: Iterable[str]) -> None:
        """Raise if any of ``names`` is missing or non-numeric."""
        for name in names:
            col = self[name]
            if not col.is_numeric:
                raise SchemaError(f"column {name!r} is not numeric (type {col.dtype.value})")

    # -- derivation -----------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a new schema containing only ``names`` (in the given order)."""
        return Schema(self[name] for name in names)

    def with_column(self, column: Column) -> "Schema":
        """Return a new schema with ``column`` appended."""
        return Schema(self._columns + (column,))

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a new schema with columns renamed according to ``mapping``."""
        self.require(mapping)
        return Schema(
            Column(mapping.get(col.name, col.name), col.dtype, col.nullable)
            for col in self._columns
        )

    # -- equality / repr ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self._columns)
        return f"Schema({cols})"
