"""Columnar in-memory tables backed by NumPy arrays.

A :class:`Table` is the universal data container of the library: workload
generators produce tables, the relational operators consume and return tables,
the PaQL engine evaluates package queries over a table, and packages can be
materialised back into tables.

Tables are immutable by convention: every operation returns a new ``Table``
that shares column arrays where possible (NumPy fancy indexing copies, simple
projections do not).

Base relations registered in a catalog additionally carry a *version* number.
Updates never mutate a table in place: :meth:`Table.append_rows` and
:meth:`Table.delete_rows` return a new table at ``version + 1`` together with
a :class:`TableDelta` describing exactly what changed (the inserted row block
and the deleted-row mask), so downstream structures — partitionings, caches —
can be maintained incrementally instead of rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.dataset.schema import Column, DataType, Schema
from repro.errors import ColumnNotFoundError, TableError

_NULL_SENTINEL = None


@dataclass(frozen=True)
class TableDelta:
    """One versioned change to a table: a block of inserts plus a delete mask.

    The new relation is defined as the surviving base rows (those where
    ``deleted_mask`` is False, in their original order) followed by the rows
    of ``inserted``.  A delta is anchored to the version it was derived from,
    so applying it to any other version is an error.

    Consecutive deltas compose: :meth:`merge` coalesces this delta with the
    next one into a single equivalent delta whose ``spans`` records how many
    version bumps it covers, so downstream consumers (caches, batched
    maintenance) can absorb an update burst with one row remap instead of one
    per update.
    """

    base_version: int
    inserted: "Table"
    deleted_mask: np.ndarray = field(repr=False)
    spans: int = 1

    def __post_init__(self):
        mask = np.asarray(self.deleted_mask)
        if mask.dtype != bool:
            # An integer 0/1 array would silently flip semantics downstream
            # (bitwise-NOT and fancy indexing instead of masking).
            raise TableError(
                f"deleted_mask must be a boolean array, got dtype {mask.dtype}"
            )
        object.__setattr__(self, "deleted_mask", mask)

    @property
    def new_version(self) -> int:
        return self.base_version + self.spans

    @property
    def num_inserted(self) -> int:
        return self.inserted.num_rows

    @property
    def num_deleted(self) -> int:
        return int(np.count_nonzero(self.deleted_mask))

    def surviving_rows(self) -> np.ndarray:
        """Base-table row indices that survive the delta, in order."""
        return np.nonzero(~self.deleted_mask)[0]

    def row_remap(self) -> np.ndarray:
        """Map old row index → new row index (−1 for deleted rows).

        Inserted rows occupy the tail of the new table:
        ``[num_survivors, num_survivors + num_inserted)``.
        """
        remap = np.full(len(self.deleted_mask), -1, dtype=np.int64)
        survivors = self.surviving_rows()
        remap[survivors] = np.arange(len(survivors), dtype=np.int64)
        return remap

    def merge(self, later: "TableDelta") -> "TableDelta":
        """Coalesce this delta with the one that followed it.

        ``later`` must be anchored to this delta's :attr:`new_version`.  The
        merged delta maps the original base version directly to ``later``'s
        new version (``spans`` adds up), and applying it yields exactly the
        same table as applying the two deltas in sequence: base rows deleted
        by either delta are deleted, rows this delta inserted that ``later``
        deleted again never appear, and the surviving inserts keep their
        order (this delta's survivors, then ``later``'s inserts).
        """
        if later.base_version != self.new_version:
            raise TableError(
                f"cannot merge: later delta targets version {later.base_version}, "
                f"this delta produces version {self.new_version}"
            )
        num_survivors = len(self.deleted_mask) - self.num_deleted
        expected = num_survivors + self.num_inserted
        if later.deleted_mask.shape != (expected,):
            raise TableError(
                f"later delta's delete mask has shape {later.deleted_mask.shape}, "
                f"expected ({expected},)"
            )
        # Base rows: deleted by this delta, or survived it and were deleted by
        # ``later`` (whose mask head covers the survivors in base order).
        merged_mask = self.deleted_mask.copy()
        merged_mask[self.surviving_rows()] |= later.deleted_mask[:num_survivors]
        # Inserted rows: this delta's inserts that survive ``later``'s mask
        # tail, then ``later``'s own inserts.
        surviving_inserts = self.inserted.filter(~later.deleted_mask[num_survivors:])
        inserted = (
            surviving_inserts.concat(later.inserted)
            if later.num_inserted
            else surviving_inserts
        )
        return TableDelta(
            base_version=self.base_version,
            inserted=inserted,
            deleted_mask=merged_mask,
            spans=self.spans + later.spans,
        )

    def __repr__(self) -> str:
        spans = f", spans={self.spans}" if self.spans != 1 else ""
        return (
            f"TableDelta(base_version={self.base_version}, "
            f"inserted={self.num_inserted}, deleted={self.num_deleted}{spans})"
        )


class Table:
    """An immutable, columnar relation.

    Args:
        schema: The table schema.
        columns: Mapping from column name to a 1-D array (or sequence) of
            values.  All columns must have the same length and the mapping
            must cover exactly the schema's columns.
        name: Optional relation name, used in error messages and the catalog.
        version: Version number of this snapshot of the relation.  Freshly
            built tables are version 0; :meth:`append_rows` /
            :meth:`delete_rows` / :meth:`apply_delta` bump it by one.
    """

    __slots__ = ("_schema", "_columns", "name", "version")

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, Sequence | np.ndarray],
        name: str = "table",
        version: int = 0,
    ):
        missing = [c for c in schema.names if c not in columns]
        extra = [c for c in columns if c not in schema]
        if missing:
            raise TableError(f"missing data for columns: {missing}")
        if extra:
            raise TableError(f"data provided for unknown columns: {extra}")

        arrays: dict[str, np.ndarray] = {}
        length: int | None = None
        for col in schema:
            raw = columns[col.name]
            array = _coerce_column(raw, col)
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise TableError(
                    f"column {col.name!r} has length {len(array)}, expected {length}"
                )
            arrays[col.name] = array
        self._schema = schema
        self._columns = arrays
        self.name = name
        self.version = int(version)

    # -- construction ---------------------------------------------------------

    @classmethod
    def _from_arrays(
        cls,
        schema: Schema,
        arrays: dict[str, np.ndarray],
        name: str,
        version: int,
    ) -> "Table":
        """Fast internal constructor for arrays already in canonical form.

        Skips per-column coercion/validation; callers must pass arrays that
        came out of an existing table with the same schema.
        """
        table = cls.__new__(cls)
        table._schema = schema
        table._columns = arrays
        table.name = name
        table.version = int(version)
        return table

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Sequence | Mapping[str, object]],
        name: str = "table",
    ) -> "Table":
        """Build a table from an iterable of row tuples or row dicts."""
        rows = list(rows)
        columns: dict[str, list] = {c: [] for c in schema.names}
        for row in rows:
            if isinstance(row, Mapping):
                for col in schema.names:
                    columns[col].append(row.get(col))
            else:
                if len(row) != len(schema):
                    raise TableError(
                        f"row has {len(row)} values, schema has {len(schema)} columns"
                    )
                for col, value in zip(schema.names, row):
                    columns[col].append(value)
        return cls(schema, columns, name=name)

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence], name: str = "table") -> "Table":
        """Build a table from a column-name → values mapping, inferring types."""
        columns = []
        for col_name, values in data.items():
            dtype = DataType.infer(values)
            nullable = dtype is DataType.STRING or any(
                v is None or (isinstance(v, float) and np.isnan(v)) for v in values
            )
            if nullable and dtype is DataType.INT:
                dtype = DataType.FLOAT
            columns.append(Column(col_name, dtype, nullable=nullable and dtype is not DataType.INT))
        schema = Schema(columns)
        return cls(schema, data, name=name)

    @classmethod
    def empty(cls, schema: Schema, name: str = "table") -> "Table":
        """Build an empty table with the given schema."""
        return cls(schema, {c: [] for c in schema.names}, name=name)

    # -- basic accessors -------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return len(next(iter(self._columns.values()))) if self._columns else 0

    @property
    def num_columns(self) -> int:
        return len(self._schema)

    def __len__(self) -> int:
        return self.num_rows

    def __bool__(self) -> bool:
        # A table is truthy even when empty; emptiness is a row-count question.
        return True

    def column(self, name: str) -> np.ndarray:
        """Return the raw column array for ``name`` (do not mutate it)."""
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnNotFoundError(name, self._schema.names) from None

    def numeric_column(self, name: str) -> np.ndarray:
        """Return column ``name`` as a float64 array, validating it is numeric."""
        self._schema.require_numeric([name])
        return np.asarray(self.column(name), dtype=np.float64)

    def numeric_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Return an ``(num_rows, len(names))`` float64 matrix of the columns."""
        self._schema.require_numeric(names)
        if not names:
            return np.empty((self.num_rows, 0), dtype=np.float64)
        return np.column_stack([self.numeric_column(n) for n in names])

    def row(self, index: int) -> dict[str, object]:
        """Return row ``index`` as a plain dict."""
        if not 0 <= index < self.num_rows:
            raise TableError(f"row index {index} out of range [0, {self.num_rows})")
        return {name: _to_python(self._columns[name][index]) for name in self._schema.names}

    def rows(self) -> Iterator[dict[str, object]]:
        """Iterate over rows as dicts (slow path, intended for small results)."""
        for i in range(self.num_rows):
            yield self.row(i)

    def to_dict(self) -> dict[str, list]:
        """Return the table contents as a column-name → list-of-values dict."""
        return {name: [_to_python(v) for v in self._columns[name]] for name in self._schema.names}

    # -- derivation -------------------------------------------------------------

    def take(self, indices: Sequence[int] | np.ndarray, name: str | None = None) -> "Table":
        """Return a new table containing the given row indices (with repeats)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_rows):
            raise TableError("row index out of range in take()")
        data = {c: self._columns[c][idx] for c in self._schema.names}
        return Table(self._schema, data, name=name or self.name)

    def filter(self, mask: np.ndarray, name: str | None = None) -> "Table":
        """Return a new table with rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_rows,):
            raise TableError(
                f"mask has shape {mask.shape}, expected ({self.num_rows},)"
            )
        data = {c: self._columns[c][mask] for c in self._schema.names}
        return Table(self._schema, data, name=name or self.name)

    def select_columns(self, names: Sequence[str], name: str | None = None) -> "Table":
        """Return a new table with only the given columns."""
        schema = self._schema.project(names)
        data = {c: self._columns[c] for c in names}
        return Table(schema, data, name=name or self.name)

    def with_column(
        self, column: Column, values: Sequence | np.ndarray, name: str | None = None
    ) -> "Table":
        """Return a new table with an extra column appended."""
        schema = self._schema.with_column(column)
        data = dict(self._columns)
        data[column.name] = values
        return Table(schema, data, name=name or self.name)

    def replace_column(self, column_name: str, values: Sequence | np.ndarray) -> "Table":
        """Return a new table with one column's values replaced."""
        self._schema.require([column_name])
        data = dict(self._columns)
        data[column_name] = values
        return Table(self._schema, data, name=self.name)

    def rename(self, mapping: dict[str, str], name: str | None = None) -> "Table":
        """Return a new table with columns renamed."""
        schema = self._schema.rename(mapping)
        data = {mapping.get(c, c): self._columns[c] for c in self._schema.names}
        return Table(schema, data, name=name or self.name)

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self.num_rows)))

    def sample(self, n: int, seed: int | None = None, replace: bool = False) -> "Table":
        """Return a uniform random sample of ``n`` rows."""
        rng = np.random.default_rng(seed)
        if not replace and n > self.num_rows:
            raise TableError(f"cannot sample {n} rows without replacement from {self.num_rows}")
        idx = rng.choice(self.num_rows, size=n, replace=replace)
        return self.take(idx)

    def concat(self, other: "Table", name: str | None = None) -> "Table":
        """Return the row-wise concatenation of this table with ``other``."""
        if other.schema != self._schema:
            raise TableError("cannot concat tables with different schemas")
        data = {
            c: np.concatenate([self._columns[c], other._columns[c]])
            for c in self._schema.names
        }
        return Table(self._schema, data, name=name or self.name)

    # -- versioned updates ------------------------------------------------------

    def append_rows(
        self, rows: "Table" | Iterable[Sequence | Mapping[str, object]]
    ) -> tuple["Table", TableDelta]:
        """Append rows, returning the next version and the delta that made it.

        ``rows`` may be another table with the same schema or an iterable of
        row tuples/dicts.  The base table is untouched; unchanged data is
        carried over without re-coercion or validation.
        """
        inserted = self._as_row_block(rows)
        delta = TableDelta(
            base_version=self.version,
            inserted=inserted,
            deleted_mask=np.zeros(self.num_rows, dtype=bool),
        )
        return self.apply_delta(delta), delta

    def delete_rows(self, rows: np.ndarray | Sequence[int]) -> tuple["Table", TableDelta]:
        """Delete rows (boolean mask or index array), returning ``(table, delta)``."""
        mask = self._as_delete_mask(rows)
        delta = TableDelta(
            base_version=self.version,
            inserted=Table.empty(self._schema, name=self.name),
            deleted_mask=mask,
        )
        return self.apply_delta(delta), delta

    def make_delta(
        self,
        insert: "Table" | Iterable[Sequence | Mapping[str, object]] | None = None,
        delete: np.ndarray | Sequence[int] | None = None,
    ) -> TableDelta:
        """Describe a combined insert + delete change without applying it."""
        inserted = (
            self._as_row_block(insert)
            if insert is not None
            else Table.empty(self._schema, name=self.name)
        )
        mask = (
            self._as_delete_mask(delete)
            if delete is not None
            else np.zeros(self.num_rows, dtype=bool)
        )
        return TableDelta(self.version, inserted, mask)

    def update_rows(
        self,
        insert: "Table" | Iterable[Sequence | Mapping[str, object]] | None = None,
        delete: np.ndarray | Sequence[int] | None = None,
    ) -> tuple["Table", TableDelta]:
        """Apply one combined insert + delete change as a single version bump."""
        delta = self.make_delta(insert=insert, delete=delete)
        return self.apply_delta(delta), delta

    def apply_delta(self, delta: TableDelta) -> "Table":
        """Return the table at ``delta.new_version``: survivors then inserts.

        A merged delta (``spans > 1``) advances the version by its full span,
        landing on exactly the version the unmerged sequence would have.
        """
        if delta.base_version != self.version:
            raise TableError(
                f"delta targets version {delta.base_version}, table is at {self.version}"
            )
        if delta.deleted_mask.shape != (self.num_rows,):
            raise TableError(
                f"delete mask has shape {delta.deleted_mask.shape}, "
                f"expected ({self.num_rows},)"
            )
        if delta.inserted.schema != self._schema:
            raise TableError("inserted rows do not match the table schema")
        keep = ~delta.deleted_mask
        keep_all = bool(keep.all())
        arrays: dict[str, np.ndarray] = {}
        for col in self._schema.names:
            base = self._columns[col]
            survivors = base if keep_all else base[keep]
            if delta.num_inserted:
                arrays[col] = np.concatenate([survivors, delta.inserted._columns[col]])
            else:
                arrays[col] = survivors
        return Table._from_arrays(self._schema, arrays, self.name, delta.new_version)

    def _as_row_block(
        self, rows: "Table" | Iterable[Sequence | Mapping[str, object]]
    ) -> "Table":
        if isinstance(rows, Table):
            if rows.schema != self._schema:
                raise TableError("appended table does not match the base schema")
            return rows
        return Table.from_rows(self._schema, rows, name=self.name)

    def _as_delete_mask(self, rows: np.ndarray | Sequence[int]) -> np.ndarray:
        array = np.asarray(rows)
        if array.dtype == bool:
            if array.shape != (self.num_rows,):
                raise TableError(
                    f"delete mask has shape {array.shape}, expected ({self.num_rows},)"
                )
            return array.copy()
        if array.size == 0:
            # An empty index list (whatever its dtype) deletes nothing.
            return np.zeros(self.num_rows, dtype=bool)
        if array.dtype.kind not in "iu":
            raise TableError(
                f"delete rows must be a boolean mask or integer indices, "
                f"got dtype {array.dtype}"
            )
        idx = array.astype(np.int64, copy=False)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_rows):
            raise TableError("row index out of range in delete_rows()")
        if len(np.unique(idx)) != len(idx):
            # Deleting an index twice is meaningless — and a repeated-value
            # array is usually a 0/1 mask passed as ints, which would
            # otherwise silently delete the wrong rows.
            raise TableError(
                "duplicate row indices in delete; to delete by mask, pass a "
                "boolean array (dtype=bool)"
            )
        mask = np.zeros(self.num_rows, dtype=bool)
        mask[idx] = True
        return mask

    def drop_nulls(self, names: Sequence[str] | None = None) -> "Table":
        """Return a new table with rows containing NULLs in ``names`` removed.

        NULL means NaN for float columns and ``None`` for string columns.
        """
        names = list(names) if names is not None else list(self._schema.names)
        mask = np.ones(self.num_rows, dtype=bool)
        for col_name in names:
            col = self._schema[col_name]
            values = self._columns[col_name]
            if col.dtype is DataType.FLOAT:
                mask &= ~np.isnan(values)
            elif col.dtype is DataType.STRING:
                mask &= np.array([v is not None for v in values], dtype=bool)
        return self.filter(mask)

    def null_mask(self, column_name: str) -> np.ndarray:
        """Return a boolean mask of NULL positions in the given column."""
        col = self._schema[column_name]
        values = self._columns[column_name]
        if col.dtype is DataType.FLOAT:
            return np.isnan(values)
        if col.dtype is DataType.STRING:
            return np.array([v is None for v in values], dtype=bool)
        return np.zeros(self.num_rows, dtype=bool)

    # -- equality / repr --------------------------------------------------------

    def equals(self, other: "Table") -> bool:
        """Deep equality: same schema and identical cell values."""
        if self._schema != other._schema or self.num_rows != other.num_rows:
            return False
        for col in self._schema:
            a, b = self._columns[col.name], other._columns[col.name]
            if col.dtype is DataType.FLOAT:
                if not np.allclose(a, b, equal_nan=True):
                    return False
            else:
                if not all(x == y for x, y in zip(a, b)):
                    return False
        return True

    def __repr__(self) -> str:
        version = f", version={self.version}" if self.version else ""
        return (
            f"Table(name={self.name!r}, rows={self.num_rows}, "
            f"columns={list(self._schema.names)}{version})"
        )


def _coerce_column(raw: Sequence | np.ndarray, col: Column) -> np.ndarray:
    """Coerce raw values into the NumPy representation for ``col``."""
    if col.dtype is DataType.STRING:
        array = np.empty(len(raw), dtype=object)
        for i, value in enumerate(raw):
            array[i] = None if value is None else str(value)
        return array
    if col.dtype is DataType.FLOAT:
        values = [np.nan if v is None else v for v in raw] if _has_none(raw) else raw
        return np.asarray(values, dtype=np.float64)
    # INT
    try:
        return np.asarray(raw, dtype=np.int64)
    except (TypeError, ValueError) as exc:
        raise TableError(f"column {col.name!r}: cannot coerce values to int64: {exc}") from exc


def _has_none(raw: Sequence | np.ndarray) -> bool:
    if isinstance(raw, np.ndarray) and raw.dtype != object:
        return False
    return any(v is None for v in raw)


def _to_python(value: object) -> object:
    """Convert a NumPy scalar to its closest native Python type."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value
