"""In-memory columnar dataset layer.

This subpackage provides the storage substrate that the paper obtains from
PostgreSQL: typed schemas, columnar tables backed by NumPy arrays, and simple
CSV / NPZ persistence.  Everything above it (the relational operators, the
PaQL engine, the partitioners) works exclusively through these classes.
"""

from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table, TableDelta
from repro.dataset.io import read_csv, write_csv, load_table, save_table

__all__ = [
    "Column",
    "DataType",
    "Schema",
    "Table",
    "TableDelta",
    "read_csv",
    "write_csv",
    "load_table",
    "save_table",
]
