"""CSV and NPZ persistence for :class:`~repro.dataset.table.Table`.

The paper keeps its datasets in PostgreSQL; here datasets live on disk as CSV
(human-readable interchange) or compressed NPZ (fast reload of large generated
workloads and partitionings).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.errors import TableError

_NULL_TOKEN = ""


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        columns = [table.column(name) for name in table.schema.names]
        dtypes = [table.schema[name].dtype for name in table.schema.names]
        for i in range(table.num_rows):
            row = []
            for values, dtype in zip(columns, dtypes):
                value = values[i]
                row.append(_format_value(value, dtype))
            writer.writerow(row)


def read_csv(path: str | Path, schema: Schema | None = None, name: str | None = None) -> Table:
    """Read a CSV file (with header) into a :class:`Table`.

    If ``schema`` is omitted, column types are inferred from the data.
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TableError(f"CSV file {path} is empty") from None
        raw_columns: dict[str, list[str]] = {col: [] for col in header}
        for row in reader:
            if len(row) != len(header):
                raise TableError(
                    f"CSV row has {len(row)} fields, header has {len(header)}"
                )
            for col, value in zip(header, row):
                raw_columns[col].append(value)

    if schema is None:
        schema = _infer_schema(header, raw_columns)
    data = {
        col.name: [_parse_value(v, col.dtype) for v in raw_columns[col.name]]
        for col in schema
    }
    return Table(schema, data, name=name or path.stem)


def save_table(table: Table, path: str | Path) -> None:
    """Persist ``table`` to a compressed ``.npz`` file (fast binary format)."""
    path = Path(path)
    meta = {
        "name": table.name,
        "version": table.version,
        "columns": [
            {"name": c.name, "dtype": c.dtype.value, "nullable": c.nullable}
            for c in table.schema
        ],
    }
    arrays: dict[str, np.ndarray] = {"__meta__": np.array([json.dumps(meta)])}
    for col in table.schema:
        values = table.column(col.name)
        if col.dtype is DataType.STRING:
            # Strings are stored as fixed-width unicode plus an explicit NULL
            # mask (NumPy's unicode arrays cannot represent None directly).
            arrays[f"nullmask_{col.name}"] = np.array([v is None for v in values], dtype=bool)
            values = np.array(["" if v is None else str(v) for v in values])
        arrays[f"col_{col.name}"] = values
    np.savez_compressed(path, **arrays)


def load_table(path: str | Path) -> Table:
    """Load a table previously written with :func:`save_table`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["__meta__"][0]))
        columns = [
            Column(c["name"], DataType(c["dtype"]), c["nullable"]) for c in meta["columns"]
        ]
        schema = Schema(columns)
        data: dict[str, np.ndarray | list] = {}
        for col in columns:
            values = archive[f"col_{col.name}"]
            if col.dtype is DataType.STRING:
                null_mask = archive[f"nullmask_{col.name}"]
                data[col.name] = [
                    None if is_null else str(v) for v, is_null in zip(values, null_mask)
                ]
            else:
                data[col.name] = values
    return Table(schema, data, name=meta["name"], version=meta.get("version", 0))


def _format_value(value: object, dtype: DataType) -> str:
    if dtype is DataType.FLOAT and (value is None or np.isnan(value)):
        return _NULL_TOKEN
    if dtype is DataType.STRING and value is None:
        return _NULL_TOKEN
    if dtype is DataType.FLOAT:
        return repr(float(value))
    if dtype is DataType.INT:
        return str(int(value))
    return str(value)


def _parse_value(text: str, dtype: DataType) -> object:
    if text == _NULL_TOKEN:
        return None
    if dtype is DataType.INT:
        return int(text)
    if dtype is DataType.FLOAT:
        return float(text)
    return text


def _infer_schema(header: list[str], raw_columns: dict[str, list[str]]) -> Schema:
    columns = []
    for name in header:
        values = raw_columns[name]
        dtype = _infer_text_dtype(values)
        nullable = dtype is not DataType.INT and any(v == _NULL_TOKEN for v in values)
        columns.append(Column(name, dtype, nullable))
    return Schema(columns)


def _infer_text_dtype(values: list[str]) -> DataType:
    has_null = False
    has_float = False
    for text in values:
        if text == _NULL_TOKEN:
            has_null = True
            continue
        try:
            int(text)
            continue
        except ValueError:
            pass
        try:
            float(text)
            has_float = True
        except ValueError:
            return DataType.STRING
    if has_float or has_null:
        return DataType.FLOAT
    return DataType.INT
