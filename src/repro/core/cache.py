"""Delta-aware caching of package-query results.

Package queries are expensive to answer but, on an update-heavy workload,
most deltas leave most cached answers untouched.  :class:`PackageCache`
exploits that: it remembers, per *canonical query fingerprint* (see
:mod:`repro.paql.fingerprint`) and table, the package an evaluator produced,
and invalidates it no more aggressively than the update stream requires:

* **DIRECT / NAIVE entries** are exact optima over the whole relation, so any
  version bump invalidates them (one new tuple can change the optimum).
* **SKETCHREFINE entries** are approximate answers whose quality story is
  per-group.  The update stream reports, through
  :class:`~repro.partition.maintenance.MaintenanceStats`, exactly which
  groups each delta touched.  A cached package whose tuples all live in
  *untouched* groups survives: its rows are remapped through the delta and
  the entry is marked for **revalidation** — a cheap
  :func:`~repro.core.validation.check_package` feasibility + objective
  re-check at the next lookup — instead of a re-solve.  If the gid space was
  renumbered (groups retired, re-split or rebuilt), or the partitioning was
  left stale, the entry is dropped conservatively.

Update notifications are **coalesced**: :meth:`notify_update` merges
consecutive :class:`~repro.dataset.table.TableDelta`\\ s per table
(:meth:`TableDelta.merge`) and unions their touched-group sets, so an update
burst costs one O(1) merge per delta and entries pay a single row remap at
the next lookup, not one per update.

The cache is data-structure-only: it never solves anything.  The engine
decides when to consult it (``execute(..., cache="use"|"bypass"|"refresh")``)
and the catalog feeds it deltas (:meth:`repro.db.catalog.Database
.register_cache`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.package import Package
from repro.core.validation import check_package, objective_value
from repro.dataset.table import Table, TableDelta
from repro.errors import CacheError, EvaluationError, TableError
from repro.paql.ast import PackageQuery
from repro.partition.partitioning import Partitioning

#: Cache interaction modes accepted by ``PackageQueryEngine.execute``.
CACHE_MODES = ("use", "bypass", "refresh")


@dataclass
class CacheStats:
    """Cumulative effectiveness counters for one :class:`PackageCache`."""

    hits: int = 0
    """Lookups answered from an entry that needed no re-check."""
    revalidations: int = 0
    """Lookups answered from an entry after a cheap feasibility/objective
    re-check (the delta-missed-my-groups path)."""
    misses: int = 0
    """Lookups that found no usable entry."""
    stores: int = 0
    """Entries written after a solve."""
    invalidations: int = 0
    """Entries dropped by updates, staleness or failed revalidation."""
    evictions: int = 0
    """Entries dropped by the capacity bound (LRU)."""
    saved_solve_seconds: float = 0.0
    """Sum of the recorded solve times of every hit/revalidated lookup — the
    wall time the cache spared the solver."""

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "revalidations": self.revalidations,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "saved_solve_seconds": self.saved_solve_seconds,
        }


@dataclass
class CacheEntry:
    """One cached package-query answer."""

    fingerprint: str
    table_name: str
    method: str
    partitioning_label: str | None
    table_version: int
    partitioning_version: int | None
    multiplicities: dict[int, int]
    groups: frozenset
    """Gids (current partitioning gid space) holding the package's tuples —
    empty for DIRECT/NAIVE entries, which do not reason per group."""
    objective: float
    feasible: bool
    solve_seconds: float
    """What producing this answer cost, credited to ``saved_solve_seconds``
    every time the entry spares a re-solve."""
    needs_revalidation: bool = False


@dataclass
class CacheLookup:
    """Outcome of one :meth:`PackageCache.lookup`."""

    status: str
    """``"hit"``, ``"revalidated"`` or ``"miss"``."""
    package: Package | None = None
    objective: float = float("nan")
    feasible: bool = False
    saved_solve_seconds: float = 0.0

    @property
    def found(self) -> bool:
        return self.status in ("hit", "revalidated")


@dataclass
class _PendingUpdates:
    """Coalesced not-yet-applied update stream for one table."""

    delta: TableDelta | None = None
    touched: dict = field(default_factory=dict)
    """Per partitioning label: union of touched gids since the last flush
    (valid while the label's gid space is stable over the window)."""
    dropped_labels: set = field(default_factory=set)
    """Labels whose entries cannot survive the window (gid space renumbered,
    or the partitioning went/stayed stale)."""


class PackageCache:
    """Query-result cache keyed on (fingerprint, table, method, partitioning).

    Args:
        max_entries: Capacity bound; least-recently-used entries are evicted
            beyond it.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise CacheError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self._pending: dict[str, _PendingUpdates] = {}

    # -- bookkeeping --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and all pending update state (counters persist)."""
        self.stats.invalidations += len(self._entries)
        self._entries.clear()
        self._pending.clear()

    def invalidate_table(self, table_name: str) -> None:
        """Drop every entry for ``table_name`` (e.g. table replaced/dropped)."""
        keys = [k for k, e in self._entries.items() if e.table_name == table_name]
        for key in keys:
            del self._entries[key]
        self.stats.invalidations += len(keys)
        self._pending.pop(table_name, None)

    def stats_snapshot(self) -> dict:
        """The counters as a plain dict (for ``EvaluationResult.details``)."""
        return self.stats.as_dict()

    def entries_snapshot(self) -> list[dict]:
        """A comparable summary of every entry (LRU order, oldest first).

        Used by the crash-recovery and differential suites to assert cache
        *contents* — not just hit/miss counters — across scenarios: two
        caches that went through equivalent histories must summarise
        identically, and an entry surviving a recovery with the wrong
        version anchor shows up here immediately.
        """
        return [
            {
                "fingerprint": entry.fingerprint,
                "table_name": entry.table_name,
                "method": entry.method,
                "partitioning_label": entry.partitioning_label,
                "table_version": entry.table_version,
                "partitioning_version": entry.partitioning_version,
                "multiplicities": dict(entry.multiplicities),
                "groups": entry.groups,
                "objective": entry.objective,
                "feasible": entry.feasible,
                "needs_revalidation": entry.needs_revalidation,
            }
            for entry in self._entries.values()
        ]

    @staticmethod
    def _key(
        fingerprint: str, table_name: str, method: str, label: str | None
    ) -> tuple:
        return (fingerprint, table_name, method, label or "")

    # -- update notifications ------------------------------------------------------------

    def notify_update(
        self,
        table_name: str,
        delta: TableDelta,
        maintained: Mapping[str, object] | None = None,
        stale_labels: list | tuple | set = (),
    ) -> None:
        """Absorb one committed table update into the pending coalesced state.

        ``maintained`` maps partitioning labels to their
        :class:`~repro.partition.maintenance.MaintenanceStats`; labels in
        ``stale_labels`` were left behind by the update.  This is O(delta),
        independent of how many entries the cache holds — entries are only
        walked when the table is next looked up (:meth:`_flush`).
        """
        if not self._has_entries(table_name):
            # Nothing cached for this table: a later store anchors afresh at
            # the then-current version, so don't accumulate deltas.
            self._pending.pop(table_name, None)
            return
        state = self._pending.setdefault(table_name, _PendingUpdates())
        if state.delta is None:
            state.delta = delta
        else:
            try:
                state.delta = state.delta.merge(delta)
            except TableError:
                # The stream skipped versions (table replaced out-of-band);
                # nothing cached can be trusted to remap.
                self.invalidate_table(table_name)
                return
        for label, label_stats in (maintained or {}).items():
            if getattr(label_stats, "groups_renumbered", True):
                state.dropped_labels.add(label)
            elif label not in state.dropped_labels:
                state.touched.setdefault(label, set()).update(
                    getattr(label_stats, "touched_groups", frozenset())
                )
        state.dropped_labels.update(stale_labels)

    def _has_entries(self, table_name: str) -> bool:
        return any(e.table_name == table_name for e in self._entries.values())

    def _flush(self, table_name: str) -> None:
        """Apply the pending coalesced delta to every entry of ``table_name``.

        DIRECT/NAIVE entries are dropped (any version bump changes the ground
        truth they claim to be optimal over).  A SKETCHREFINE entry survives
        iff its partitioning stayed maintained with a stable gid space *and*
        the coalesced delta touched none of the groups its tuples live in; it
        is then remapped to the new row space and marked for revalidation.
        """
        state = self._pending.pop(table_name, None)
        if state is None or state.delta is None:
            return
        remap = state.delta.row_remap()
        new_version = state.delta.new_version
        for key in [k for k, e in self._entries.items() if e.table_name == table_name]:
            entry = self._entries[key]
            survives = (
                entry.method == "sketchrefine"
                and entry.table_version == state.delta.base_version
                and entry.partitioning_label not in state.dropped_labels
                and not (entry.groups & state.touched.get(entry.partitioning_label, set()))
            )
            if survives:
                remapped: dict[int, int] = {}
                for row, multiplicity in entry.multiplicities.items():
                    new_row = int(remap[row]) if 0 <= row < len(remap) else -1
                    if new_row < 0:  # pragma: no cover - untouched groups lose no rows
                        survives = False
                        break
                    remapped[new_row] = multiplicity
                if survives:
                    entry.multiplicities = remapped
                    entry.table_version = new_version
                    entry.partitioning_version = new_version
                    entry.needs_revalidation = True
                    continue
            del self._entries[key]
            self.stats.invalidations += 1

    # -- lookup / store ---------------------------------------------------------------------

    def lookup(
        self,
        query: PackageQuery,
        fingerprint: str,
        table: Table,
        table_name: str,
        method: str,
        partitioning: Partitioning | None = None,
        partitioning_label: str | None = None,
    ) -> CacheLookup:
        """Try to answer ``query`` over the current ``table`` from the cache.

        A pending coalesced delta for the table is applied first.  An entry
        marked for revalidation is re-checked against the query semantics
        (:func:`check_package`) before being served; failing the check drops
        it and reports a miss — a stale answer is never returned.
        """
        self._flush(table_name)
        key = self._key(fingerprint, table_name, method, partitioning_label)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return CacheLookup(status="miss")
        if entry.table_version != table.version or (
            method == "sketchrefine"
            and (partitioning is None or partitioning.version != entry.partitioning_version)
        ):
            # The world moved without a notification we could track.
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return CacheLookup(status="miss")
        try:
            package = Package.from_multiplicity_map(table, entry.multiplicities)
        except EvaluationError:  # pragma: no cover - row-range guard
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return CacheLookup(status="miss")
        if entry.needs_revalidation:
            report = check_package(package, query)
            if not report.feasible:
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return CacheLookup(status="miss")
            entry.objective = objective_value(package, query)
            entry.feasible = True
            entry.needs_revalidation = False
            self._entries.move_to_end(key)
            self.stats.revalidations += 1
            self.stats.saved_solve_seconds += entry.solve_seconds
            return CacheLookup(
                status="revalidated",
                package=package,
                objective=entry.objective,
                feasible=True,
                saved_solve_seconds=entry.solve_seconds,
            )
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self.stats.saved_solve_seconds += entry.solve_seconds
        return CacheLookup(
            status="hit",
            package=package,
            objective=entry.objective,
            feasible=entry.feasible,
            saved_solve_seconds=entry.solve_seconds,
        )

    def store(
        self,
        query: PackageQuery,
        fingerprint: str,
        table: Table,
        table_name: str,
        method: str,
        package: Package,
        objective: float,
        feasible: bool,
        solve_seconds: float,
        partitioning: Partitioning | None = None,
        partitioning_label: str | None = None,
    ) -> CacheEntry:
        """Record a freshly solved answer (overwriting any previous entry)."""
        self._flush(table_name)
        groups: frozenset = frozenset()
        partitioning_version: int | None = None
        if method == "sketchrefine":
            if partitioning is None:
                raise CacheError(
                    "caching a SKETCHREFINE answer requires its partitioning"
                )
            groups = frozenset(partitioning.group_ids[package.indices].tolist())
            partitioning_version = partitioning.version
        key = self._key(fingerprint, table_name, method, partitioning_label)
        entry = CacheEntry(
            fingerprint=fingerprint,
            table_name=table_name,
            method=method,
            partitioning_label=partitioning_label if method == "sketchrefine" else None,
            table_version=table.version,
            partitioning_version=partitioning_version,
            multiplicities=package.as_multiplicity_map(),
            groups=groups,
            objective=float(objective),
            feasible=bool(feasible),
            solve_seconds=float(solve_seconds),
        )
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return entry
