"""PaQL → ILP translation rules (Section 3.1 of the paper).

One integer variable ``x_i`` is created per tuple eligible under the base
predicate, indicating how many times the tuple appears in the answer package.
The translation rules are:

1. **Repetition constraint** — ``REPEAT K`` becomes the variable bound
   ``0 <= x_i <= K + 1``.
2. **Base predicate** — tuples failing the WHERE clause are excluded up front
   (they would be fixed to zero, so their variables are simply not created).
3. **Global predicates** — each ``f(P) ⊙ v`` becomes a linear constraint:
   ``COUNT(P.*)`` contributes coefficient 1 per variable, ``SUM(P.attr)``
   contributes ``t_i.attr``, ``AVG(P.attr) ⊙ v`` is linearised as
   ``Σ (t_i.attr − v)·x_i ⊙ 0``, and filtered aggregates multiply the
   coefficients by the 0/1 indicator of the filter (the paper's indicator
   base relations).  ``BETWEEN`` bounds produce two constraints.
4. **Objective** — MAXIMIZE/MINIMIZE of a linear aggregate expression maps to
   the ILP objective with the same coefficients; a query without an objective
   gets the vacuous objective ``max Σ 0·x_i``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base_relations import BaseRelation, compute_base_relation, indicator_vector
from repro.core.package import Package
from repro.dataset.table import Table
from repro.db.aggregates import AggregateFunction
from repro.errors import TranslationError
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense
from repro.ilp.status import Solution
from repro.paql.ast import (
    AggregateRef,
    ConstraintSenseKeyword,
    GlobalConstraint,
    LinearAggregateExpression,
    ObjectiveDirection,
    PackageQuery,
)

_SENSE_MAP = {
    ConstraintSenseKeyword.LE: ConstraintSense.LE,
    ConstraintSenseKeyword.GE: ConstraintSense.GE,
    ConstraintSenseKeyword.EQ: ConstraintSense.EQ,
}


@dataclass
class IlpTranslation:
    """A PaQL query translated into an integer linear program.

    Attributes:
        model: The ILP handed to the black-box solver.
        variable_rows: For each ILP variable, the source-table row index it
            represents (``variable_rows[k]`` is the row of variable ``k``).
        query: The translated query.
        base_relation: The eligible-tuple set the variables were created from.
    """

    model: IlpModel
    variable_rows: np.ndarray
    query: PackageQuery
    base_relation: BaseRelation

    @property
    def num_variables(self) -> int:
        return self.model.num_variables

    def package_from_solution(self, solution: Solution) -> Package:
        """Convert a solver solution back into a :class:`Package`."""
        if not solution.has_solution:
            raise TranslationError("cannot build a package from a solution without values")
        return Package.from_solution_values(
            self.base_relation.table, solution.values, self.variable_rows
        )


def translate_query(
    table: Table,
    query: PackageQuery,
    candidate_rows: np.ndarray | None = None,
    extra_constraints: list[GlobalConstraint] | None = None,
    upper_bounds: np.ndarray | None = None,
    name: str | None = None,
) -> IlpTranslation:
    """Translate a PaQL query over ``table`` into an ILP.

    Args:
        table: The input relation (or representative relation for SKETCH).
        query: The package query.
        candidate_rows: Optional restriction of the rows for which variables
            are created (used by REFINE to translate one group at a time).
        extra_constraints: Additional global constraints appended to the
            query's own (used by SKETCH for the per-group multiplicity caps).
        upper_bounds: Optional per-variable upper bounds overriding the
            repetition bound (used by SKETCH, where a representative may
            appear up to ``|G_j| * (K + 1)`` times).
        name: Optional model name (defaults to the query name).
    """
    base = compute_base_relation(table, query)
    if candidate_rows is not None:
        base = base.restrict(candidate_rows)
    rows = base.eligible_indices

    model = IlpModel(name=name or query.name or "paql")
    default_upper = query.max_multiplicity
    if upper_bounds is not None and len(upper_bounds) != len(rows):
        raise TranslationError(
            f"upper_bounds has length {len(upper_bounds)}, expected {len(rows)}"
        )
    for position, row in enumerate(rows):
        upper = (
            float(upper_bounds[position])
            if upper_bounds is not None
            else (float(default_upper) if default_upper is not None else None)
        )
        model.add_variable(f"x_{int(row)}", lower=0.0, upper=upper, is_integer=True)

    constraints = list(query.global_constraints) + list(extra_constraints or [])
    for number, constraint in enumerate(constraints):
        _add_constraint(model, table, rows, constraint, number)

    _set_objective(model, table, rows, query)
    return IlpTranslation(model=model, variable_rows=rows, query=query, base_relation=base)


def aggregate_coefficients(
    table: Table, rows: np.ndarray, aggregate: AggregateRef
) -> np.ndarray:
    """Per-variable coefficients contributed by one aggregate term.

    COUNT contributes 1 per tuple, SUM(attr) contributes the attribute value;
    a filter multiplies by the 0/1 indicator of the filter predicate.
    """
    if aggregate.function is AggregateFunction.COUNT:
        coefficients = np.ones(len(rows), dtype=np.float64)
    elif aggregate.function in (AggregateFunction.SUM, AggregateFunction.AVG):
        coefficients = table.numeric_column(aggregate.column)[rows]
    else:
        raise TranslationError(
            f"{aggregate.function.value} aggregates cannot be translated to a linear program"
        )
    if aggregate.filter is not None:
        coefficients = coefficients * indicator_vector(table, aggregate.filter, rows)
    return coefficients


def expression_coefficients(
    table: Table, rows: np.ndarray, expression: LinearAggregateExpression
) -> np.ndarray:
    """Per-variable coefficients of a full linear aggregate expression.

    AVG terms are not allowed here (they need the bound-dependent rewrite and
    are handled separately in :func:`_add_constraint`).
    """
    coefficients = np.zeros(len(rows), dtype=np.float64)
    for weight, aggregate in expression.terms:
        if aggregate.function is AggregateFunction.AVG:
            raise TranslationError("AVG terms require the constraint-level rewrite")
        coefficients += weight * aggregate_coefficients(table, rows, aggregate)
    return coefficients


@dataclass
class LinearConstraintRow:
    """One translated linear constraint: ``coefficients · x  <sense>  rhs``.

    The coefficient vector is aligned with the ``rows`` it was computed over
    (one entry per candidate tuple).  SKETCHREFINE reuses these rows directly:
    the sketch aggregates them per group, and the refine step shifts ``rhs``
    by the contribution of the already-fixed part of the package.
    """

    coefficients: np.ndarray
    sense: ConstraintSense
    rhs: float
    name: str


def constraint_linear_rows(
    table: Table, rows: np.ndarray, constraint: GlobalConstraint, name: str
) -> list[LinearConstraintRow]:
    """Translate one global constraint into one or two linear constraint rows."""
    has_avg = any(a.function is AggregateFunction.AVG for _, a in constraint.expression.terms)
    if has_avg:
        return _average_constraint_rows(table, rows, constraint, name)

    coefficients = expression_coefficients(table, rows, constraint.expression)
    if constraint.sense is ConstraintSenseKeyword.BETWEEN:
        return [
            LinearConstraintRow(coefficients, ConstraintSense.GE, constraint.lower, f"{name}_lo"),
            LinearConstraintRow(coefficients, ConstraintSense.LE, constraint.upper, f"{name}_hi"),
        ]
    return [
        LinearConstraintRow(
            coefficients, _SENSE_MAP[constraint.sense], constraint.lower, name
        )
    ]


def objective_linear(
    table: Table, rows: np.ndarray, query: PackageQuery
) -> tuple[ObjectiveSense, np.ndarray]:
    """Translate the objective clause into ``(sense, per-tuple coefficients)``.

    Rule 4: a query without an objective gets the vacuous objective
    ``max Σ 0·x_i``.
    """
    if query.objective is None:
        return ObjectiveSense.MAXIMIZE, np.zeros(len(rows), dtype=np.float64)
    coefficients = expression_coefficients(table, rows, query.objective.expression)
    sense = (
        ObjectiveSense.MINIMIZE
        if query.objective.direction is ObjectiveDirection.MINIMIZE
        else ObjectiveSense.MAXIMIZE
    )
    return sense, coefficients


def _average_constraint_rows(
    table: Table, rows: np.ndarray, constraint: GlobalConstraint, name: str
) -> list[LinearConstraintRow]:
    """Linearise ``c * AVG(P.attr) ⊙ v`` as ``Σ (t_i.attr − v/c)·x_i ⊙ 0``."""
    if len(constraint.expression.terms) != 1:
        raise TranslationError("AVG must be the only term of its global constraint")
    weight, aggregate = constraint.expression.terms[0]
    if weight == 0:
        raise TranslationError("AVG constraint with zero coefficient is meaningless")
    values = table.numeric_column(aggregate.column)[rows]
    if aggregate.filter is not None:
        raise TranslationError("filtered AVG aggregates are not supported")

    def row(bound: float, sense: ConstraintSenseKeyword, suffix: str) -> LinearConstraintRow:
        target = bound / weight
        effective_sense = _flip(sense) if weight < 0 else sense
        return LinearConstraintRow(
            values - target, _SENSE_MAP[effective_sense], 0.0, f"{name}{suffix}"
        )

    if constraint.sense is ConstraintSenseKeyword.BETWEEN:
        return [
            row(constraint.lower, ConstraintSenseKeyword.GE, "_lo"),
            row(constraint.upper, ConstraintSenseKeyword.LE, "_hi"),
        ]
    return [row(constraint.lower, constraint.sense, "")]


def _flip(sense: ConstraintSenseKeyword) -> ConstraintSenseKeyword:
    if sense is ConstraintSenseKeyword.LE:
        return ConstraintSenseKeyword.GE
    if sense is ConstraintSenseKeyword.GE:
        return ConstraintSenseKeyword.LE
    return sense


def _add_constraint(
    model: IlpModel,
    table: Table,
    rows: np.ndarray,
    constraint: GlobalConstraint,
    number: int,
) -> None:
    name = constraint.name or f"global_{number}"
    for linear_row in constraint_linear_rows(table, rows, constraint, name):
        # Feed the per-tuple coefficient vector in as (index, value) triplets:
        # no intermediate dict, so a DIRECT translation of 10^5 candidate
        # tuples stays a pair of O(nnz) arrays per constraint.
        nonzero = np.nonzero(linear_row.coefficients)[0]
        model.add_constraint_arrays(
            nonzero,
            linear_row.coefficients[nonzero],
            linear_row.sense,
            linear_row.rhs,
            name=linear_row.name,
        )


def _set_objective(model: IlpModel, table: Table, rows: np.ndarray, query: PackageQuery) -> None:
    sense, coefficients = objective_linear(table, rows, query)
    nonzero = np.nonzero(coefficients)[0]
    model.set_objective_arrays(sense, nonzero, coefficients[nonzero])
