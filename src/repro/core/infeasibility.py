"""Mitigation strategies for false infeasibility (Section 4.4 of the paper).

SKETCHREFINE can report a feasible query as infeasible when the sketch query
or every refinement ordering fails.  The paper lists four ways out; the first
(the *hybrid sketch query*) is built into
:class:`~repro.core.sketchrefine.SketchRefineEvaluator` because it is the one
used in the experiments.  This module implements the remaining three as
composable fallback strategies plus a resolver that applies them in sequence:

2. **Further partitioning** — halve the size threshold τ and re-partition, so
   centroids become better representatives of their (smaller) groups.
3. **Dropping partitioning attributes** — project the partitioning onto fewer
   dimensions, merging groups and increasing the chance that previously
   infeasible refine queries become feasible.  The attributes to drop are
   chosen with the solver's IIS facility on the sketch-level ILP, as the paper
   suggests: attributes participating in the irreducible infeasible constraint
   set go first.
4. **Iterative group merging** — merge groups pairwise until the sub-queries
   become feasible; in the limit a single group remains and SKETCHREFINE
   degenerates to DIRECT, so any feasible query is eventually answered (at the
   cost of performance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.core.direct import DirectEvaluator
from repro.core.package import Package
from repro.core.sketchrefine import SketchRefineEvaluator
from repro.core.translator import constraint_linear_rows
from repro.dataset.table import Table
from repro.errors import InfeasiblePackageQueryError
from repro.ilp.iis import find_iis
from repro.ilp.model import IlpModel, ObjectiveSense
from repro.paql.ast import PackageQuery
from repro.partition.partitioning import Partitioning, PartitioningStats
from repro.partition.quadtree import QuadTreePartitioner


class FalseInfeasibilityStrategy(Protocol):
    """A fallback that derives alternative partitionings to retry with."""

    name: str

    def candidate_partitionings(
        self, table: Table, query: PackageQuery, partitioning: Partitioning
    ) -> list[Partitioning]:
        """Return alternative partitionings, most promising first."""
        ...  # pragma: no cover - protocol definition


@dataclass
class FurtherPartitioning:
    """Strategy 2: re-partition with progressively smaller size thresholds."""

    shrink_factor: float = 0.5
    rounds: int = 2
    name: str = "further-partitioning"

    def candidate_partitionings(
        self, table: Table, query: PackageQuery, partitioning: Partitioning
    ) -> list[Partitioning]:
        candidates = []
        tau = partitioning.stats.size_threshold
        for _ in range(self.rounds):
            tau = max(1, int(tau * self.shrink_factor))
            partitioner = QuadTreePartitioner(
                size_threshold=tau, radius_limit=partitioning.stats.radius_limit
            )
            candidates.append(partitioner.partition(table, partitioning.attributes))
            if tau == 1:
                break
        return candidates


@dataclass
class DropPartitioningAttributes:
    """Strategy 3: project the partitioning onto fewer attributes.

    The order in which attributes are dropped is guided by an IIS computed on
    the *sketch-level* ILP (group centroids with per-group caps): attributes
    whose constraints belong to the irreducible infeasible set are dropped
    first, then any remaining partitioning attributes.
    """

    max_drops: int = 3
    name: str = "drop-partitioning-attributes"

    def candidate_partitionings(
        self, table: Table, query: PackageQuery, partitioning: Partitioning
    ) -> list[Partitioning]:
        order = self._drop_order(table, query, partitioning)
        candidates = []
        remaining = list(partitioning.attributes)
        for attribute in order[: self.max_drops]:
            if len(remaining) <= 1:
                break
            remaining = [a for a in remaining if a != attribute]
            partitioner = QuadTreePartitioner(
                size_threshold=partitioning.stats.size_threshold,
                radius_limit=partitioning.stats.radius_limit,
            )
            candidates.append(partitioner.partition(table, remaining))
        return candidates

    def _drop_order(
        self, table: Table, query: PackageQuery, partitioning: Partitioning
    ) -> list[str]:
        conflicted = self._conflicted_attributes(table, query, partitioning)
        ordered = [a for a in partitioning.attributes if a in conflicted]
        ordered += [a for a in partitioning.attributes if a not in conflicted]
        return ordered

    def _conflicted_attributes(
        self, table: Table, query: PackageQuery, partitioning: Partitioning
    ) -> set[str]:
        """Attributes participating in the IIS of the sketch-level ILP."""
        sketch_model, constraint_attributes = _sketch_level_model(table, query, partitioning)
        if sketch_model is None:
            return set()
        infeasible_set = find_iis(sketch_model)
        if not infeasible_set:
            return set()
        conflicted: set[str] = set()
        for name in infeasible_set:
            conflicted |= constraint_attributes.get(name, set())
        return conflicted & set(partitioning.attributes)


@dataclass
class IterativeGroupMerging:
    """Strategy 4: merge groups pairwise until the query becomes answerable.

    In the limit this reduces the problem to a single group; the resolver then
    completes the paper's recipe by falling back to DIRECT on the original
    relation, which guarantees an answer for any feasible query (at the cost
    of performance).
    """

    rounds: int = 4
    name: str = "iterative-group-merging"

    def candidate_partitionings(
        self, table: Table, query: PackageQuery, partitioning: Partitioning
    ) -> list[Partitioning]:
        candidates = []
        current = partitioning
        for _ in range(self.rounds):
            if current.num_groups <= 1:
                break
            current = merge_groups_pairwise(current)
            candidates.append(current)
        return candidates


def merge_groups_pairwise(partitioning: Partitioning) -> Partitioning:
    """Merge groups (2k, 2k+1) → k, halving the number of groups."""
    if partitioning.num_groups <= 1:
        return partitioning
    merged_ids = partitioning.group_ids // 2
    stats = PartitioningStats(
        num_groups=int(merged_ids.max()) + 1,
        max_group_size=int(np.bincount(merged_ids).max()),
        max_radius=partitioning.stats.max_radius,
        build_seconds=0.0,
        size_threshold=partitioning.stats.size_threshold * 2,
        radius_limit=partitioning.stats.radius_limit,
        method=f"{partitioning.stats.method}(merged)",
    )
    return Partitioning(partitioning.table, merged_ids, partitioning.attributes, stats)


@dataclass
class ResolutionReport:
    """What the resolver tried and what finally worked."""

    attempts: list[str] = field(default_factory=list)
    succeeded_with: str | None = None

    @property
    def used_fallback(self) -> bool:
        return self.succeeded_with not in (None, "original-partitioning")


class FalseInfeasibilityResolver:
    """Run SKETCHREFINE, falling back through the Section 4.4 strategies.

    The resolver only retries when the failure is a *possible* false negative
    (the sketch or refinement failed); genuine infeasibility detected by a
    DIRECT-equivalent sub-problem is re-raised immediately.
    """

    def __init__(
        self,
        evaluator: SketchRefineEvaluator | None = None,
        strategies: list[FalseInfeasibilityStrategy] | None = None,
        fallback_to_direct: bool = True,
    ):
        self.evaluator = evaluator or SketchRefineEvaluator()
        self.strategies = strategies or [
            FurtherPartitioning(),
            DropPartitioningAttributes(),
            IterativeGroupMerging(),
        ]
        self.fallback_to_direct = fallback_to_direct
        self.last_report = ResolutionReport()

    def evaluate(
        self, table: Table, query: PackageQuery, partitioning: Partitioning
    ) -> Package:
        """Evaluate the query, applying fallback partitionings on false infeasibility."""
        report = ResolutionReport()
        self.last_report = report

        report.attempts.append("original-partitioning")
        try:
            package = self.evaluator.evaluate(table, query, partitioning)
            report.succeeded_with = "original-partitioning"
            return package
        except InfeasiblePackageQueryError as error:
            if not error.false_negative_possible:
                raise
            last_error = error

        for strategy in self.strategies:
            for candidate in strategy.candidate_partitionings(table, query, partitioning):
                report.attempts.append(f"{strategy.name}({candidate.num_groups} groups)")
                try:
                    package = self.evaluator.evaluate(table, query, candidate)
                    report.succeeded_with = strategy.name
                    return package
                except InfeasiblePackageQueryError as error:
                    if not error.false_negative_possible:
                        raise
                    last_error = error

        if self.fallback_to_direct:
            # The paper's brute-force endpoint: with no partitioning left to
            # try, solve the original problem directly.  DIRECT either returns
            # a package or proves genuine infeasibility.
            report.attempts.append("direct")
            package = DirectEvaluator(solver=self.evaluator.solver).evaluate(table, query)
            report.succeeded_with = "direct"
            return package

        raise InfeasiblePackageQueryError(
            "query remained infeasible after every false-infeasibility mitigation "
            f"(tried: {', '.join(report.attempts)})",
            false_negative_possible=True,
        ) from last_error


def _sketch_level_model(
    table: Table, query: PackageQuery, partitioning: Partitioning
) -> tuple[IlpModel | None, dict[str, set[str]]]:
    """Build the sketch-level ILP (centroids + group caps) for IIS analysis.

    Returns the model plus a mapping from constraint name to the attributes it
    involves, so IIS membership can be translated back into attribute choices.
    """
    if partitioning.num_groups == 0:
        return None, {}
    group_ids = partitioning.group_ids
    num_groups = partitioning.num_groups
    sizes = partitioning.group_sizes().astype(float)
    all_rows = np.arange(table.num_rows, dtype=np.int64)

    model = IlpModel(name="sketch_iis_probe")
    per_tuple_cap = query.max_multiplicity
    for gid in range(num_groups):
        upper = sizes[gid] * per_tuple_cap if per_tuple_cap is not None else None
        model.add_variable(f"g_{gid}", 0.0, upper)

    constraint_attributes: dict[str, set[str]] = {}
    counts = np.maximum(np.bincount(group_ids, minlength=num_groups), 1).astype(float)
    for number, constraint in enumerate(query.global_constraints):
        name = constraint.name or f"global_{number}"
        for row in constraint_linear_rows(table, all_rows, constraint, name):
            sums = np.bincount(group_ids, weights=row.coefficients, minlength=num_groups)
            means = sums / counts
            model.add_constraint(
                {g: float(means[g]) for g in range(num_groups) if means[g]},
                row.sense,
                row.rhs,
                name=row.name,
            )
            constraint_attributes[row.name] = set(constraint.referenced_columns)
    model.set_objective(ObjectiveSense.MAXIMIZE, {})
    return model, constraint_attributes
