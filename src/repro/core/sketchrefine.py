"""The SKETCHREFINE evaluation strategy (Section 4 of the paper).

SKETCHREFINE answers a package query approximately in two phases over an
offline partitioning of the input relation:

* **SKETCH** — solve the query over the representative relation R̃ (one
  centroid per group), with extra constraints capping how many times each
  representative may be picked (at most ``|G_j| · (K + 1)`` for REPEAT K).
  The resulting *sketch package* fixes how much of the answer should come
  from each group.
* **REFINE** — replace the chosen representatives with actual tuples, one
  small ILP per group, each constraint's bounds shifted by the contribution
  of everything else (the refined groups' tuples plus the other groups'
  representatives).  The paper notes these per-group ILPs are embarrassingly
  parallel, and this evaluator exploits that with a **round-based refine with
  deterministic merge**: every round, the refine ILPs of *all* still-pending
  groups are solved as one batch of independent tasks — fanned out over a
  :class:`~repro.exec.pool.SolvePool` worker pool, or run serially through
  the *same* task runner — against the same fixed context.  Results are then
  merged in **ascending group-id order**: a group's solution is accepted only
  if the mixed package (accepted groups' actual tuples + remaining groups'
  representatives) still satisfies every global constraint; the first
  feasible candidate in merge order always merges (its ILP enforced exactly
  that residual), so every round with a feasible result makes progress.
  Rejected groups are deferred and re-solved next round against the updated
  context.  When a round produces no acceptable group (all refine ILPs
  infeasible) the evaluator backtracks in the spirit of Algorithm 2: the
  failed groups are prioritised to the front of the merge order and
  refinement restarts from the sketch, until an ordering succeeds, the
  ordering repeats, or ``max_backtracks`` is exhausted.

  Because the merge rule, the warm-start snapshots and the per-task inputs
  are all independent of *where* a task executes, a parallel refine is
  **bit-identical** to the serial one (asserted by the serial-vs-parallel
  sweep in ``tests/integration/test_differential.py``).

When the sketch itself is infeasible, the *hybrid sketch* mitigation of
Section 4.4 is applied (matching the experimental setup in Section 5.1): the
sketch is merged with one group's refine query, trying groups in turn, so a
single awkward centroid cannot make the whole query look infeasible.

The implementation shares the PaQL→ILP translation with DIRECT by linearising
every global constraint once into a per-tuple coefficient *matrix* (one row
per translated constraint, one column per tuple, stacked from
:func:`repro.core.translator.constraint_linear_rows`); the sketch uses the
per-group column *means* of that matrix (the centroid value of a linear
function is the mean of its per-tuple values) and the refine step slices the
columns of one group with residual right-hand sides.  Sketch and refine ILPs
are built from coefficient triplets (``add_constraint_arrays``), never
per-entry dicts.

Refine ILPs of the same group recur across backtracking retries with
identical constraint-matrix shape and only shifted right-hand sides, so the
evaluator caches the last optimal root basis per group and passes it back as
a warm start on retry (SIMPLEX-backend branch-and-bound only; anything else
ignores it).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.base_relations import compute_base_relation
from repro.exec.pool import SolvePool, shared_pool
from repro.exec.tasks import SolveTask, run_solve_task, solver_supports_warm_start
from repro.core.package import Package
from repro.core.translator import (
    LinearConstraintRow,
    constraint_linear_rows,
    objective_linear,
)
from repro.dataset.table import Table
from repro.errors import (
    EvaluationError,
    InfeasiblePackageQueryError,
    SolverCapacityError,
)
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.lp_backend import LpBackend, WarmStart
from repro.ilp.model import ConstraintSense, IlpModel
from repro.ilp.status import SolverStatus
from repro.paql.ast import PackageQuery
from repro.partition.partitioning import Partitioning


@dataclass
class SketchRefineConfig:
    """Tuning knobs for SKETCHREFINE."""

    use_hybrid_sketch: bool = True
    """Apply the Section 4.4 hybrid-sketch fallback when the sketch is infeasible."""

    refine_order_seed: int = 0
    """Seed for the (arbitrary) group order the hybrid-sketch fallback tries.
    The refine merge order itself is fixed — ascending group id — so that
    parallel and serial refinement are bit-identical."""

    max_backtracks: int = 1000
    """Safety cap on the number of backtracking restarts before giving up."""

    workers: int | None = None
    """Worker processes for the parallel refine batches.  ``None`` defers to
    the ``REPRO_WORKERS`` environment variable (default 1 = serial); any
    value ``<= 1`` keeps every solve in-process.  Output is bit-identical
    across worker counts."""


@dataclass
class SketchRefineStats:
    """Timing and search statistics for one SKETCHREFINE evaluation."""

    sketch_seconds: float = 0.0
    refine_seconds: float = 0.0
    total_seconds: float = 0.0
    num_groups: int = 0
    groups_in_sketch: int = 0
    refine_queries: int = 0
    backtracks: int = 0
    used_hybrid_sketch: bool = False
    sketch_objective: float = float("nan")
    solver_lp_solves: int = 0
    """LP relaxation solves summed over the sketch and every refine ILP."""
    solver_simplex_iterations: int = 0
    """Simplex pivots summed over all solves (SIMPLEX backend only)."""
    solver_warm_start_hits: int = 0
    """LP solves that reoptimised from a parent basis (SIMPLEX backend only)."""
    refine_retry_warm_starts: int = 0
    """Refine solves seeded with a cached basis from an earlier solve of the
    same group (requires a SIMPLEX-backend :class:`BranchAndBoundSolver`)."""
    refine_rounds: int = 0
    """Batched refine rounds executed (each solves every then-pending group)."""
    merge_deferrals: int = 0
    """Refine solutions rejected by the deterministic merge check and
    re-solved in a later round against the updated context."""
    refine_workers: int = 1
    """Effective worker count of the solve pool this evaluation used."""
    refine_parallel_tasks: int = 0
    """Refine solves actually executed in worker processes (0 = all serial)."""
    pool_wall_ms: float = 0.0
    """Wall-clock milliseconds spent executing refine solve batches."""
    merge_wait_ms: float = 0.0
    """Coordination overhead of parallel batches: wall time beyond the
    slowest task of each batch (pickling, IPC, scheduling).  0 when serial."""
    child_solve_ms: float = 0.0
    """Solve milliseconds summed over all refine tasks, measured inside the
    executing process — the true compute time, as opposed to the overlapped
    wall time (``pool_wall_ms``)."""
    vars_fixed: int = 0
    """Columns eliminated by root presolve, summed over sketch + refine solves."""
    rows_removed: int = 0
    """Constraint rows removed by root presolve, summed over all solves."""
    presolve_ms: float = 0.0
    """Milliseconds spent in root presolve, summed over all solves."""
    partitioning_version: int = 0
    """Table version the partitioning this evaluation ran over describes."""
    partitioning_maintenance: dict = field(default_factory=dict)
    """Cumulative incremental-maintenance profile of that partitioning
    (deltas applied, rows inserted/deleted, groups created/retired/re-split,
    maintenance seconds) — all zero for a fresh offline build."""


@dataclass
class _Linearisation:
    """Per-tuple linear form of the query, computed once and reused everywhere.

    ``constraint_matrix`` stacks the rows' coefficient vectors into one
    ``(num_constraints, num_table_rows)`` array so group means, fixed-part
    contributions and per-group slices are single vectorised operations.
    """

    eligible_mask: np.ndarray          # Boolean mask over the full table.
    constraint_rows: list[LinearConstraintRow]  # Sense/rhs/name per row.
    constraint_matrix: np.ndarray      # (num_constraints, num_table_rows).
    objective_sense: object
    objective_coefficients: np.ndarray  # Over ALL rows.

    @property
    def num_constraints(self) -> int:
        return len(self.constraint_rows)


class SketchRefineEvaluator:
    """Scalable approximate package evaluation over an offline partitioning."""

    def __init__(
        self,
        solver=None,
        config: SketchRefineConfig | None = None,
        pool: SolvePool | None = None,
    ):
        """Args:
            solver: Black-box ILP solver (``solve(IlpModel) -> Solution``);
                defaults to :class:`BranchAndBoundSolver`.
            config: Optional tuning knobs.
            pool: Solve pool for the refine batches; ``None`` uses the
                process-wide :func:`~repro.exec.pool.shared_pool` for
                ``config.workers``.
        """
        self.solver = solver or BranchAndBoundSolver()
        self.config = config or SketchRefineConfig()
        self.last_stats = SketchRefineStats()
        self._pool = pool
        # Whether the solver can be shipped to worker processes (pickled);
        # probed once on first parallel batch.
        self._solver_shippable: bool | None = None
        # Last optimal root basis per refine group, reused as a warm start
        # when a later round (or a backtracking restart) re-solves the same
        # group: the retry differs only in its residual right-hand sides, so
        # the basis stays structurally valid.
        self._refine_basis: dict[int, object] = {}

    # -- public API -----------------------------------------------------------------------

    def evaluate(
        self,
        table: Table,
        query: PackageQuery,
        partitioning: Partitioning,
        workers: int | None = None,
    ) -> Package:
        """Return an approximately-optimal package for ``query`` over ``table``.

        Args:
            table: The source relation.
            query: The package query.
            partitioning: Offline partitioning of ``table``.
            workers: Per-call override of the refine worker count (``None``
                defers to ``config.workers`` / the injected pool).  The
                answer is bit-identical for every worker count.

        Raises:
            InfeasiblePackageQueryError: If no feasible package was found.
                This may be a *false* infeasibility (the flag
                ``false_negative_possible`` is set) when the true query is
                feasible but the sketch or every refinement order failed.
        """
        if partitioning.table is not table:
            raise EvaluationError(
                "the partitioning was built for a different table instance"
            )
        pool = self._refine_pool(workers)
        start = time.perf_counter()
        stats = SketchRefineStats(
            num_groups=partitioning.num_groups,
            partitioning_version=partitioning.version,
            partitioning_maintenance=partitioning.maintenance.as_dict(),
            refine_workers=pool.workers,
        )
        self.last_stats = stats
        self._refine_basis = {}

        linearisation = self._linearise(table, query)
        group_info = self._group_info(partitioning, linearisation.eligible_mask)
        eligible_groups = [g for g, rows in group_info.items() if len(rows)]
        if not eligible_groups:
            raise InfeasiblePackageQueryError("no tuple satisfies the base predicate")

        group_means = self._group_means(linearisation, group_info)

        # ---- SKETCH ----
        sketch_start = time.perf_counter()
        sketch_multiplicities, initial_assignments, used_hybrid = self._sketch(
            table, query, linearisation, group_info, group_means
        )
        stats.sketch_seconds = time.perf_counter() - sketch_start
        stats.used_hybrid_sketch = used_hybrid
        stats.groups_in_sketch = sum(1 for m in sketch_multiplicities.values() if m > 0)

        # ---- REFINE ----
        refine_start = time.perf_counter()
        assignments = self._refine_root(
            query, linearisation, group_info, group_means,
            sketch_multiplicities, initial_assignments, stats, pool,
        )
        stats.refine_seconds = time.perf_counter() - refine_start
        stats.total_seconds = time.perf_counter() - start

        combined: dict[int, int] = {}
        for group_assignment in assignments.values():
            for row, multiplicity in group_assignment.items():
                combined[row] = combined.get(row, 0) + multiplicity
        return Package.from_multiplicity_map(table, combined)

    def _refine_pool(self, workers: int | None) -> SolvePool:
        """Resolve the solve pool for one evaluation.

        Precedence: explicit per-call ``workers`` override, then the pool
        injected at construction, then the process-wide shared pool for
        ``config.workers`` (which itself defers to ``REPRO_WORKERS``).
        """
        if workers is not None:
            return shared_pool(workers)
        if self._pool is not None:
            return self._pool
        return shared_pool(self.config.workers)

    # -- linearisation ------------------------------------------------------------------------

    def _linearise(self, table: Table, query: PackageQuery) -> _Linearisation:
        base = compute_base_relation(table, query)
        mask = np.zeros(table.num_rows, dtype=bool)
        mask[base.eligible_indices] = True
        all_rows = np.arange(table.num_rows, dtype=np.int64)
        rows: list[LinearConstraintRow] = []
        for number, constraint in enumerate(query.global_constraints):
            name = constraint.name or f"global_{number}"
            rows.extend(constraint_linear_rows(table, all_rows, constraint, name))
        matrix = (
            np.vstack([row.coefficients for row in rows])
            if rows
            else np.empty((0, table.num_rows))
        )
        sense, objective = objective_linear(table, all_rows, query)
        return _Linearisation(mask, rows, matrix, sense, objective)

    @staticmethod
    def _group_info(
        partitioning: Partitioning, eligible_mask: np.ndarray
    ) -> dict[int, np.ndarray]:
        """Eligible row indices per group (groups with no eligible tuples map to empty)."""
        info: dict[int, np.ndarray] = {}
        for gid in range(partitioning.num_groups):
            rows = partitioning.group_rows(gid)
            info[gid] = rows[eligible_mask[rows]]
        return info

    @staticmethod
    def _group_means(
        linearisation: _Linearisation, group_info: dict[int, np.ndarray]
    ) -> dict[str, dict[int, np.ndarray]]:
        """Mean per-tuple coefficient of each constraint row / objective per group.

        The mean coefficient over a group equals the coefficient of the group's
        centroid, because every translated constraint is linear in the tuple
        attributes.
        """
        constraint_means: dict[int, np.ndarray] = {}
        objective_means: dict[int, np.ndarray] = {}
        for gid, rows in group_info.items():
            if not len(rows):
                constraint_means[gid] = np.zeros(linearisation.num_constraints)
                objective_means[gid] = np.zeros(1)
                continue
            constraint_means[gid] = linearisation.constraint_matrix[:, rows].mean(axis=1)
            objective_means[gid] = np.array([linearisation.objective_coefficients[rows].mean()])
        return {"constraints": constraint_means, "objective": objective_means}

    # -- SKETCH -------------------------------------------------------------------------------

    def _sketch(
        self,
        table: Table,
        query: PackageQuery,
        linearisation: _Linearisation,
        group_info: dict[int, np.ndarray],
        group_means: dict[str, dict[int, np.ndarray]],
    ) -> tuple[dict[int, int], dict[int, dict[int, int]], bool]:
        """Solve the sketch query.

        Returns ``(sketch multiplicities per group, pre-refined assignments,
        used_hybrid)``.  Pre-refined assignments are non-empty only when the
        hybrid-sketch fallback solved one group with original tuples.
        """
        eligible_groups = [g for g, rows in group_info.items() if len(rows)]
        solution = self._solve_sketch_model(
            query, linearisation, group_info, group_means, eligible_groups, hybrid_group=None
        )
        if solution is not None:
            multiplicities, _ = solution
            self.last_stats.sketch_objective = self._sketch_objective(
                multiplicities, group_means
            )
            return multiplicities, {}, False

        if not self.config.use_hybrid_sketch:
            raise InfeasiblePackageQueryError(
                "sketch query is infeasible", false_negative_possible=True
            )

        # Hybrid sketch: replace one group's representative with its original
        # tuples and re-try, in arbitrary group order (Section 4.4).
        rng = np.random.default_rng(self.config.refine_order_seed)
        order = list(eligible_groups)
        rng.shuffle(order)
        for hybrid_group in order:
            solution = self._solve_sketch_model(
                query, linearisation, group_info, group_means, eligible_groups, hybrid_group
            )
            if solution is None:
                continue
            multiplicities, hybrid_assignment = solution
            assignments = {hybrid_group: hybrid_assignment} if hybrid_assignment else {}
            multiplicities[hybrid_group] = 0
            self.last_stats.sketch_objective = self._sketch_objective(
                multiplicities, group_means
            )
            return multiplicities, assignments, True

        raise InfeasiblePackageQueryError(
            "sketch query (and every hybrid sketch) is infeasible",
            false_negative_possible=True,
        )

    def _solve_sketch_model(
        self,
        query: PackageQuery,
        linearisation: _Linearisation,
        group_info: dict[int, np.ndarray],
        group_means: dict[str, dict[int, np.ndarray]],
        eligible_groups: list[int],
        hybrid_group: int | None,
    ) -> tuple[dict[int, int], dict[int, int]] | None:
        """Build and solve the (possibly hybrid) sketch ILP.

        Returns ``None`` when infeasible; otherwise the per-group multiplicities
        and, for a hybrid sketch, the per-row assignment of the hybrid group.
        """
        model = IlpModel(name=f"sketch_{query.name or query.relation}")
        per_tuple_cap = query.max_multiplicity

        variable_kind: list[tuple[str, int]] = []  # ("group", gid) or ("row", row index)
        for gid in eligible_groups:
            if gid == hybrid_group:
                for row in group_info[gid]:
                    upper = float(per_tuple_cap) if per_tuple_cap is not None else None
                    model.add_variable(f"t_{int(row)}", 0.0, upper)
                    variable_kind.append(("row", int(row)))
            else:
                group_cap = (
                    float(len(group_info[gid]) * per_tuple_cap)
                    if per_tuple_cap is not None
                    else None
                )
                model.add_variable(f"g_{gid}", 0.0, group_cap)
                variable_kind.append(("group", gid))

        # One coefficient matrix over the sketch variables: group columns carry
        # the group means, hybrid-row columns the original per-tuple vectors.
        positions = np.arange(len(variable_kind))
        is_group = np.array([kind == "group" for kind, _ in variable_kind], dtype=bool)
        keys = np.array([key for _, key in variable_kind], dtype=np.int64)
        num_rows = linearisation.num_constraints
        coefficient_matrix = np.empty((num_rows, len(variable_kind)))
        if is_group.any():
            coefficient_matrix[:, is_group] = np.stack(
                [group_means["constraints"][gid] for gid in keys[is_group]], axis=1
            )
        if (~is_group).any():
            coefficient_matrix[:, ~is_group] = linearisation.constraint_matrix[
                :, keys[~is_group]
            ]
        for row_number, constraint_row in enumerate(linearisation.constraint_rows):
            row_values = coefficient_matrix[row_number]
            nonzero = np.nonzero(row_values)[0]
            model.add_constraint_arrays(
                positions[nonzero],
                row_values[nonzero],
                constraint_row.sense,
                constraint_row.rhs,
                name=constraint_row.name,
            )

        objective_values = np.empty(len(variable_kind))
        if is_group.any():
            objective_values[is_group] = [
                float(group_means["objective"][gid][0]) for gid in keys[is_group]
            ]
        if (~is_group).any():
            objective_values[~is_group] = linearisation.objective_coefficients[keys[~is_group]]
        nonzero = np.nonzero(objective_values)[0]
        model.set_objective_arrays(
            linearisation.objective_sense, positions[nonzero], objective_values[nonzero]
        )

        solution = self.solver.solve(model)
        self._absorb_solver_stats(solution)
        if solution.status is SolverStatus.INFEASIBLE:
            return None
        if solution.status is SolverStatus.CAPACITY_EXCEEDED:
            raise SolverCapacityError(
                f"sketch problem with {model.num_variables} variables exceeds solver capacity"
            )
        if not solution.has_solution:
            raise EvaluationError(f"sketch solve failed with status {solution.status.value}")

        multiplicities: dict[int, int] = {gid: 0 for gid in eligible_groups}
        hybrid_assignment: dict[int, int] = {}
        values = solution.integral_values()
        for position, (kind, key) in enumerate(variable_kind):
            count = int(values[position])
            if count <= 0:
                continue
            if kind == "group":
                multiplicities[key] = count
            else:
                hybrid_assignment[key] = count
        return multiplicities, hybrid_assignment

    def _absorb_solver_stats(self, solution) -> None:
        """Fold one ILP solve's solver statistics into the running totals."""
        self._absorb_task_stats(getattr(solution, "stats", None))

    def _solve_with_group_basis(self, gid: int, model, stats: SketchRefineStats):
        """Solve a refine ILP, reusing the group's basis across retries.

        Backtracking re-poses the same group's refine query with identical
        constraint structure and only shifted residual right-hand sides, so
        the root basis of the previous attempt stays dual feasible and is
        passed back as a warm start.  Requires a SIMPLEX-backend
        :class:`BranchAndBoundSolver`; any other black-box solver just gets a
        plain ``solve`` call.
        """
        supports_warm = (
            isinstance(self.solver, BranchAndBoundSolver)
            and self.solver.lp_backend is LpBackend.SIMPLEX
            and self.solver.warm_start_lp
        )
        if not supports_warm:
            return self.solver.solve(model)
        cached = self._refine_basis.get(gid)
        if cached is not None:
            stats.refine_retry_warm_starts += 1
            solution = self.solver.solve(model, warm_start=WarmStart(basis=cached))
        else:
            solution = self.solver.solve(model)
        if solution.root_basis is not None:
            self._refine_basis[gid] = solution.root_basis
        return solution

    @staticmethod
    def _sketch_objective(
        multiplicities: dict[int, int], group_means: dict[str, dict[int, np.ndarray]]
    ) -> float:
        return float(
            sum(group_means["objective"][gid][0] * count for gid, count in multiplicities.items())
        )

    # -- REFINE ---------------------------------------------------------------------------------

    def _refine_root(
        self,
        query: PackageQuery,
        linearisation: _Linearisation,
        group_info: dict[int, np.ndarray],
        group_means: dict[str, dict[int, np.ndarray]],
        sketch_multiplicities: dict[int, int],
        initial_assignments: dict[int, dict[int, int]],
        stats: SketchRefineStats,
        pool: SolvePool,
    ) -> dict[int, dict[int, int]]:
        """Round-based refinement with deterministic merge (see module docstring).

        Each round solves the refine ILPs of every still-pending group as one
        batch of independent tasks against the same fixed context, then merges
        the results in ascending group-id order (prioritised groups first
        after a backtracking restart), accepting a solution only while the
        mixed package stays feasible.  A round in which nothing merges —
        every pending refine ILP came back infeasible — is a dead end:
        refinement restarts from the sketch with the failed groups promoted
        to the front of the merge order, Algorithm 2's greedy backtracking
        recast as a restart.  Orderings never repeat (the ``tried`` set), so
        the loop terminates even without the ``max_backtracks`` cap.
        """
        base_pending = sorted(
            gid
            for gid, count in sketch_multiplicities.items()
            if count > 0 and gid not in initial_assignments
        )
        if not base_pending:
            return dict(initial_assignments)

        priority: tuple[int, ...] = ()
        tried: set[tuple[int, ...]] = set()
        while True:
            tried.add(priority)
            assignments = dict(initial_assignments)
            pending = list(base_pending)
            dead_end: list[int] | None = None
            while pending:
                stats.refine_rounds += 1
                prioritised = set(priority)
                order = [g for g in priority if g in pending] + [
                    g for g in pending if g not in prioritised
                ]
                results = self._solve_refine_batch(
                    query, linearisation, group_info, group_means,
                    sketch_multiplicities, assignments, pending, order, stats, pool,
                )
                accepted, infeasible = self._merge_round(
                    order, results, linearisation, group_info, group_means,
                    sketch_multiplicities, assignments, pending, stats,
                )
                if not accepted:
                    dead_end = infeasible
                    break
                pending = [g for g in pending if g not in assignments]
            if dead_end is None:
                return assignments
            stats.backtracks += 1
            next_priority = tuple(sorted(dead_end)) + tuple(
                g for g in priority if g not in dead_end
            )
            if stats.backtracks > self.config.max_backtracks or next_priority in tried:
                raise InfeasiblePackageQueryError(
                    "refinement failed for every group ordering",
                    false_negative_possible=True,
                )
            priority = next_priority

    def _solve_refine_batch(
        self,
        query: PackageQuery,
        linearisation: _Linearisation,
        group_info: dict[int, np.ndarray],
        group_means: dict[str, dict[int, np.ndarray]],
        sketch_multiplicities: dict[int, int],
        assignments: dict[int, dict[int, int]],
        pending: list[int],
        order: list[int],
        stats: SketchRefineStats,
        pool: SolvePool,
    ) -> dict[int, "object"]:
        """Solve every pending group's refine ILP as one batch of tasks.

        The tasks are built — models, warm-basis snapshots, per-task RNG
        seeds — *before* any of them runs, so each is a pure function of the
        shared round context and the batch can execute anywhere: fanned out
        over the pool's worker processes, or serially through the very same
        :func:`run_solve_task`.  Results are post-processed (stats folded in,
        warm bases cached) in ascending group-id order either way.
        """
        attach_basis = solver_supports_warm_start(self.solver)
        tasks: list[SolveTask] = []
        for gid in order:
            model = self._build_refine_model(
                query, linearisation, group_info, group_means,
                sketch_multiplicities, assignments, pending, gid,
            )
            basis = self._refine_basis.get(gid) if attach_basis else None
            if basis is not None:
                stats.refine_retry_warm_starts += 1
            tasks.append(
                SolveTask(
                    task_id=gid,
                    model=model,
                    solver=self.solver,
                    warm_basis=basis,
                    rng_seed=int(gid),
                )
            )
        stats.refine_queries += len(tasks)

        run_parallel = pool.is_parallel and len(tasks) > 1 and self._can_ship_solver()
        batch_start = time.perf_counter()
        if run_parallel:
            results = pool.map(run_solve_task, tasks)
            stats.refine_parallel_tasks += len(tasks)
        else:
            results = [run_solve_task(task) for task in tasks]
        batch_wall = time.perf_counter() - batch_start

        stats.pool_wall_ms += batch_wall * 1000.0
        child_seconds = [result.solve_seconds for result in results]
        stats.child_solve_ms += sum(child_seconds) * 1000.0
        if run_parallel and child_seconds:
            stats.merge_wait_ms += max(0.0, batch_wall - max(child_seconds)) * 1000.0

        by_gid = {result.task_id: result for result in results}
        for gid in sorted(by_gid):
            result = by_gid[gid]
            self._absorb_task_stats(result.stats)
            if result.root_basis is not None:
                self._refine_basis[gid] = result.root_basis
        return by_gid

    def _build_refine_model(
        self,
        query: PackageQuery,
        linearisation: _Linearisation,
        group_info: dict[int, np.ndarray],
        group_means: dict[str, dict[int, np.ndarray]],
        sketch_multiplicities: dict[int, int],
        assignments: dict[int, dict[int, int]],
        pending: list[int],
        gid: int,
    ) -> IlpModel:
        """Build Q[G_j]: pick real tuples for group ``gid`` given everything else fixed."""
        rows = group_info[gid]
        per_tuple_cap = query.max_multiplicity

        # Contribution of the fixed part p̄_j: refined groups' tuples plus the
        # other unrefined groups' representatives at their sketch multiplicities.
        fixed_constraint = np.zeros(linearisation.num_constraints)
        for other_gid, assignment in assignments.items():
            if other_gid == gid or not assignment:
                continue
            fixed_constraint += self._assignment_contribution(linearisation, assignment)
        for other_gid in pending:
            if other_gid == gid or other_gid in assignments:
                continue
            count = sketch_multiplicities.get(other_gid, 0)
            if count:
                fixed_constraint += count * group_means["constraints"][other_gid]

        model = IlpModel(name=f"refine_{gid}")
        for row in rows:
            upper = float(per_tuple_cap) if per_tuple_cap is not None else None
            model.add_variable(f"t_{int(row)}", 0.0, upper)

        positions = np.arange(len(rows))
        group_matrix = linearisation.constraint_matrix[:, rows]
        for row_number, constraint_row in enumerate(linearisation.constraint_rows):
            row_values = group_matrix[row_number]
            nonzero = np.nonzero(row_values)[0]
            residual = constraint_row.rhs - fixed_constraint[row_number]
            model.add_constraint_arrays(
                positions[nonzero],
                row_values[nonzero],
                constraint_row.sense,
                residual,
                name=constraint_row.name,
            )

        objective_values = linearisation.objective_coefficients[rows]
        nonzero = np.nonzero(objective_values)[0]
        model.set_objective_arrays(
            linearisation.objective_sense, positions[nonzero], objective_values[nonzero]
        )
        return model

    def _merge_round(
        self,
        order: list[int],
        results: dict[int, "object"],
        linearisation: _Linearisation,
        group_info: dict[int, np.ndarray],
        group_means: dict[str, dict[int, np.ndarray]],
        sketch_multiplicities: dict[int, int],
        assignments: dict[int, dict[int, int]],
        pending: list[int],
        stats: SketchRefineStats,
    ) -> tuple[list[int], list[int]]:
        """Deterministically merge one round's solutions into ``assignments``.

        Walks ``order`` (ascending group id, prioritised groups first) and
        accepts each group's solution only if the mixed package — accepted
        groups' actual tuples plus the remaining groups' representatives —
        still satisfies every global constraint.  The first feasible candidate
        always merges: its ILP enforced exactly the residual of the unchanged
        round context, so a round makes progress whenever any pending group
        is refinable.  Rejected groups are deferred to the next round.

        Returns ``(accepted group ids, infeasible group ids)``; mutates
        ``assignments`` in place.
        """
        # Constraint-row totals of the current mix: every assignment's actual
        # tuples plus every unassigned pending group's representatives.
        mix = np.zeros(linearisation.num_constraints)
        for assignment in assignments.values():
            mix += self._assignment_contribution(linearisation, assignment)
        for gid in pending:
            mix += sketch_multiplicities[gid] * group_means["constraints"][gid]

        accepted: list[int] = []
        infeasible: list[int] = []
        for gid in order:
            result = results[gid]
            if result.status is SolverStatus.INFEASIBLE:
                infeasible.append(gid)
                continue
            if result.status is SolverStatus.CAPACITY_EXCEEDED:
                raise SolverCapacityError(
                    f"refine problem for group {gid} exceeds solver capacity"
                )
            if not result.has_solution:
                raise EvaluationError(
                    f"refine solve for group {gid} failed with status {result.status.value}"
                )
            values = np.rint(result.values).astype(np.int64)
            assignment = {
                int(row): int(values[position])
                for position, row in enumerate(group_info[gid])
                if values[position] > 0
            }
            candidate = (
                mix
                - sketch_multiplicities[gid] * group_means["constraints"][gid]
                + self._assignment_contribution(linearisation, assignment)
            )
            if accepted and not self._mix_feasible(linearisation, candidate):
                stats.merge_deferrals += 1
                continue
            mix = candidate
            assignments[gid] = assignment
            accepted.append(gid)
        return accepted, infeasible

    @staticmethod
    def _assignment_contribution(
        linearisation: _Linearisation, assignment: dict[int, int]
    ) -> np.ndarray:
        """Constraint-row totals contributed by one group's tuple assignment."""
        if not assignment:
            return np.zeros(linearisation.num_constraints)
        rows = np.fromiter(assignment.keys(), dtype=np.int64, count=len(assignment))
        multiplicities = np.fromiter(
            assignment.values(), dtype=np.float64, count=len(assignment)
        )
        return linearisation.constraint_matrix[:, rows] @ multiplicities

    @staticmethod
    def _mix_feasible(
        linearisation: _Linearisation, mix: np.ndarray, tolerance: float = 1e-6
    ) -> bool:
        """Whether the mixed package satisfies every global constraint.

        Uses a relative tolerance so legitimate solver-precision noise on
        large right-hand sides is not mistaken for a violation.
        """
        for row_number, constraint_row in enumerate(linearisation.constraint_rows):
            value = float(mix[row_number])
            rhs = constraint_row.rhs
            slack = tolerance * max(1.0, abs(rhs))
            if constraint_row.sense is ConstraintSense.LE:
                if value > rhs + slack:
                    return False
            elif constraint_row.sense is ConstraintSense.GE:
                if value < rhs - slack:
                    return False
            else:
                if abs(value - rhs) > slack:
                    return False
        return True

    def _can_ship_solver(self) -> bool:
        """Whether the configured solver can be pickled into worker processes.

        Probed once per evaluator; a non-picklable black-box solver silently
        degrades the refine batches to the (bit-identical) serial path.
        """
        if self._solver_shippable is None:
            try:
                pickle.dumps(self.solver)
                self._solver_shippable = True
            except Exception:
                self._solver_shippable = False
        return self._solver_shippable

    def _absorb_task_stats(self, stats_obj) -> None:
        """Fold one solve task's solver statistics into the running totals."""
        if stats_obj is None:
            return
        self.last_stats.solver_lp_solves += stats_obj.lp_solves
        self.last_stats.solver_simplex_iterations += stats_obj.simplex_iterations
        self.last_stats.solver_warm_start_hits += stats_obj.warm_start_hits
        self.last_stats.vars_fixed += getattr(stats_obj, "vars_fixed", 0)
        self.last_stats.rows_removed += getattr(stats_obj, "rows_removed", 0)
        self.last_stats.presolve_ms += getattr(stats_obj, "presolve_ms", 0.0)
