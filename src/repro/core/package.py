"""The package answer object.

A package is a multiset of tuples from the input relation (Section 2 of the
paper).  :class:`Package` stores it compactly as parallel arrays of row
indices and multiplicities, plus a reference to the source table so that
aggregates and the objective can be re-evaluated, and so that the package can
be materialised back into a relational :class:`~repro.dataset.table.Table`
(the paper's "package as relation" representation).
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.dataset.table import Table
from repro.db.aggregates import AggregateFunction
from repro.errors import EvaluationError


class Package:
    """A multiset of tuples drawn from a source table."""

    __slots__ = ("_table", "_indices", "_multiplicities")

    def __init__(
        self,
        table: Table,
        indices: np.ndarray | list[int],
        multiplicities: np.ndarray | list[int] | None = None,
    ):
        indices = np.asarray(indices, dtype=np.int64)
        if multiplicities is None:
            multiplicities = np.ones(len(indices), dtype=np.int64)
        else:
            multiplicities = np.asarray(multiplicities, dtype=np.int64)
        if indices.shape != multiplicities.shape:
            raise EvaluationError("indices and multiplicities must have the same length")
        if len(indices) and (indices.min() < 0 or indices.max() >= table.num_rows):
            raise EvaluationError("package references a row outside the source table")
        if (multiplicities < 0).any():
            raise EvaluationError("multiplicities must be non-negative")
        keep = multiplicities > 0
        self._table = table
        self._indices = indices[keep]
        self._multiplicities = multiplicities[keep]

    # -- construction ------------------------------------------------------------------

    @classmethod
    def empty(cls, table: Table) -> "Package":
        """The empty package over ``table``."""
        return cls(table, np.empty(0, dtype=np.int64))

    @classmethod
    def from_solution_values(cls, table: Table, values: np.ndarray, indices: np.ndarray) -> "Package":
        """Build a package from ILP variable values.

        Args:
            table: The source relation.
            values: Solver values, one per variable.
            indices: For each variable, the source-table row it represents.
        """
        multiplicities = np.rint(np.asarray(values, dtype=np.float64)).astype(np.int64)
        return cls(table, np.asarray(indices, dtype=np.int64), multiplicities)

    @classmethod
    def from_multiplicity_map(cls, table: Table, multiplicities: Mapping[int, int]) -> "Package":
        """Build a package from a ``row index -> multiplicity`` mapping."""
        if not multiplicities:
            return cls.empty(table)
        indices = np.array(sorted(multiplicities), dtype=np.int64)
        counts = np.array([multiplicities[i] for i in indices], dtype=np.int64)
        return cls(table, indices, counts)

    # -- basic accessors -----------------------------------------------------------------

    @property
    def table(self) -> Table:
        """The source relation this package draws tuples from."""
        return self._table

    @property
    def indices(self) -> np.ndarray:
        """Distinct row indices present in the package."""
        return self._indices

    @property
    def multiplicities(self) -> np.ndarray:
        """Multiplicity of each row in :attr:`indices` (all >= 1)."""
        return self._multiplicities

    @property
    def cardinality(self) -> int:
        """Total number of tuples counting repetitions (COUNT(P.*))."""
        return int(self._multiplicities.sum())

    @property
    def num_distinct(self) -> int:
        """Number of distinct source rows in the package."""
        return len(self._indices)

    @property
    def is_empty(self) -> bool:
        return len(self._indices) == 0

    @property
    def max_multiplicity(self) -> int:
        """Largest multiplicity of any tuple (0 for the empty package)."""
        return int(self._multiplicities.max()) if len(self._multiplicities) else 0

    def multiplicity_of(self, row_index: int) -> int:
        """Return how many times source row ``row_index`` appears."""
        positions = np.nonzero(self._indices == row_index)[0]
        if not len(positions):
            return 0
        return int(self._multiplicities[positions[0]])

    def as_multiplicity_map(self) -> dict[int, int]:
        """Return the package as a ``row index -> multiplicity`` dict."""
        return {int(i): int(m) for i, m in zip(self._indices, self._multiplicities)}

    def __len__(self) -> int:
        return self.cardinality

    def __iter__(self) -> Iterator[int]:
        """Iterate over row indices, repeating each according to its multiplicity."""
        for index, multiplicity in zip(self._indices, self._multiplicities):
            for _ in range(int(multiplicity)):
                yield int(index)

    # -- aggregation ----------------------------------------------------------------------

    def aggregate(
        self,
        function: AggregateFunction,
        column: str | None = None,
        row_mask: np.ndarray | None = None,
    ) -> float:
        """Compute an aggregate over the package.

        Args:
            function: COUNT, SUM, AVG, MIN or MAX.
            column: Target column (ignored for COUNT).
            row_mask: Optional boolean mask over the *source table* rows
                restricting which tuples contribute (the sub-query filter
                form of PaQL).
        """
        multiplicities = self._multiplicities.astype(np.float64)
        if row_mask is not None:
            selected = np.asarray(row_mask, dtype=bool)[self._indices]
            multiplicities = multiplicities * selected
        if function is AggregateFunction.COUNT:
            return float(multiplicities.sum())
        if column is None:
            raise EvaluationError(f"{function.value} requires a column")
        values = self._table.numeric_column(column)[self._indices]
        if function is AggregateFunction.SUM:
            return float(np.dot(values, multiplicities))
        if function is AggregateFunction.AVG:
            total = multiplicities.sum()
            return float(np.dot(values, multiplicities) / total) if total else float("nan")
        active = multiplicities > 0
        if not active.any():
            return float("nan")
        return float(values[active].min() if function is AggregateFunction.MIN else values[active].max())

    def sum(self, column: str) -> float:
        """Shorthand for ``aggregate(SUM, column)``."""
        return self.aggregate(AggregateFunction.SUM, column)

    def count(self) -> float:
        """Shorthand for ``aggregate(COUNT)``."""
        return self.aggregate(AggregateFunction.COUNT)

    # -- conversion ------------------------------------------------------------------------

    def materialize(self, name: str = "package") -> Table:
        """Materialise the package as a table with one row per tuple occurrence."""
        expanded = np.repeat(self._indices, self._multiplicities)
        return self._table.take(expanded, name=name)

    def combine(self, other: "Package") -> "Package":
        """Return the multiset union of this package with ``other``.

        Both packages must reference the same source table.
        """
        if other._table is not self._table:
            raise EvaluationError("cannot combine packages over different tables")
        merged = self.as_multiplicity_map()
        for index, multiplicity in other.as_multiplicity_map().items():
            merged[index] = merged.get(index, 0) + multiplicity
        return Package.from_multiplicity_map(self._table, merged)

    def without_rows(self, row_indices: np.ndarray | list[int]) -> "Package":
        """Return a copy of the package with all occurrences of the given rows removed."""
        drop = set(int(i) for i in np.asarray(row_indices, dtype=np.int64))
        kept = {i: m for i, m in self.as_multiplicity_map().items() if i not in drop}
        return Package.from_multiplicity_map(self._table, kept)

    def restricted_to_rows(self, row_indices: np.ndarray | list[int]) -> "Package":
        """Return the sub-package containing only the given source rows."""
        keep = set(int(i) for i in np.asarray(row_indices, dtype=np.int64))
        kept = {i: m for i, m in self.as_multiplicity_map().items() if i in keep}
        return Package.from_multiplicity_map(self._table, kept)

    # -- equality / repr ---------------------------------------------------------------------

    def same_contents(self, other: "Package") -> bool:
        """Whether both packages contain exactly the same tuples with the same multiplicities."""
        return (
            self._table is other._table
            and self.as_multiplicity_map() == other.as_multiplicity_map()
        )

    def __repr__(self) -> str:
        return (
            f"Package(cardinality={self.cardinality}, distinct={self.num_distinct}, "
            f"table={self._table.name!r})"
        )
