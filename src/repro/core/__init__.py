"""Core package-query machinery: the paper's primary contribution.

* :class:`~repro.core.package.Package` — the answer object (a multiset of
  tuples from the input relation),
* :mod:`~repro.core.translator` — the PaQL→ILP translation rules of
  Section 3.1,
* :class:`~repro.core.direct.DirectEvaluator` — the DIRECT strategy of
  Section 3.2,
* :class:`~repro.core.sketchrefine.SketchRefineEvaluator` — the scalable
  SKETCHREFINE strategy of Section 4,
* :class:`~repro.core.naive.NaiveSelfJoinEvaluator` — the exhaustive
  self-join/enumeration baseline of Figure 1,
* :class:`~repro.core.engine.PackageQueryEngine` — the user-facing facade
  that ties catalog, parser, validator, partitionings and evaluators together,
* :class:`~repro.core.cache.PackageCache` — delta-aware result caching keyed
  on canonical query fingerprints, with per-group revalidation for
  SKETCHREFINE answers.
"""

from repro.core.cache import CacheEntry, CacheLookup, CacheStats, PackageCache
from repro.core.package import Package
from repro.core.translator import IlpTranslation, translate_query
from repro.core.base_relations import compute_base_relation
from repro.core.direct import DirectEvaluator
from repro.core.naive import NaiveSelfJoinEvaluator
from repro.core.sketchrefine import SketchRefineEvaluator, SketchRefineConfig
from repro.core.infeasibility import (
    DropPartitioningAttributes,
    FalseInfeasibilityResolver,
    FurtherPartitioning,
    IterativeGroupMerging,
)
from repro.core.engine import EvaluationResult, PackageQueryEngine
from repro.core.validation import check_package, objective_value

__all__ = [
    "Package",
    "PackageCache",
    "CacheEntry",
    "CacheLookup",
    "CacheStats",
    "IlpTranslation",
    "translate_query",
    "compute_base_relation",
    "DirectEvaluator",
    "NaiveSelfJoinEvaluator",
    "SketchRefineEvaluator",
    "SketchRefineConfig",
    "FalseInfeasibilityResolver",
    "FurtherPartitioning",
    "DropPartitioningAttributes",
    "IterativeGroupMerging",
    "PackageQueryEngine",
    "EvaluationResult",
    "check_package",
    "objective_value",
]
