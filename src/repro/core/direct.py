"""The DIRECT evaluation strategy (Section 3.2 of the paper).

DIRECT evaluates a package query in three steps:

1. translate the PaQL query to an ILP (Section 3.1 rules),
2. compute the base relations (done inside the translation, which creates
   variables only for tuples satisfying the WHERE clause), and
3. hand the ILP to the black-box solver and convert the variable assignment
   back into a package.

DIRECT is exact but does not scale: the solver must hold the whole problem,
so it can fail on large or hard instances — those failures surface here as
:class:`~repro.errors.SolverCapacityError` / timeout statuses, exactly the
regime the paper reports in Figure 5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.package import Package
from repro.core.translator import IlpTranslation, translate_query
from repro.dataset.table import Table
from repro.errors import (
    EvaluationError,
    InfeasiblePackageQueryError,
    SolverCapacityError,
    SolverTimeoutError,
)
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.status import Solution, SolveStats, SolverStatus
from repro.paql.ast import PackageQuery


@dataclass
class DirectStats:
    """Timing and size statistics for a DIRECT evaluation."""

    translation_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    num_variables: int = 0
    num_constraints: int = 0
    constraint_nnz: int = 0
    """Structural non-zeros of the translated constraint matrix."""
    constraint_storage_bytes: int = 0
    """Bytes held by the matrix-form constraint storage (CSR or dense)."""
    matrix_is_sparse: bool = False
    """Whether the matrix form chose CSR storage over the dense fallback."""
    vars_fixed: int = 0
    """Columns eliminated by the solver's root presolve (0 when disabled)."""
    rows_removed: int = 0
    """Constraint rows removed by the solver's root presolve."""
    presolve_ms: float = 0.0
    """Milliseconds spent in the root presolve."""
    solver_status: SolverStatus | None = None
    solve_stats: SolveStats | None = None
    """The solver's own statistics (nodes, LP solves, warm-start hits, …)."""


class DirectEvaluator:
    """Exact package-query evaluation through a single ILP solve."""

    def __init__(self, solver=None):
        """Args:
            solver: Any object with ``solve(IlpModel) -> Solution``; defaults
                to :class:`~repro.ilp.branch_and_bound.BranchAndBoundSolver`.
        """
        self.solver = solver or BranchAndBoundSolver()
        self.last_stats = DirectStats()

    def evaluate(self, table: Table, query: PackageQuery) -> Package:
        """Return the optimal package for ``query`` over ``table``.

        Raises:
            InfeasiblePackageQueryError: If no package satisfies the query.
            SolverCapacityError: If the problem exceeds the solver's capacity.
            SolverTimeoutError: If the solver hit its time budget without an
                incumbent.
        """
        start = time.perf_counter()
        translation = translate_query(table, query)
        # Exporting the matrix form here is free for the solver (the export is
        # memoized on the model) and lets the stats report the storage the
        # solve actually used.
        form = translation.model.to_matrix()
        translated_at = time.perf_counter()

        solution = self.solver.solve(translation.model)
        solved_at = time.perf_counter()

        solve_stats = solution.stats
        self.last_stats = DirectStats(
            translation_seconds=translated_at - start,
            solve_seconds=solved_at - translated_at,
            total_seconds=solved_at - start,
            num_variables=translation.num_variables,
            num_constraints=translation.model.num_constraints,
            constraint_nnz=form.nnz,
            constraint_storage_bytes=form.constraint_storage_bytes(),
            matrix_is_sparse=form.is_sparse,
            vars_fixed=getattr(solve_stats, "vars_fixed", 0),
            rows_removed=getattr(solve_stats, "rows_removed", 0),
            presolve_ms=getattr(solve_stats, "presolve_ms", 0.0),
            solver_status=solution.status,
            solve_stats=solve_stats,
        )
        return self._package_from_solution(translation, solution)

    def evaluate_translation(self, translation: IlpTranslation) -> Package:
        """Solve an already-translated query (used by SKETCHREFINE internally)."""
        solution = self.solver.solve(translation.model)
        return self._package_from_solution(translation, solution)

    @staticmethod
    def _package_from_solution(translation: IlpTranslation, solution: Solution) -> Package:
        if solution.status is SolverStatus.INFEASIBLE:
            raise InfeasiblePackageQueryError(
                f"query {translation.query.name or translation.model.name!r} is infeasible"
            )
        if solution.status is SolverStatus.CAPACITY_EXCEEDED:
            raise SolverCapacityError(
                f"problem with {translation.num_variables} variables exceeds solver capacity"
            )
        if solution.status is SolverStatus.TIME_LIMIT and not solution.has_solution:
            raise SolverTimeoutError("solver hit its time limit without finding a package")
        if solution.status is SolverStatus.UNBOUNDED:
            raise EvaluationError(
                "the package query is unbounded: add a repetition or cardinality constraint"
            )
        if not solution.has_solution:
            raise EvaluationError(f"solver failed with status {solution.status.value}")
        return translation.package_from_solution(solution)
