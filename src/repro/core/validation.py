"""Package feasibility checking and objective evaluation.

These helpers re-evaluate a candidate package directly against the PaQL query
semantics (not against the ILP), which makes them an independent check of the
whole translation/solver pipeline: a package returned by any evaluator must
pass :func:`check_package`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.aggregates import AggregateFunction
from repro.errors import EvaluationError
from repro.core.package import Package
from repro.paql.ast import (
    AggregateRef,
    ConstraintSenseKeyword,
    GlobalConstraint,
    LinearAggregateExpression,
    ObjectiveDirection,
    PackageQuery,
)

_DEFAULT_TOLERANCE = 1e-6


@dataclass
class ConstraintCheck:
    """Result of checking one global constraint.

    ``violation`` uses the same relative tolerance as ``satisfied``: a
    within-tolerance residual is reported as 0.0, so the two fields never
    disagree about whether the constraint holds.
    """

    constraint: GlobalConstraint
    value: float
    satisfied: bool
    violation: float


@dataclass
class PackageCheck:
    """Full feasibility report for a package against a query."""

    feasible: bool
    constraint_checks: list[ConstraintCheck] = field(default_factory=list)
    base_predicate_ok: bool = True
    repetition_ok: bool = True

    @property
    def violated_constraints(self) -> list[ConstraintCheck]:
        return [c for c in self.constraint_checks if not c.satisfied]


def evaluate_linear_expression(
    package: Package, expression: LinearAggregateExpression
) -> float:
    """Evaluate a linear combination of package aggregates."""
    total = expression.constant
    for coefficient, aggregate in expression.terms:
        total += coefficient * _evaluate_aggregate(package, aggregate)
    return float(total)


def objective_value(package: Package, query: PackageQuery) -> float:
    """Evaluate the query objective on ``package`` (NaN if the query has none)."""
    if query.objective is None:
        return float("nan")
    return evaluate_linear_expression(package, query.objective.expression)


def check_package(
    package: Package, query: PackageQuery, tolerance: float = _DEFAULT_TOLERANCE
) -> PackageCheck:
    """Check whether ``package`` is a feasible answer to ``query``.

    Verifies base predicates, the repetition bound, and every global
    constraint, returning a detailed report.
    """
    base_ok = _check_base_predicate(package, query)
    repetition_ok = (
        query.max_multiplicity is None or package.max_multiplicity <= query.max_multiplicity
    )

    checks: list[ConstraintCheck] = []
    for constraint in query.global_constraints:
        value = evaluate_linear_expression(package, constraint.expression)
        satisfied, violation = _check_bound(constraint, value, tolerance)
        checks.append(ConstraintCheck(constraint, value, satisfied, violation))

    feasible = base_ok and repetition_ok and all(c.satisfied for c in checks)
    return PackageCheck(feasible, checks, base_ok, repetition_ok)


def is_feasible(package: Package, query: PackageQuery, tolerance: float = _DEFAULT_TOLERANCE) -> bool:
    """Shorthand for ``check_package(...).feasible``."""
    return check_package(package, query, tolerance).feasible


def approximation_ratio(
    sketchrefine_objective: float, direct_objective: float, direction: ObjectiveDirection
) -> float:
    """The paper's empirical approximation ratio (Section 5.1, Metrics).

    For maximisation queries the ratio is ``direct / sketchrefine``; for
    minimisation queries it is ``sketchrefine / direct``.  A value of 1 means
    SKETCHREFINE matched DIRECT; values below 1 mean it did better (possible
    because solvers use internal heuristics).
    """
    if direction is ObjectiveDirection.MAXIMIZE:
        numerator, denominator = direct_objective, sketchrefine_objective
    else:
        numerator, denominator = sketchrefine_objective, direct_objective
    # Exact-zero checks guard the division below — they are not feasibility
    # comparisons, so the tolerance rule does not apply.
    if denominator == 0:  # repro-lint: disable=tolerance (division guard)
        if numerator == 0:  # repro-lint: disable=tolerance (division guard)
            return 1.0
        return float("inf")
    return float(numerator / denominator)


def _evaluate_aggregate(package: Package, aggregate: AggregateRef) -> float:
    row_mask = None
    if aggregate.filter is not None:
        row_mask = np.asarray(aggregate.filter.evaluate(package.table), dtype=bool)
    return package.aggregate(aggregate.function, aggregate.column, row_mask)


def _check_base_predicate(package: Package, query: PackageQuery) -> bool:
    if query.base_predicate is None or package.is_empty:
        return True
    mask = np.asarray(query.base_predicate.evaluate(package.table), dtype=bool)
    return bool(mask[package.indices].all())


def _check_bound(
    constraint: GlobalConstraint, value: float, tolerance: float
) -> tuple[bool, float]:
    if constraint.sense is ConstraintSenseKeyword.LE:
        violation = max(0.0, value - constraint.lower)
    elif constraint.sense is ConstraintSenseKeyword.GE:
        violation = max(0.0, constraint.lower - value)
    elif constraint.sense is ConstraintSenseKeyword.EQ:
        violation = abs(value - constraint.lower)
    elif constraint.sense is ConstraintSenseKeyword.BETWEEN:
        if constraint.upper is None:
            raise EvaluationError("BETWEEN constraint missing upper bound")
        violation = max(0.0, constraint.lower - value, value - constraint.upper)
    else:  # pragma: no cover - exhaustive enum
        raise EvaluationError(f"unknown constraint sense {constraint.sense}")
    # The tolerance is relative to the constraint's magnitude: a SUM over
    # thousands of tuples accumulates rounding error proportional to its
    # value, so an absolute 1e-6 would false-flag packages any solver calls
    # feasible.  (Small constraints keep the absolute tolerance: scale >= 1.)
    scale = max(1.0, abs(value), abs(constraint.lower), abs(constraint.upper or 0.0))
    satisfied = violation <= tolerance * scale
    return satisfied, 0.0 if satisfied else violation
