"""The user-facing package-query engine facade.

:class:`PackageQueryEngine` ties everything together the way the paper's
prototype sits on top of PostgreSQL + CPLEX:

* tables live in a :class:`~repro.db.catalog.Database` catalog,
* offline partitionings are built once per table and registered in the catalog,
* queries arrive either as PaQL text or as :class:`~repro.paql.ast.PackageQuery`
  objects built with the fluent builder,
* evaluation picks DIRECT, SKETCHREFINE or the naïve baseline, and the result
  is returned with timing, feasibility and objective metadata.

Example::

    engine = PackageQueryEngine()
    engine.register_table(recipes)
    engine.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=50)
    result = engine.execute(PAQL_TEXT, method="sketchrefine")
    print(result.package.materialize())
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.core.direct import DirectEvaluator
from repro.core.naive import NaiveSelfJoinEvaluator
from repro.core.package import Package
from repro.core.sketchrefine import SketchRefineConfig, SketchRefineEvaluator
from repro.core.validation import check_package, objective_value
from repro.dataset.table import Table
from repro.db.catalog import Database
from repro.errors import CatalogError, EvaluationError
from repro.paql.ast import PackageQuery
from repro.paql.parser import parse_paql
from repro.paql.validator import validate_query
from repro.partition.kdtree import KdTreePartitioner
from repro.partition.kmeans import KMeansPartitioner
from repro.partition.partitioning import Partitioning
from repro.partition.quadtree import QuadTreePartitioner


class EvaluationMethod(enum.Enum):
    """Which evaluation strategy to use."""

    AUTO = "auto"
    DIRECT = "direct"
    SKETCH_REFINE = "sketchrefine"
    NAIVE = "naive"


@dataclass
class EvaluationResult:
    """Outcome of evaluating one package query."""

    package: Package
    query: PackageQuery
    method: EvaluationMethod
    objective: float
    wall_seconds: float
    feasible: bool
    details: dict = field(default_factory=dict)

    def materialize(self, name: str = "package") -> Table:
        """Materialise the answer package as a relational table."""
        return self.package.materialize(name)


class PackageQueryEngine:
    """Facade over the catalog, the PaQL front-end and the evaluators."""

    # SKETCHREFINE needs a partitioning; below this many tuples DIRECT is used
    # by AUTO regardless, because the whole problem comfortably fits the solver.
    _AUTO_DIRECT_THRESHOLD = 2_000

    def __init__(
        self,
        database: Database | None = None,
        solver=None,
        sketchrefine_config: SketchRefineConfig | None = None,
    ):
        self.database = database or Database()
        self._solver = solver
        self._direct = DirectEvaluator(solver=solver)
        self._sketchrefine = SketchRefineEvaluator(solver=solver, config=sketchrefine_config)
        self._naive = NaiveSelfJoinEvaluator()

    # -- catalog management ---------------------------------------------------------------

    def register_table(self, table: Table, name: str | None = None, replace: bool = False) -> Table:
        """Add a table to the engine's catalog."""
        return self.database.create_table(table, name=name, replace=replace)

    def table(self, name: str) -> Table:
        """Fetch a table from the catalog."""
        return self.database.table(name)

    def build_partitioning(
        self,
        table_name: str,
        attributes: list[str],
        size_threshold: int,
        radius_limit: float | None = None,
        method: str = "quadtree",
        label: str = "default",
    ) -> Partitioning:
        """Build and register an offline partitioning for ``table_name``.

        Args:
            table_name: Catalog name of the table to partition.
            attributes: Numeric partitioning attributes (ideally a superset of
                the workload's query attributes, per Section 5.2.3).
            size_threshold: τ — the per-group size cap.
            radius_limit: ω — optional per-group radius cap (Equation 1).
            method: ``"quadtree"`` (the paper's method), ``"kdtree"`` or
                ``"kmeans"``.
            label: Name under which the partitioning is registered, so several
                partitionings of the same table can coexist.
        """
        table = self.database.table(table_name)
        if method == "quadtree":
            partitioner = QuadTreePartitioner(size_threshold, radius_limit)
        elif method == "kdtree":
            partitioner = KdTreePartitioner(size_threshold, radius_limit)
        elif method == "kmeans":
            partitioner = KMeansPartitioner(size_threshold)
        else:
            raise EvaluationError(f"unknown partitioning method {method!r}")
        partitioning = partitioner.partition(table, attributes)
        self.database.register_partitioning(table_name, partitioning, label=label)
        return partitioning

    def register_partitioning(
        self, table_name: str, partitioning: Partitioning, label: str = "default"
    ) -> None:
        """Register a partitioning built elsewhere (e.g. loaded from disk)."""
        self.database.register_partitioning(table_name, partitioning, label=label)

    # -- query execution -----------------------------------------------------------------------

    def parse(self, text: str) -> PackageQuery:
        """Parse PaQL text (without validating it against a table)."""
        return parse_paql(text)

    def execute(
        self,
        query: str | PackageQuery,
        method: EvaluationMethod | str = EvaluationMethod.AUTO,
        partitioning_label: str = "default",
    ) -> EvaluationResult:
        """Evaluate a package query and return the answer package with metadata.

        Args:
            query: PaQL text or an already-built :class:`PackageQuery`.
            method: Evaluation strategy; AUTO picks SKETCHREFINE when a
                partitioning is registered and the table is large, otherwise
                DIRECT.
            partitioning_label: Which registered partitioning SKETCHREFINE uses.
        """
        if isinstance(query, str):
            query = parse_paql(query)
        if isinstance(method, str):
            method = EvaluationMethod(method)

        table = self.database.table(query.relation)
        validate_query(query, table.schema)
        method = self._resolve_method(method, query, partitioning_label)

        start = time.perf_counter()
        details: dict = {}
        if method is EvaluationMethod.DIRECT:
            package = self._direct.evaluate(table, query)
            details["direct_stats"] = self._direct.last_stats
        elif method is EvaluationMethod.SKETCH_REFINE:
            partitioning = self._partitioning_for(query, partitioning_label)
            package = self._sketchrefine.evaluate(table, query, partitioning)
            details["sketchrefine_stats"] = self._sketchrefine.last_stats
        elif method is EvaluationMethod.NAIVE:
            package = self._naive.evaluate(table, query)
            details["naive_stats"] = self._naive.last_stats
        else:  # pragma: no cover - AUTO is resolved above
            raise EvaluationError(f"unresolved evaluation method {method}")
        wall_seconds = time.perf_counter() - start

        report = check_package(package, query)
        return EvaluationResult(
            package=package,
            query=query,
            method=method,
            objective=objective_value(package, query),
            wall_seconds=wall_seconds,
            feasible=report.feasible,
            details=details,
        )

    # -- internals ----------------------------------------------------------------------------------

    def _resolve_method(
        self, method: EvaluationMethod, query: PackageQuery, partitioning_label: str
    ) -> EvaluationMethod:
        if method is not EvaluationMethod.AUTO:
            return method
        table = self.database.table(query.relation)
        has_partitioning = self.database.has_partitioning(query.relation, partitioning_label)
        if has_partitioning and table.num_rows > self._AUTO_DIRECT_THRESHOLD:
            return EvaluationMethod.SKETCH_REFINE
        return EvaluationMethod.DIRECT

    def _partitioning_for(self, query: PackageQuery, label: str) -> Partitioning:
        try:
            return self.database.partitioning(query.relation, label)
        except CatalogError as exc:
            raise EvaluationError(
                f"SKETCHREFINE needs an offline partitioning for table {query.relation!r}; "
                "call build_partitioning() first"
            ) from exc
