"""The user-facing package-query engine facade.

:class:`PackageQueryEngine` ties everything together the way the paper's
prototype sits on top of PostgreSQL + CPLEX:

* tables live in a :class:`~repro.db.catalog.Database` catalog,
* offline partitionings are built once per table and registered in the catalog,
* the base relations are *dynamic*: :meth:`PackageQueryEngine.update_table`
  absorbs inserts/deletes as one versioned
  :class:`~repro.dataset.table.TableDelta`, and every registered partitioning
  is either maintained through the delta incrementally (the default
  ``"maintain"`` policy — τ/ω guarantees preserved, no full re-partition) or
  left stale (``"stale"`` policy) until rebuilt; AUTO refuses stale
  partitionings and falls back to DIRECT, while an explicit SKETCHREFINE
  request over a stale partitioning raises
  :class:`~repro.errors.StalePartitioningError`,
* queries arrive either as PaQL text or as :class:`~repro.paql.ast.PackageQuery`
  objects built with the fluent builder,
* evaluation picks DIRECT, SKETCHREFINE or the naïve baseline, and the result
  is returned with timing, feasibility and objective metadata,
* repeated traffic is served from a delta-aware
  :class:`~repro.core.cache.PackageCache`: answers are keyed on a canonical
  query fingerprint, DIRECT/NAIVE entries invalidate on any table version
  bump, and a SKETCHREFINE package whose groups an update burst missed is
  revalidated with a cheap feasibility check instead of re-solved
  (``execute(..., cache="use"|"bypass"|"refresh")``).

Example::

    engine = PackageQueryEngine()
    engine.register_table(recipes)
    engine.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=50)
    result = engine.execute(PAQL_TEXT, method="sketchrefine")
    print(result.package.materialize())

    # The data plane stays live: updates flow in, partitionings follow.
    engine.update_table("recipes", insert=new_recipes)      # version + 1
    engine.update_table("recipes", delete=stale_row_ids)    # version + 2
    result = engine.execute(PAQL_TEXT, method="sketchrefine")  # still valid
"""

from __future__ import annotations

import dataclasses
import enum
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.cache import CACHE_MODES, PackageCache
from repro.core.direct import DirectEvaluator
from repro.core.naive import NaiveSelfJoinEvaluator
from repro.core.package import Package
from repro.core.sketchrefine import SketchRefineConfig, SketchRefineEvaluator
from repro.core.validation import check_package, objective_value
from repro.dataset.table import Table, TableDelta
from repro.db.catalog import MAINTENANCE_POLICIES, Database, TableUpdateResult
from repro.db.snapshot import SnapshotHandle
from repro.errors import CatalogError, EvaluationError, SnapshotError, StalePartitioningError
from repro.paql.ast import PackageQuery
from repro.paql.fingerprint import query_fingerprint
from repro.paql.parser import parse_paql
from repro.paql.validator import validate_query
from repro.partition.maintenance import is_known_method, make_partitioner
from repro.partition.partitioning import Partitioning


class EvaluationMethod(enum.Enum):
    """Which evaluation strategy to use."""

    AUTO = "auto"
    DIRECT = "direct"
    SKETCH_REFINE = "sketchrefine"
    NAIVE = "naive"


@dataclass
class EvaluationResult:
    """Outcome of evaluating one package query."""

    package: Package
    query: PackageQuery
    method: EvaluationMethod
    objective: float
    wall_seconds: float
    feasible: bool
    details: dict = field(default_factory=dict)

    def materialize(self, name: str = "package") -> Table:
        """Materialise the answer package as a relational table."""
        return self.package.materialize(name)


class PackageQueryEngine:
    """Facade over the catalog, the PaQL front-end and the evaluators.

    Args:
        database: Catalog to use (default: a fresh empty one).
        solver: Black-box ILP solver shared by the evaluators.
        sketchrefine_config: Tuning knobs for SKETCHREFINE.
        auto_direct_threshold: SKETCHREFINE needs a partitioning; at or below
            this many tuples AUTO uses DIRECT regardless, because the whole
            problem comfortably fits the solver.
        cache: Result cache consulted by :meth:`execute` (default: a fresh
            :class:`~repro.core.cache.PackageCache`).  It is registered with
            the catalog so every :meth:`update_table` feeds it coalesced
            deltas and touched-group sets for delta-aware invalidation.
        workers: Worker processes for SKETCHREFINE's parallel refine batches
            (overrides ``sketchrefine_config.workers`` when given; ``None``
            defers to the config / the ``REPRO_WORKERS`` environment
            variable).  Answers are bit-identical across worker counts.
    """

    def __init__(
        self,
        database: Database | None = None,
        solver=None,
        sketchrefine_config: SketchRefineConfig | None = None,
        auto_direct_threshold: int = 2_000,
        cache: PackageCache | None = None,
        workers: int | None = None,
    ):
        # `database or ...` would discard a passed-in *empty* catalog
        # (Database.__len__ makes it falsy) along with its configuration.
        self.database = database if database is not None else Database()
        self.auto_direct_threshold = int(auto_direct_threshold)
        self.cache = cache if cache is not None else PackageCache()
        self.database.register_cache(self.cache)
        self._solver = solver
        if workers is not None:
            sketchrefine_config = dataclasses.replace(
                sketchrefine_config or SketchRefineConfig(), workers=workers
            )
        self._direct = DirectEvaluator(solver=solver)
        self._sketchrefine = SketchRefineEvaluator(solver=solver, config=sketchrefine_config)
        self._naive = NaiveSelfJoinEvaluator()

    # -- catalog management ---------------------------------------------------------------

    def register_table(self, table: Table, name: str | None = None, replace: bool = False) -> Table:
        """Add a table to the engine's catalog."""
        return self.database.create_table(table, name=name, replace=replace)

    def table(self, name: str) -> Table:
        """Fetch a table from the catalog."""
        return self.database.table(name)

    def build_partitioning(
        self,
        table_name: str,
        attributes: list[str],
        size_threshold: int,
        radius_limit: float | None = None,
        method: str = "quadtree",
        label: str = "default",
    ) -> Partitioning:
        """Build and register an offline partitioning for ``table_name``.

        Args:
            table_name: Catalog name of the table to partition.
            attributes: Numeric partitioning attributes (ideally a superset of
                the workload's query attributes, per Section 5.2.3).
            size_threshold: τ — the per-group size cap.
            radius_limit: ω — optional per-group radius cap (Equation 1).
            method: ``"quadtree"`` (the paper's method), ``"kdtree"`` or
                ``"kmeans"``.
            label: Name under which the partitioning is registered, so several
                partitionings of the same table can coexist.
        """
        table = self.database.table(table_name)
        if not is_known_method(method):
            raise EvaluationError(f"unknown partitioning method {method!r}")
        # Invalid parameters (e.g. size_threshold < 1) propagate as the
        # partitioner constructors' own PartitioningError.
        partitioner = make_partitioner(method, size_threshold, radius_limit)
        partitioning = partitioner.partition(table, attributes)
        self.database.register_partitioning(table_name, partitioning, label=label)
        return partitioning

    def register_partitioning(
        self, table_name: str, partitioning: Partitioning, label: str = "default"
    ) -> None:
        """Register a partitioning built elsewhere (e.g. loaded from disk)."""
        self.database.register_partitioning(table_name, partitioning, label=label)

    def update_table(
        self,
        table_name: str,
        delta: TableDelta | None = None,
        *,
        insert: Table | Iterable[Sequence | Mapping[str, object]] | None = None,
        delete: np.ndarray | Sequence[int] | None = None,
        policy: str | None = None,
    ) -> TableUpdateResult:
        """Absorb inserts/deletes into a registered table as one version bump.

        Either pass a pre-built :class:`TableDelta`, or describe the change
        with ``insert`` (a table or iterable of rows to append) and/or
        ``delete`` (a boolean mask over the current rows, or row indices);
        both applied together still count as a single new version.

        Every partitioning registered for the table follows the
        ``policy`` — ``"maintain"`` carries it through the delta
        incrementally with its τ/ω guarantees intact, ``"stale"`` leaves it
        at the old version, where AUTO refuses it until it is rebuilt, and
        ``None`` defers to the catalog's ``maintenance_policy`` (which is
        ``"maintain"`` for a default-constructed :class:`Database`).
        Returns the catalog's :class:`TableUpdateResult` with the new table
        and the per-label maintenance statistics.  The engine's result cache
        is notified with the delta and each partitioning's touched-group set,
        so cached answers are invalidated no more than the change requires.
        """
        if delta is not None and (insert is not None or delete is not None):
            raise EvaluationError("pass either a delta or insert/delete rows, not both")
        if policy is not None and policy not in MAINTENANCE_POLICIES:
            raise EvaluationError(
                f"unknown maintenance policy {policy!r} "
                f"(expected one of {MAINTENANCE_POLICIES})"
            )
        if delta is None:
            if insert is None and delete is None:
                raise EvaluationError("update_table needs a delta, insert rows or delete rows")
            table = self.database.table(table_name)
            delta = table.make_delta(insert=insert, delete=delete)
        return self.database.update_table(table_name, delta, policy=policy)

    # -- snapshot reads -------------------------------------------------------------------

    def snapshot(self, names: Iterable[str] | None = None) -> SnapshotHandle:
        """Pin a consistent read view of the catalog's current committed state.

        Queries executed with ``execute(..., snapshot=handle)`` keep seeing
        exactly this moment's ``(table version, partitioning version)`` pairs
        while :meth:`update_table` commits new versions underneath.  Release
        the handle (or use it as a context manager) when done; pinned
        versions are retained until then.
        """
        return self.database.snapshot(names)

    # -- query execution -----------------------------------------------------------------------

    def parse(self, text: str) -> PackageQuery:
        """Parse PaQL text (without validating it against a table)."""
        return parse_paql(text)

    def execute(
        self,
        query: str | PackageQuery,
        method: EvaluationMethod | str = EvaluationMethod.AUTO,
        partitioning_label: str = "default",
        cache: str = "use",
        workers: int | None = None,
        snapshot: SnapshotHandle | None = None,
    ) -> EvaluationResult:
        """Evaluate a package query and return the answer package with metadata.

        Args:
            query: PaQL text or an already-built :class:`PackageQuery`.
            method: Evaluation strategy; AUTO picks SKETCHREFINE when a
                partitioning is registered and the table is large, otherwise
                DIRECT.
            partitioning_label: Which registered partitioning SKETCHREFINE uses.
            workers: Per-call override of the SKETCHREFINE refine worker
                count (``None`` keeps the engine-level setting).  The answer
                is bit-identical for every worker count.
            cache: How to interact with the result cache.  ``"use"`` (default)
                answers from a cached entry when the canonical query
                fingerprint, table version and (for SKETCHREFINE) partitioning
                state still match — entries whose groups a coalesced update
                delta missed are *revalidated* with a cheap feasibility check
                instead of re-solved — and stores the answer on a miss.
                ``"bypass"`` never reads or writes the cache; ``"refresh"``
                re-solves unconditionally and overwrites the entry.
                ``details["cache"]`` reports the per-call status
                (hit/revalidated/miss/bypass), the fingerprint, the solve
                seconds this call spared (0 unless it was served from the
                cache), and — under ``"totals"`` — the cache's cumulative
                counters.
            snapshot: Execute against this pinned
                :class:`~repro.db.snapshot.SnapshotHandle` instead of the
                catalog's current state: the query sees exactly the
                ``(table version, partitioning version)`` pair the snapshot
                pinned, no matter how many updates committed since.  The
                result cache is bypassed (its entries are keyed on *current*
                versions; answering an old view from it, or polluting it
                with one, would both be stale-serving bugs) — see
                ``details["cache"]["reason"]``.
        """
        if isinstance(query, str):
            query = parse_paql(query)
        if isinstance(method, str):
            method = EvaluationMethod(method)
        if cache not in CACHE_MODES:
            raise EvaluationError(
                f"unknown cache mode {cache!r} (expected one of {CACHE_MODES})"
            )
        if snapshot is not None:
            if snapshot.released:
                raise SnapshotError(
                    "cannot execute against a released snapshot; acquire a new one"
                )
            cache = "bypass"

        table = (
            snapshot.table(query.relation)
            if snapshot is not None
            else self.database.table(query.relation)
        )
        validate_query(query, table.schema)
        method, auto_note = self._resolve_method(
            method, query, partitioning_label, snapshot
        )
        # Staleness is an error even when a cached answer exists: serving it
        # would silently mask the stale partitioning the caller asked about.
        partitioning = (
            self._partitioning_for(query, partitioning_label, snapshot)
            if method is EvaluationMethod.SKETCH_REFINE
            else None
        )

        details: dict = {}
        if auto_note is not None:
            details["auto"] = auto_note
        if snapshot is not None:
            details["snapshot"] = {
                "id": snapshot.snapshot_id,
                "table_version": table.version,
            }

        fingerprint = query_fingerprint(query) if cache != "bypass" else None
        label = partitioning_label if method is EvaluationMethod.SKETCH_REFINE else None
        if cache == "use":
            start = time.perf_counter()
            found = self.cache.lookup(
                query,
                fingerprint,
                table,
                query.relation,
                method.value,
                partitioning=partitioning,
                partitioning_label=label,
            )
            if found.found:
                details["cache"] = {
                    "status": found.status,
                    "fingerprint": fingerprint,
                    "saved_solve_seconds": found.saved_solve_seconds,
                    "totals": self.cache.stats_snapshot(),
                }
                wall_seconds = time.perf_counter() - start
                details["timing"] = {
                    "total_ms": wall_seconds * 1000.0,
                    "child_solve_ms": 0.0,
                }
                return EvaluationResult(
                    package=found.package,
                    query=query,
                    method=method,
                    objective=found.objective,
                    wall_seconds=wall_seconds,
                    feasible=found.feasible,
                    details=details,
                )

        start = time.perf_counter()
        child_solve_ms = 0.0
        if method is EvaluationMethod.DIRECT:
            package = self._direct.evaluate(table, query)
            details["direct_stats"] = self._direct.last_stats
        elif method is EvaluationMethod.SKETCH_REFINE:
            package = self._sketchrefine.evaluate(table, query, partitioning, workers=workers)
            details["sketchrefine_stats"] = self._sketchrefine.last_stats
            child_solve_ms = self._sketchrefine.last_stats.child_solve_ms
        elif method is EvaluationMethod.NAIVE:
            package = self._naive.evaluate(table, query)
            details["naive_stats"] = self._naive.last_stats
        else:  # pragma: no cover - AUTO is resolved above
            raise EvaluationError(f"unresolved evaluation method {method}")
        wall_seconds = time.perf_counter() - start
        # Engine wall time is monotonic (perf_counter); solve time spent in
        # worker processes is aggregated separately — under parallel refine
        # the two legitimately diverge (child compute overlaps the wall).
        details["timing"] = {
            "total_ms": wall_seconds * 1000.0,
            "child_solve_ms": child_solve_ms,
        }

        report = check_package(package, query)
        objective = objective_value(package, query)
        if cache != "bypass":
            self.cache.store(
                query,
                fingerprint,
                table,
                query.relation,
                method.value,
                package,
                objective,
                report.feasible,
                wall_seconds,
                partitioning=partitioning,
                partitioning_label=label,
            )
            details["cache"] = {
                "status": "miss" if cache == "use" else "refresh",
                "fingerprint": fingerprint,
                "saved_solve_seconds": 0.0,
                "totals": self.cache.stats_snapshot(),
            }
        else:
            details["cache"] = {"status": "bypass"}
            if snapshot is not None:
                details["cache"]["reason"] = "snapshot-pinned view"
        return EvaluationResult(
            package=package,
            query=query,
            method=method,
            objective=objective,
            wall_seconds=wall_seconds,
            feasible=report.feasible,
            details=details,
        )

    # -- internals ----------------------------------------------------------------------------------

    def _resolve_method(
        self,
        method: EvaluationMethod,
        query: PackageQuery,
        partitioning_label: str,
        snapshot: SnapshotHandle | None = None,
    ) -> tuple[EvaluationMethod, str | None]:
        """Resolve AUTO to a concrete method, with an explanatory note when it
        has to fall back to DIRECT (missing or stale partitioning)."""
        if method is not EvaluationMethod.AUTO:
            return method, None
        name = query.relation
        if snapshot is not None:
            # A snapshot's pinned partitionings are consistent with the pinned
            # table by construction, so staleness cannot arise — only absence.
            table = snapshot.table(name)
            if table.num_rows <= self.auto_direct_threshold:
                return EvaluationMethod.DIRECT, None
            if not snapshot.has_partitioning(name, partitioning_label):
                return EvaluationMethod.DIRECT, (
                    f"no partitioning {partitioning_label!r} pinned for table "
                    f"{name!r} in snapshot {snapshot.snapshot_id}; falling back "
                    "to DIRECT"
                )
            return EvaluationMethod.SKETCH_REFINE, None
        table = self.database.table(name)
        if table.num_rows <= self.auto_direct_threshold:
            return EvaluationMethod.DIRECT, None
        if not self.database.has_partitioning(name, partitioning_label):
            return EvaluationMethod.DIRECT, (
                f"no partitioning {partitioning_label!r} registered for table "
                f"{name!r} ({table.num_rows} rows); falling back to DIRECT — "
                "call build_partitioning() to enable SKETCHREFINE"
            )
        if self.database.is_partitioning_stale(name, partitioning_label):
            partitioning = self.database.partitioning(name, partitioning_label)
            return EvaluationMethod.DIRECT, (
                f"partitioning {partitioning_label!r} for table {name!r} is stale "
                f"(built for version {partitioning.version}, table is at version "
                f"{table.version}); falling back to DIRECT — rebuild it with "
                "build_partitioning()"
            )
        return EvaluationMethod.SKETCH_REFINE, None

    def _partitioning_for(
        self,
        query: PackageQuery,
        label: str,
        snapshot: SnapshotHandle | None = None,
    ) -> Partitioning:
        if snapshot is not None:
            try:
                return snapshot.partitioning(query.relation, label)
            except SnapshotError as exc:
                raise EvaluationError(
                    f"SKETCHREFINE over snapshot {snapshot.snapshot_id} needs a "
                    f"partitioning {label!r} pinned for table {query.relation!r}; "
                    "it was missing or stale when the snapshot was acquired"
                ) from exc
        try:
            partitioning = self.database.partitioning(query.relation, label)
        except CatalogError as exc:
            raise EvaluationError(
                f"SKETCHREFINE needs an offline partitioning for table {query.relation!r}; "
                "call build_partitioning() first"
            ) from exc
        if self.database.is_partitioning_stale(query.relation, label):
            table = self.database.table(query.relation)
            raise StalePartitioningError(
                f"partitioning {label!r} for table {query.relation!r} is stale: it "
                f"describes version {partitioning.version} but the table is at "
                f"version {table.version}; rebuild it with build_partitioning()"
            )
        return partitioning
