"""Base-relation computation (Section 3.1–3.2 of the paper).

Base predicates (the WHERE clause) filter input tuples *before* the ILP is
built: any tuple failing the predicate gets ``x_i = 0`` and can therefore be
eliminated from the problem entirely, which the paper notes "can significantly
reduce the size of the problem".

Filtered aggregates — the sub-query form ``(SELECT COUNT(*) FROM P WHERE
P.carbs > 0)`` — similarly need per-tuple indicator vectors (the paper's
``R_c`` / ``R_p`` base relations); those are produced here too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.table import Table
from repro.db.expressions import Expression
from repro.paql.ast import PackageQuery


@dataclass
class BaseRelation:
    """The tuples eligible to participate in packages for a query.

    Attributes:
        table: The original input relation (never copied).
        eligible_indices: Row indices of the original table that satisfy the
            base predicate, in ascending order.  ILP variables are created for
            exactly these rows.
    """

    table: Table
    eligible_indices: np.ndarray

    @property
    def num_eligible(self) -> int:
        return len(self.eligible_indices)

    def restrict(self, subset: np.ndarray) -> "BaseRelation":
        """Return a base relation restricted to ``subset`` of the original rows."""
        allowed = np.intersect1d(self.eligible_indices, np.asarray(subset, dtype=np.int64))
        return BaseRelation(self.table, allowed)


def compute_base_relation(table: Table, query: PackageQuery) -> BaseRelation:
    """Apply the query's base predicate and return the eligible rows."""
    if query.base_predicate is None:
        return BaseRelation(table, np.arange(table.num_rows, dtype=np.int64))
    mask = np.asarray(query.base_predicate.evaluate(table), dtype=bool)
    return BaseRelation(table, np.nonzero(mask)[0].astype(np.int64))


def indicator_vector(table: Table, condition: Expression, rows: np.ndarray) -> np.ndarray:
    """Return 0/1 indicators of ``condition`` for the given rows of ``table``.

    This implements the paper's indicator base relations (``1_{R_c}(t_i)``)
    used to translate filtered aggregates into linear coefficients.
    """
    mask = np.asarray(condition.evaluate(table), dtype=bool)
    return mask[np.asarray(rows, dtype=np.int64)].astype(np.float64)
