"""Naïve SQL-style baselines for package evaluation (Figure 1 of the paper).

The paper motivates the ILP approach by showing that expressing package
queries in plain SQL is hopeless: a strict-cardinality package of size ``k``
needs a ``k``-way self-join whose cost grows exponentially with ``k``.

Two baselines are provided:

* :class:`NaiveSelfJoinEvaluator` — emulates the multi-way self-join plan:
  it enumerates ordered combinations exactly the way a nested-loops self-join
  with ``R1.pk < R2.pk < ...`` predicates would, checking the global
  constraints on each candidate and keeping the best.  Only applicable to
  strict-cardinality queries, as in the paper.
* :class:`ExhaustiveSearchEvaluator` — a depth-first enumeration with simple
  bound pruning, used in tests as an independent oracle for small instances
  (it also supports repetition constraints).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

import numpy as np

from repro.core.base_relations import compute_base_relation
from repro.core.package import Package
from repro.core.validation import check_package, objective_value
from repro.dataset.table import Table
from repro.db.aggregates import AggregateFunction
from repro.errors import EvaluationError, InfeasiblePackageQueryError
from repro.paql.ast import ConstraintSenseKeyword, ObjectiveDirection, PackageQuery


@dataclass
class NaiveStats:
    """Statistics from a naïve evaluation."""

    candidates_examined: int = 0
    total_seconds: float = 0.0


class NaiveSelfJoinEvaluator:
    """Exhaustive evaluation emulating the SQL self-join formulation."""

    def __init__(self, max_candidates: int = 50_000_000):
        self.max_candidates = max_candidates
        self.last_stats = NaiveStats()

    def evaluate(self, table: Table, query: PackageQuery) -> Package:
        """Enumerate all cardinality-``k`` combinations and return the best package.

        The query must pin the package cardinality with ``COUNT(P.*) = k``
        (the only case expressible with SQL self-joins, as the paper notes).
        """
        start = time.perf_counter()
        cardinality = _strict_cardinality(query)
        base = compute_base_relation(table, query)
        rows = base.eligible_indices

        best_package: Package | None = None
        best_objective = float("nan")
        direction = query.objective.direction if query.objective else None

        examined = 0
        for combination in itertools.combinations(rows.tolist(), cardinality):
            examined += 1
            if examined > self.max_candidates:
                raise EvaluationError(
                    f"self-join enumeration exceeded {self.max_candidates} candidates"
                )
            candidate = Package(table, np.array(combination, dtype=np.int64))
            if not check_package(candidate, query).feasible:
                continue
            value = objective_value(candidate, query)
            if best_package is None or _improves(direction, value, best_objective):
                best_package = candidate
                best_objective = value

        self.last_stats = NaiveStats(examined, time.perf_counter() - start)
        if best_package is None:
            raise InfeasiblePackageQueryError("no combination satisfies the package query")
        return best_package


class ExhaustiveSearchEvaluator:
    """Depth-first enumeration over multiplicities, used as a test oracle.

    Supports REPEAT constraints and unbounded-cardinality queries as long as a
    cardinality upper bound can be derived from the constraints; intended only
    for very small inputs.
    """

    def __init__(self, max_cardinality: int = 8):
        self.max_cardinality = max_cardinality

    def evaluate(self, table: Table, query: PackageQuery) -> Package:
        base = compute_base_relation(table, query)
        rows = base.eligible_indices.tolist()
        per_tuple_cap = query.max_multiplicity or self.max_cardinality
        cardinality_cap = min(self._cardinality_cap(query), self.max_cardinality)

        best: tuple[float, dict[int, int]] | None = None
        direction = query.objective.direction if query.objective else None

        def recurse(position: int, chosen: dict[int, int], cardinality: int) -> None:
            nonlocal best
            if position == len(rows) or cardinality == cardinality_cap:
                candidate = Package.from_multiplicity_map(table, chosen)
                if not check_package(candidate, query).feasible:
                    return
                value = objective_value(candidate, query)
                if best is None or _improves(direction, value, best[0]):
                    best = (value, dict(chosen))
                return
            row = rows[position]
            for multiplicity in range(0, per_tuple_cap + 1):
                if cardinality + multiplicity > cardinality_cap:
                    break
                if multiplicity:
                    chosen[row] = multiplicity
                elif row in chosen:
                    del chosen[row]
                recurse(position + 1, chosen, cardinality + multiplicity)
            chosen.pop(row, None)

        recurse(0, {}, 0)
        if best is None:
            raise InfeasiblePackageQueryError("exhaustive search found no feasible package")
        return Package.from_multiplicity_map(table, best[1])

    def _cardinality_cap(self, query: PackageQuery) -> int:
        """Derive an upper bound on package cardinality from COUNT constraints."""
        cap = self.max_cardinality
        for constraint in query.global_constraints:
            terms = constraint.expression.terms
            if len(terms) != 1:
                continue
            weight, aggregate = terms[0]
            if aggregate.function is not AggregateFunction.COUNT or aggregate.filter is not None:
                continue
            if weight <= 0:
                continue
            if constraint.sense in (ConstraintSenseKeyword.LE, ConstraintSenseKeyword.EQ):
                cap = min(cap, int(constraint.lower / weight))
            elif constraint.sense is ConstraintSenseKeyword.BETWEEN:
                cap = min(cap, int(constraint.upper / weight))
        return cap


def _strict_cardinality(query: PackageQuery) -> int:
    """Extract the pinned cardinality ``k`` from ``COUNT(P.*) = k`` (or BETWEEN k AND k)."""
    for constraint in query.global_constraints:
        terms = constraint.expression.terms
        if len(terms) != 1:
            continue
        weight, aggregate = terms[0]
        if aggregate.function is not AggregateFunction.COUNT or aggregate.filter is not None:
            continue
        if weight != 1.0:
            continue
        if constraint.sense is ConstraintSenseKeyword.EQ:
            return int(constraint.lower)
        if constraint.sense is ConstraintSenseKeyword.BETWEEN and constraint.lower == constraint.upper:
            return int(constraint.lower)
    raise EvaluationError(
        "the self-join formulation only applies to strict-cardinality queries "
        "(add COUNT(P.*) = k)"
    )


def _improves(direction: ObjectiveDirection | None, value: float, incumbent: float) -> bool:
    if direction is None:
        return False  # Any feasible package is as good as any other.
    if np.isnan(incumbent):
        return True
    if direction is ObjectiveDirection.MINIMIZE:
        return value < incumbent
    return value > incumbent
