"""Benchmark harness reproducing every table and figure of the paper's evaluation.

The modules here are intentionally thin, deterministic drivers around the core
library:

* :mod:`repro.bench.results` — result records and small statistics helpers,
* :mod:`repro.bench.harness` — generic runners (evaluate a workload query with
  one method, with timing and failure capture),
* :mod:`repro.bench.experiments` — one function per paper artefact (Figure 1,
  Figures 3–9, plus the radius and approximation-bound ablations),
* :mod:`repro.bench.reporting` — text rendering of the result series in the
  same shape as the paper's figures/tables.

The pytest-benchmark files under ``benchmarks/`` call into these functions so
``pytest benchmarks/ --benchmark-only`` regenerates every artefact.
"""

from repro.bench.results import MethodRun, QueryScalingResult, ExperimentResult
from repro.bench.harness import BenchmarkConfig, run_method, scaled_fractions
from repro.bench.experiments import (
    figure1_sql_vs_ilp,
    figure3_tpch_sizes,
    figure4_partitioning_time,
    figure5_galaxy_scalability,
    figure6_tpch_scalability,
    figure7_galaxy_tau_sweep,
    figure8_tpch_tau_sweep,
    figure9_coverage,
    radius_ablation,
    approximation_bound_study,
    partitioner_comparison,
)
from repro.bench.reporting import render_table, render_series

__all__ = [
    "MethodRun",
    "QueryScalingResult",
    "ExperimentResult",
    "BenchmarkConfig",
    "run_method",
    "scaled_fractions",
    "figure1_sql_vs_ilp",
    "figure3_tpch_sizes",
    "figure4_partitioning_time",
    "figure5_galaxy_scalability",
    "figure6_tpch_scalability",
    "figure7_galaxy_tau_sweep",
    "figure8_tpch_tau_sweep",
    "figure9_coverage",
    "radius_ablation",
    "approximation_bound_study",
    "partitioner_comparison",
    "render_table",
    "render_series",
]
