"""Generic benchmark runners.

These helpers execute one workload query with one evaluation method under a
controlled configuration, capturing wall-clock time, the objective value and
any failure — exactly the measurements the paper reports (Section 5.1,
"Metrics"): response time excludes materialising the answer package, and
failures (solver out of capacity / time) are recorded rather than raised.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.direct import DirectEvaluator
from repro.core.naive import NaiveSelfJoinEvaluator
from repro.core.sketchrefine import SketchRefineConfig, SketchRefineEvaluator
from repro.core.validation import objective_value
from repro.dataset.table import Table
from repro.errors import ReproError
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.bench.results import MethodRun
from repro.paql.ast import ObjectiveDirection, PackageQuery
from repro.partition.partitioning import Partitioning
from repro.partition.quadtree import QuadTreePartitioner
from repro.workloads.specs import Workload, WorkloadQuery


@dataclass
class BenchmarkConfig:
    """Configuration shared by all experiment drivers.

    The defaults are laptop-scale versions of the paper's settings: the size
    threshold is 10 % of the dataset, the partitioning uses the workload
    attributes with no radius condition, and DIRECT runs against a solver with
    a capacity limit emulating CPLEX's memory ceiling (the paper's DIRECT
    failures in Figure 5).
    """

    galaxy_rows: int = 1_200
    tpch_rows: int = 1_600
    seed: int = 42
    size_threshold_fraction: float = 0.10
    solver_time_limit: float = 60.0
    solver_node_limit: int = 5_000
    solver_relative_gap: float = 1e-3
    direct_max_variables: int | None = None
    fractions: tuple[float, ...] = (0.10, 0.40, 0.70, 1.00)

    def solver(self, max_variables: int | None = None) -> BranchAndBoundSolver:
        """A fresh solver honouring the configured limits."""
        limits = SolverLimits(
            time_limit_seconds=self.solver_time_limit,
            node_limit=self.solver_node_limit,
            relative_gap=self.solver_relative_gap,
            max_variables=max_variables if max_variables is not None else self.direct_max_variables,
        )
        return BranchAndBoundSolver(limits=limits)


def scaled_fractions(table: Table, fractions: tuple[float, ...], seed: int) -> dict[float, np.ndarray]:
    """Row-index subsets for each dataset fraction.

    The paper derives smaller data sizes by randomly removing tuples from the
    full dataset (and from its partitions, which preserves the size condition);
    returning index subsets lets both the table and the partitioning be
    restricted consistently.
    """
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(table.num_rows)
    subsets = {}
    for fraction in fractions:
        count = max(1, int(round(fraction * table.num_rows)))
        subsets[fraction] = np.sort(permutation[:count])
    return subsets


def build_partitioning(
    table: Table,
    attributes: list[str],
    config: BenchmarkConfig,
    size_threshold: int | None = None,
    radius_limit: float | None = None,
) -> Partitioning:
    """Build the offline partitioning used by a whole experiment."""
    tau = size_threshold or max(1, int(config.size_threshold_fraction * table.num_rows))
    partitioner = QuadTreePartitioner(size_threshold=tau, radius_limit=radius_limit)
    return partitioner.partition(table, attributes)


def run_method(
    table: Table,
    workload_query: WorkloadQuery,
    method: str,
    dataset: str,
    config: BenchmarkConfig,
    partitioning: Partitioning | None = None,
    parameters: dict | None = None,
) -> MethodRun:
    """Evaluate one query with one method, capturing failures as data."""
    query = workload_query.query
    parameters = dict(parameters or {})
    parameters.setdefault("direction", _direction_label(query))

    start = time.perf_counter()
    try:
        if method == "direct":
            evaluator = DirectEvaluator(solver=config.solver())
            package = evaluator.evaluate(table, query)
        elif method == "sketchrefine":
            if partitioning is None:
                raise ReproError("sketchrefine requires a partitioning")
            evaluator = SketchRefineEvaluator(
                solver=config.solver(max_variables=None),
                config=SketchRefineConfig(),
            )
            package = evaluator.evaluate(table, query, partitioning)
        elif method == "naive":
            evaluator = NaiveSelfJoinEvaluator()
            package = evaluator.evaluate(table, query)
        else:
            raise ReproError(f"unknown method {method!r}")
    except ReproError as error:
        return MethodRun(
            dataset=dataset,
            query_name=workload_query.name,
            method=method,
            wall_seconds=time.perf_counter() - start,
            failed=True,
            failure_reason=f"{type(error).__name__}: {error}",
            parameters=parameters,
        )

    elapsed = time.perf_counter() - start
    return MethodRun(
        dataset=dataset,
        query_name=workload_query.name,
        method=method,
        wall_seconds=elapsed,
        objective=objective_value(package, query),
        feasible=True,
        parameters=parameters,
    )


def restrict_workload_query(workload_query: WorkloadQuery, relation: str) -> WorkloadQuery:
    """Return a copy of the workload query pointing at a different relation name."""
    query = workload_query.query
    renamed = PackageQuery(
        relation=relation,
        package_alias=query.package_alias,
        relation_alias=query.relation_alias,
        repeat=query.repeat,
        base_predicate=query.base_predicate,
        global_constraints=list(query.global_constraints),
        objective=query.objective,
        name=query.name,
    )
    return WorkloadQuery(workload_query.name, renamed, workload_query.description)


def _direction_label(query: PackageQuery) -> str:
    if query.objective is None:
        return "none"
    return (
        "maximize"
        if query.objective.direction is ObjectiveDirection.MAXIMIZE
        else "minimize"
    )
