"""One driver function per paper artefact (figure / table).

Every function returns an :class:`~repro.bench.results.ExperimentResult` whose
rows mirror what the corresponding figure or table in the paper reports.  The
drivers are deliberately deterministic (seeded through
:class:`~repro.bench.harness.BenchmarkConfig`) and laptop-scale; EXPERIMENTS.md
records how the measured shapes compare with the paper's.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import (
    BenchmarkConfig,
    build_partitioning,
    restrict_workload_query,
    run_method,
    scaled_fractions,
)
from repro.bench.results import ExperimentResult, MethodRun, QueryScalingResult
from repro.core.direct import DirectEvaluator
from repro.core.sketchrefine import SketchRefineEvaluator
from repro.core.validation import objective_value
from repro.db.expressions import col
from repro.errors import ReproError
from repro.paql.ast import ObjectiveDirection
from repro.paql.builder import query_over
from repro.partition.kdtree import KdTreePartitioner
from repro.partition.kmeans import KMeansPartitioner
from repro.partition.quadtree import QuadTreePartitioner
from repro.partition.radius import approximation_factor, omega_for_epsilon
from repro.workloads.galaxy import galaxy_table, galaxy_workload
from repro.workloads.specs import Workload, WorkloadQuery
from repro.workloads.tpch import query_projection, tpch_table, tpch_workload


# ---------------------------------------------------------------------------
# Figure 1 — naïve SQL self-join formulation vs ILP formulation
# ---------------------------------------------------------------------------

def figure1_sql_vs_ilp(
    num_tuples: int = 100,
    cardinalities: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
    config: BenchmarkConfig | None = None,
) -> ExperimentResult:
    """Figure 1: runtime of the SQL-style self-join plan vs the ILP formulation.

    The paper runs this on a 100-tuple SDSS sample; the self-join runtime grows
    exponentially with the package cardinality while the ILP formulation stays
    flat.
    """
    config = config or BenchmarkConfig()
    table = galaxy_table(num_tuples, seed=config.seed)
    mean_redshift = float(np.mean(table.numeric_column("redshift")))

    result = ExperimentResult(
        name="figure1",
        description="SQL self-join formulation vs ILP formulation, runtime vs package cardinality",
    )
    scaling = QueryScalingResult("galaxy-sample", "cardinality-sweep", "cardinality")

    for cardinality in cardinalities:
        query = (
            query_over("galaxy", name=f"fig1_k{cardinality}")
            .no_repetition()
            .count_equals(cardinality)
            .sum_at_most("redshift", mean_redshift * cardinality * 1.5)
            .minimize_sum("extinction_r")
            .build()
        )
        workload_query = WorkloadQuery(f"k={cardinality}", query)
        for method in ("naive", "direct"):
            run = run_method(
                table, workload_query, method, "galaxy-sample", config,
                parameters={"cardinality": cardinality},
            )
            scaling.runs.append(run)

    result.query_results.append(scaling)
    result.add_table(
        "figure1_rows",
        [
            {
                "cardinality": run.parameters["cardinality"],
                "method": "SQL self-join" if run.method == "naive" else "ILP formulation",
                "seconds": run.wall_seconds,
                "failed": run.failed,
            }
            for run in scaling.runs
        ],
    )
    return result


# ---------------------------------------------------------------------------
# Figure 3 — per-query TPC-H table sizes
# ---------------------------------------------------------------------------

def figure3_tpch_sizes(config: BenchmarkConfig | None = None) -> ExperimentResult:
    """Figure 3: size of the per-query NULL-projected TPC-H tables."""
    config = config or BenchmarkConfig()
    table = tpch_table(config.tpch_rows, seed=config.seed)
    workload = tpch_workload(table, seed=config.seed)

    rows = []
    for workload_query in workload.queries:
        projection = query_projection(table, workload_query.query)
        rows.append(
            {
                "query": workload_query.name,
                "attributes": ", ".join(sorted(workload_query.attributes)),
                "tuples": projection.num_rows,
                "fraction_of_prejoined": round(projection.num_rows / table.num_rows, 3),
            }
        )
    result = ExperimentResult(
        name="figure3",
        description="Per-query table sizes after projecting away NULL rows of the pre-joined table",
    )
    result.add_table("figure3_rows", rows)
    return result


# ---------------------------------------------------------------------------
# Figure 4 — offline partitioning time
# ---------------------------------------------------------------------------

def figure4_partitioning_time(config: BenchmarkConfig | None = None) -> ExperimentResult:
    """Figure 4: offline partitioning time for Galaxy and TPC-H.

    As in the paper: workload attributes, τ = 10 % of the dataset size, no
    radius condition.
    """
    config = config or BenchmarkConfig()
    rows = []
    for dataset, table, workload in _both_workloads(config):
        tau = max(1, int(config.size_threshold_fraction * table.num_rows))
        start = time.perf_counter()
        partitioning = QuadTreePartitioner(size_threshold=tau).partition(
            table, workload.workload_attributes
        )
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "dataset": dataset,
                "dataset_size": table.num_rows,
                "size_threshold": tau,
                "num_groups": partitioning.num_groups,
                "partitioning_seconds": elapsed,
            }
        )
    result = ExperimentResult(
        name="figure4", description="Offline partitioning time (workload attributes, τ=10 %, no radius)"
    )
    result.add_table("figure4_rows", rows)
    return result


# ---------------------------------------------------------------------------
# Figures 5 and 6 — scalability on Galaxy and TPC-H
# ---------------------------------------------------------------------------

def figure5_galaxy_scalability(config: BenchmarkConfig | None = None) -> ExperimentResult:
    """Figure 5: DIRECT vs SKETCHREFINE runtime and approximation ratio on Galaxy."""
    config = config or BenchmarkConfig()
    table = galaxy_table(config.galaxy_rows, seed=config.seed)
    workload = galaxy_workload(table, seed=config.seed)
    return _scalability_experiment("figure5", "galaxy", table, workload, config)


def figure6_tpch_scalability(config: BenchmarkConfig | None = None) -> ExperimentResult:
    """Figure 6: DIRECT vs SKETCHREFINE runtime and approximation ratio on TPC-H."""
    config = config or BenchmarkConfig()
    table = tpch_table(config.tpch_rows, seed=config.seed)
    workload = tpch_workload(table, seed=config.seed)
    return _scalability_experiment("figure6", "tpch", table, workload, config, project_nulls=True)


def _scalability_experiment(
    name: str,
    dataset: str,
    table,
    workload: Workload,
    config: BenchmarkConfig,
    project_nulls: bool = False,
) -> ExperimentResult:
    result = ExperimentResult(
        name=name,
        description=f"{dataset} scalability: runtime vs dataset fraction "
        f"(τ = {int(config.size_threshold_fraction * 100)} % of the data, workload attributes)",
    )
    full_partitioning = build_partitioning(table, workload.workload_attributes, config)
    subsets = scaled_fractions(table, config.fractions, config.seed)

    for workload_query in workload.queries:
        scaling = QueryScalingResult(dataset, workload_query.name, "fraction")
        for fraction in config.fractions:
            rows = subsets[fraction]
            fraction_partitioning = full_partitioning.restricted_to_rows(rows)
            fraction_table = fraction_partitioning.table
            query = restrict_workload_query(workload_query, fraction_table.name)
            if project_nulls:
                mask = ~np.any(
                    np.isnan(fraction_table.numeric_matrix(sorted(workload_query.attributes))),
                    axis=1,
                )
                keep = np.nonzero(mask)[0]
                fraction_partitioning = fraction_partitioning.restricted_to_rows(keep)
                fraction_table = fraction_partitioning.table
            parameters = {"fraction": fraction}
            scaling.runs.append(
                run_method(fraction_table, query, "direct", dataset, config, parameters=parameters)
            )
            scaling.runs.append(
                run_method(
                    fraction_table, query, "sketchrefine", dataset, config,
                    partitioning=fraction_partitioning, parameters=parameters,
                )
            )
        result.query_results.append(scaling)
    return result


# ---------------------------------------------------------------------------
# Figures 7 and 8 — effect of the partition size threshold τ
# ---------------------------------------------------------------------------

def figure7_galaxy_tau_sweep(
    config: BenchmarkConfig | None = None,
    fraction: float = 0.30,
    thresholds: tuple[float, ...] = (0.5, 0.25, 0.10, 0.05, 0.02),
) -> ExperimentResult:
    """Figure 7: impact of τ on Galaxy (paper uses 30 % of the data)."""
    config = config or BenchmarkConfig()
    table = galaxy_table(config.galaxy_rows, seed=config.seed)
    workload = galaxy_workload(table, seed=config.seed)
    subset = scaled_fractions(table, (fraction,), config.seed)[fraction]
    sub_table = table.take(subset, name=table.name)
    sub_workload = Workload(workload.name, sub_table, workload.queries)
    return _tau_sweep_experiment("figure7", "galaxy", sub_table, sub_workload, thresholds, config)


def figure8_tpch_tau_sweep(
    config: BenchmarkConfig | None = None,
    thresholds: tuple[float, ...] = (0.5, 0.25, 0.10, 0.05, 0.02),
) -> ExperimentResult:
    """Figure 8: impact of τ on TPC-H (paper uses the full dataset)."""
    config = config or BenchmarkConfig()
    table = tpch_table(config.tpch_rows, seed=config.seed)
    workload = tpch_workload(table, seed=config.seed)
    return _tau_sweep_experiment(
        "figure8", "tpch", table, workload, thresholds, config, project_nulls=True
    )


def _tau_sweep_experiment(
    name: str,
    dataset: str,
    table,
    workload: Workload,
    thresholds: tuple[float, ...],
    config: BenchmarkConfig,
    project_nulls: bool = False,
) -> ExperimentResult:
    result = ExperimentResult(
        name=name,
        description=f"{dataset}: impact of the partition size threshold τ on SKETCHREFINE",
    )
    for workload_query in workload.queries:
        scaling = QueryScalingResult(dataset, workload_query.name, "size_threshold")
        query_table = table
        if project_nulls:
            query_table = table.drop_nulls(sorted(workload_query.attributes))
        query = restrict_workload_query(workload_query, query_table.name)
        baseline = run_method(
            query_table, query, "direct", dataset, config, parameters={"size_threshold": 0}
        )
        for threshold_fraction in thresholds:
            tau = max(1, int(threshold_fraction * query_table.num_rows))
            partitioning = build_partitioning(
                query_table, workload.workload_attributes, config, size_threshold=tau
            )
            parameters = {"size_threshold": tau}
            baseline_copy = MethodRun(
                dataset=baseline.dataset,
                query_name=baseline.query_name,
                method="direct",
                wall_seconds=baseline.wall_seconds,
                objective=baseline.objective,
                feasible=baseline.feasible,
                failed=baseline.failed,
                failure_reason=baseline.failure_reason,
                parameters={**parameters, "direction": baseline.parameters.get("direction")},
            )
            scaling.runs.append(baseline_copy)
            scaling.runs.append(
                run_method(
                    query_table, query, "sketchrefine", dataset, config,
                    partitioning=partitioning, parameters=parameters,
                )
            )
        result.query_results.append(scaling)
    return result


# ---------------------------------------------------------------------------
# Figure 9 — partitioning coverage
# ---------------------------------------------------------------------------

def figure9_coverage(
    config: BenchmarkConfig | None = None,
    dataset: str = "galaxy",
    query_name: str = "Q1",
    coverages: tuple[float, ...] | None = None,
) -> ExperimentResult:
    """Figure 9: runtime-increase ratio vs partitioning coverage.

    Coverage is the number of partitioning attributes divided by the number of
    query attributes: below 1 the partitioning covers only a subset of the
    query attributes, above 1 it additionally covers attributes the query does
    not use.
    """
    config = config or BenchmarkConfig()
    if dataset == "galaxy":
        table = galaxy_table(config.galaxy_rows, seed=config.seed)
        workload = galaxy_workload(table, seed=config.seed)
        extra_attributes = [a for a in table.schema.numeric_names]
    else:
        table = tpch_table(config.tpch_rows, seed=config.seed)
        workload = tpch_workload(table, seed=config.seed)
        extra_attributes = [a for a in table.schema.numeric_names]

    workload_query = workload.query(query_name)
    query_attributes = sorted(workload_query.attributes)
    if dataset != "galaxy":
        # TPC-H queries run on their non-NULL projection (Figure 3 protocol).
        table = table.drop_nulls(query_attributes)
    non_query = [a for a in extra_attributes if a not in query_attributes]

    if coverages is None:
        coverages = (0.5, 1.0, 2.0, 3.0) if len(non_query) >= 2 * len(query_attributes) else (0.5, 1.0, 2.0)

    result = ExperimentResult(
        name="figure9",
        description="Runtime increase/decrease ratio of SKETCHREFINE vs partitioning coverage",
    )
    scaling = QueryScalingResult(dataset, query_name, "coverage")
    tau = max(1, int(config.size_threshold_fraction * table.num_rows))

    baseline_seconds: float | None = None
    rows = []
    for coverage in coverages:
        attribute_count = max(1, int(round(coverage * len(query_attributes))))
        if attribute_count <= len(query_attributes):
            attributes = query_attributes[:attribute_count]
        else:
            attributes = query_attributes + non_query[: attribute_count - len(query_attributes)]
        partitioning = QuadTreePartitioner(size_threshold=tau).partition(table, attributes)
        query = restrict_workload_query(workload_query, table.name)
        run = run_method(
            table, query, "sketchrefine", dataset, config,
            partitioning=partitioning,
            parameters={"coverage": round(len(attributes) / len(query_attributes), 2)},
        )
        scaling.runs.append(run)
        if abs(coverage - 1.0) < 1e-9:
            baseline_seconds = run.wall_seconds
        rows.append(
            {
                "coverage": round(len(attributes) / len(query_attributes), 2),
                "partitioning_attributes": len(attributes),
                "seconds": run.wall_seconds,
                "failed": run.failed,
            }
        )

    if baseline_seconds:
        for row in rows:
            row["time_increase_ratio"] = (
                row["seconds"] / baseline_seconds if not row["failed"] else None
            )
    result.query_results.append(scaling)
    result.add_table("figure9_rows", rows)
    return result


# ---------------------------------------------------------------------------
# Ablations beyond the paper's figures
# ---------------------------------------------------------------------------

def radius_ablation(
    config: BenchmarkConfig | None = None,
    dataset: str = "tpch",
    query_name: str = "Q2",
    epsilon: float = 1.0,
) -> ExperimentResult:
    """Section 5.2.1 note: enforcing a radius limit fixes the one bad TPC-H ratio.

    The paper reports that TPC-H Q2 (a minimisation query) had a poor
    approximation ratio with size-threshold-only partitioning, and that
    re-running with a radius limit derived from ε = 1.0 achieved a perfect
    ratio.  This ablation reproduces that comparison.
    """
    config = config or BenchmarkConfig()
    if dataset == "tpch":
        table = tpch_table(config.tpch_rows, seed=config.seed)
        workload = tpch_workload(table, seed=config.seed)
    else:
        table = galaxy_table(config.galaxy_rows, seed=config.seed)
        workload = galaxy_workload(table, seed=config.seed)
    workload_query = workload.query(query_name)
    attributes = sorted(workload_query.attributes)
    table = table.drop_nulls(attributes)
    query = restrict_workload_query(workload_query, table.name)
    tau = max(1, int(config.size_threshold_fraction * table.num_rows))

    direction = (
        workload_query.query.objective.direction
        if workload_query.query.objective
        else ObjectiveDirection.MINIMIZE
    )

    rows = []
    scaling = QueryScalingResult(dataset, query_name, "partitioning")
    baseline = run_method(table, query, "direct", dataset, config, parameters={"partitioning": "none"})
    scaling.runs.append(baseline)

    size_only = QuadTreePartitioner(size_threshold=tau).partition(table, attributes)
    run_size_only = run_method(
        table, query, "sketchrefine", dataset, config,
        partitioning=size_only, parameters={"partitioning": "size-threshold-only"},
    )
    scaling.runs.append(run_size_only)

    omega = omega_for_epsilon(size_only.representatives, attributes, epsilon, direction)
    radius_limited = QuadTreePartitioner(size_threshold=tau, radius_limit=omega).partition(
        table, attributes
    )
    run_radius = run_method(
        table, query, "sketchrefine", dataset, config,
        partitioning=radius_limited, parameters={"partitioning": f"radius(eps={epsilon})"},
    )
    scaling.runs.append(run_radius)

    for run in (baseline, run_size_only, run_radius):
        rows.append(
            {
                "configuration": run.parameters["partitioning"],
                "method": run.method,
                "seconds": run.wall_seconds,
                "objective": run.objective,
                "failed": run.failed,
            }
        )
    result = ExperimentResult(
        name="radius_ablation",
        description=f"{dataset} {query_name}: size-threshold-only vs radius-limited partitioning",
    )
    result.query_results.append(scaling)
    result.add_table("radius_rows", rows)
    return result


def approximation_bound_study(
    config: BenchmarkConfig | None = None,
    epsilons: tuple[float, ...] = (0.1, 0.25, 0.5),
    num_rows: int = 400,
) -> ExperimentResult:
    """Theorem 3 check: SKETCHREFINE stays within the (1±ε)^6 bound of DIRECT.

    For each ε the dataset is partitioned with the radius limit of Equation (1)
    and the empirical approximation ratio is compared against the theoretical
    factor.
    """
    config = config or BenchmarkConfig()
    table = galaxy_table(num_rows, seed=config.seed)
    workload = galaxy_workload(table, seed=config.seed)
    workload_query = workload.query("Q5")
    attributes = sorted(workload_query.attributes)
    query = restrict_workload_query(workload_query, table.name)
    direction = workload_query.query.objective.direction

    direct_run = run_method(table, query, "direct", "galaxy", config, parameters={"epsilon": 0.0})
    rows = []
    for epsilon in epsilons:
        seed_partitioning = QuadTreePartitioner(
            size_threshold=max(1, int(config.size_threshold_fraction * num_rows))
        ).partition(table, attributes)
        omega = omega_for_epsilon(seed_partitioning.representatives, attributes, epsilon, direction)
        partitioning = QuadTreePartitioner(
            size_threshold=max(1, int(config.size_threshold_fraction * num_rows)),
            radius_limit=omega,
        ).partition(table, attributes)
        run = run_method(
            table, query, "sketchrefine", "galaxy", config,
            partitioning=partitioning, parameters={"epsilon": epsilon},
        )
        bound = approximation_factor(epsilon, direction)
        observed = float("nan")
        if run.succeeded and direct_run.succeeded and run.objective:
            observed = (
                direct_run.objective / run.objective
                if direction is ObjectiveDirection.MAXIMIZE
                else run.objective / direct_run.objective
            )
        rows.append(
            {
                "epsilon": epsilon,
                "radius_limit": omega,
                "groups": partitioning.num_groups,
                "observed_ratio": observed,
                "theoretical_worst_ratio": 1.0 / bound if direction is ObjectiveDirection.MAXIMIZE else bound,
                "within_bound": bool(observed <= (1.0 / bound if direction is ObjectiveDirection.MAXIMIZE else bound) + 1e-6)
                if not np.isnan(observed)
                else None,
            }
        )
    result = ExperimentResult(
        name="approximation_bounds",
        description="Empirical check of the (1±ε)^6 approximation guarantee (Theorem 3)",
    )
    result.add_table("bound_rows", rows)
    return result


def partitioner_comparison(
    config: BenchmarkConfig | None = None,
    num_rows: int = 1_000,
) -> ExperimentResult:
    """Ablation: quad-tree vs k-d tree vs k-means partitioning (Section 4.1 discussion)."""
    config = config or BenchmarkConfig()
    table = galaxy_table(num_rows, seed=config.seed)
    workload = galaxy_workload(table, seed=config.seed)
    attributes = workload.workload_attributes
    tau = max(1, int(config.size_threshold_fraction * num_rows))

    partitioners = {
        "quadtree": QuadTreePartitioner(size_threshold=tau),
        "kdtree": KdTreePartitioner(size_threshold=tau),
        "kmeans": KMeansPartitioner(size_threshold=tau, seed=config.seed),
    }
    rows = []
    workload_query = workload.query("Q1")
    query = restrict_workload_query(workload_query, table.name)
    direct_run = run_method(table, query, "direct", "galaxy", config, parameters={"partitioner": "none"})
    for name, partitioner in partitioners.items():
        start = time.perf_counter()
        partitioning = partitioner.partition(table, attributes)
        build_seconds = time.perf_counter() - start
        run = run_method(
            table, query, "sketchrefine", "galaxy", config,
            partitioning=partitioning, parameters={"partitioner": name},
        )
        ratio = float("nan")
        if run.succeeded and direct_run.succeeded and direct_run.objective:
            ratio = (
                direct_run.objective / run.objective
                if query.query.objective.direction is ObjectiveDirection.MAXIMIZE
                else run.objective / direct_run.objective
            )
        rows.append(
            {
                "partitioner": name,
                "groups": partitioning.num_groups,
                "max_group_size": int(partitioning.group_sizes().max()),
                "build_seconds": build_seconds,
                "query_seconds": run.wall_seconds,
                "approx_ratio": ratio,
                "satisfies_tau": partitioning.satisfies_size_threshold(tau),
            }
        )
    result = ExperimentResult(
        name="partitioner_comparison",
        description="Quad-tree vs k-d tree vs k-means offline partitioning",
    )
    result.add_table("partitioner_rows", rows)
    return result


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _both_workloads(config: BenchmarkConfig):
    galaxy = galaxy_table(config.galaxy_rows, seed=config.seed)
    yield "galaxy", galaxy, galaxy_workload(galaxy, seed=config.seed)
    tpch = tpch_table(config.tpch_rows, seed=config.seed)
    yield "tpch", tpch, tpch_workload(tpch, seed=config.seed)
