"""Result records for benchmark experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class MethodRun:
    """One evaluation of one query with one method at one configuration."""

    dataset: str
    query_name: str
    method: str
    wall_seconds: float
    objective: float = float("nan")
    feasible: bool = False
    failed: bool = False
    failure_reason: str = ""
    parameters: dict = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return not self.failed


@dataclass
class QueryScalingResult:
    """All runs for one query across a swept parameter (data size, τ, coverage...)."""

    dataset: str
    query_name: str
    parameter_name: str
    runs: list[MethodRun] = field(default_factory=list)

    def runs_for(self, method: str) -> list[MethodRun]:
        return [run for run in self.runs if run.method == method]

    def approximation_ratios(
        self, approximate_method: str = "sketchrefine", exact_method: str = "direct"
    ) -> list[float]:
        """Per-configuration approximation ratios where both methods succeeded.

        The ratio orientation follows the paper (Section 5.1): always
        ``worse / better`` so 1.0 means SKETCHREFINE matched DIRECT.  The
        objective direction is recorded per run in ``parameters['direction']``.
        """
        ratios = []
        exact_by_parameter = {
            _parameter_key(run.parameters): run for run in self.runs_for(exact_method) if run.succeeded
        }
        for run in self.runs_for(approximate_method):
            if not run.succeeded:
                continue
            exact = exact_by_parameter.get(_parameter_key(run.parameters))
            if exact is None or not exact.succeeded:
                continue
            direction = run.parameters.get("direction", "minimize")
            if exact.objective == 0 and run.objective == 0:
                ratios.append(1.0)
                continue
            if direction == "maximize":
                denominator = run.objective
                numerator = exact.objective
            else:
                numerator = run.objective
                denominator = exact.objective
            if denominator == 0:
                continue
            ratios.append(numerator / denominator)
        return ratios

    def mean_approximation_ratio(self) -> float:
        ratios = self.approximation_ratios()
        return float(sum(ratios) / len(ratios)) if ratios else float("nan")

    def median_approximation_ratio(self) -> float:
        ratios = sorted(self.approximation_ratios())
        if not ratios:
            return float("nan")
        middle = len(ratios) // 2
        if len(ratios) % 2:
            return ratios[middle]
        return 0.5 * (ratios[middle - 1] + ratios[middle])

    def speedup(self, fast_method: str = "sketchrefine", slow_method: str = "direct") -> float:
        """Geometric-mean speed-up of ``fast_method`` over ``slow_method``."""
        fast = {_parameter_key(r.parameters): r for r in self.runs_for(fast_method) if r.succeeded}
        slow = {_parameter_key(r.parameters): r for r in self.runs_for(slow_method) if r.succeeded}
        logs = []
        for key, fast_run in fast.items():
            slow_run = slow.get(key)
            if slow_run is None or fast_run.wall_seconds <= 0:
                continue
            logs.append(math.log(slow_run.wall_seconds / fast_run.wall_seconds))
        if not logs:
            return float("nan")
        return math.exp(sum(logs) / len(logs))


@dataclass
class ExperimentResult:
    """A full experiment: one paper artefact (figure or table)."""

    name: str
    description: str
    query_results: list[QueryScalingResult] = field(default_factory=list)
    tables: dict[str, list[dict]] = field(default_factory=dict)

    def add_table(self, name: str, rows: Iterable[dict]) -> None:
        self.tables[name] = list(rows)

    def result_for(self, query_name: str) -> QueryScalingResult:
        for result in self.query_results:
            if result.query_name == query_name:
                return result
        raise KeyError(f"experiment {self.name!r} has no result for query {query_name!r}")


def _parameter_key(parameters: dict) -> tuple:
    return tuple(sorted((k, v) for k, v in parameters.items() if k != "direction"))
