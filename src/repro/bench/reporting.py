"""Plain-text rendering of experiment results.

The benchmark targets print their results in the same shape as the paper's
figures: one line per swept parameter value with the DIRECT and SKETCHREFINE
runtimes (or whatever series the experiment produces), plus the mean/median
approximation ratios reported under each plot in Figures 5–8.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.bench.results import ExperimentResult, MethodRun, QueryScalingResult


def render_table(rows: Sequence[dict], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_format_cell(row.get(c)) for c in columns] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(result: QueryScalingResult, parameter: str) -> str:
    """Render one query's runtime series (the content of one sub-plot)."""
    rows = []
    values = sorted({run.parameters.get(parameter) for run in result.runs})
    for value in values:
        row: dict = {parameter: value}
        for method in ("direct", "sketchrefine", "naive"):
            matching = [
                run for run in result.runs
                if run.method == method and run.parameters.get(parameter) == value
            ]
            if not matching:
                continue
            run = matching[0]
            row[f"{method}_seconds"] = run.wall_seconds if run.succeeded else None
            if not run.succeeded:
                row[f"{method}_seconds"] = f"FAIL({run.failure_reason.split(':')[0]})"
        rows.append(row)
    table = render_table(rows, title=f"{result.dataset} {result.query_name}")
    mean_ratio = result.mean_approximation_ratio()
    median_ratio = result.median_approximation_ratio()
    footer = (
        f"approx ratio: mean={_format_ratio(mean_ratio)}, median={_format_ratio(median_ratio)}"
    )
    return f"{table}\n{footer}"


def render_experiment(result: ExperimentResult, parameter: str | None = None) -> str:
    """Render a whole experiment (all queries plus any extra tables)."""
    chunks = [f"== {result.name} — {result.description} =="]
    for query_result in result.query_results:
        chunks.append(render_series(query_result, parameter or query_result.parameter_name))
    for name, rows in result.tables.items():
        chunks.append(render_table(rows, title=name))
    return "\n\n".join(chunks)


def summarize_speedups(results: Iterable[QueryScalingResult]) -> str:
    """One-line-per-query summary of SKETCHREFINE's speed-up over DIRECT."""
    rows = []
    for result in results:
        speedup = result.speedup()
        rows.append(
            {
                "query": result.query_name,
                "speedup": None if math.isnan(speedup) else round(speedup, 2),
                "mean_ratio": _format_ratio(result.mean_approximation_ratio()),
                "median_ratio": _format_ratio(result.median_approximation_ratio()),
            }
        )
    return render_table(rows, title="SKETCHREFINE vs DIRECT")


def _format_cell(value: object) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if math.isnan(value):
            return "—"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def _format_ratio(value: float) -> str:
    if math.isnan(value):
        return "—"
    return f"{value:.2f}"
