"""Exception hierarchy shared by every subsystem of the package-query engine.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller can catch one base class to guard against any library failure while
still being able to distinguish, for example, a PaQL syntax error from an
infeasible optimisation problem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A table schema is malformed or an operation violates it."""


class ColumnNotFoundError(SchemaError):
    """A referenced column does not exist in the schema."""

    def __init__(self, column: str, available: tuple[str, ...] = ()):
        self.column = column
        self.available = tuple(available)
        message = f"column {column!r} not found"
        if available:
            message += f" (available: {', '.join(available)})"
        super().__init__(message)


class TableError(ReproError):
    """An operation on a table is invalid (length mismatch, bad index...)."""


class CatalogError(ReproError):
    """A database catalog operation failed (duplicate or missing table)."""


class ExpressionError(ReproError):
    """A scalar or aggregate expression is malformed or cannot be evaluated."""


class QueryError(ReproError):
    """A relational-algebra query is malformed."""


class PaQLError(ReproError):
    """Base class for PaQL language errors."""


class PaQLSyntaxError(PaQLError):
    """The PaQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")


class PaQLValidationError(PaQLError):
    """The PaQL query parsed but is semantically invalid for the target table."""


class SolverError(ReproError):
    """Base class for LP/ILP solver failures."""


class SolverCapacityError(SolverError):
    """The problem exceeds the solver's configured capacity limits.

    This mirrors the behaviour of commercial solvers (e.g. CPLEX) running out
    of memory on very large integer programs, which the paper reports as
    DIRECT failures in Figure 5.
    """


class SolverTimeoutError(SolverError):
    """The solver exceeded its wall-clock budget before proving optimality."""


class InfeasiblePackageQueryError(ReproError):
    """The package query has no feasible package (or was reported as such)."""

    def __init__(self, message: str = "package query is infeasible", *, false_negative_possible: bool = False):
        self.false_negative_possible = false_negative_possible
        super().__init__(message)


class WalError(ReproError):
    """A write-ahead-log operation failed (bad record, unwritable storage).

    Torn tails are *not* errors: a log whose final record was cut short by a
    crash replays cleanly up to the last complete, checksummed record.  This
    exception covers structural misuse — appending to a closed log, a record
    that cannot be encoded, storage that refuses to sync.
    """


class RecoveryError(WalError):
    """Replaying a write-ahead log could not reconstruct a consistent state.

    Raised when the log and the snapshot disagree in a way replay cannot
    bridge — a delta anchored to a version the snapshot never reached, a
    checkpoint marker newer than the snapshot on disk.  Recovery never
    guesses: a gap is an error, not a silent skip.
    """


class SnapshotError(ReproError):
    """A snapshot handle was misused (released twice, read after release)."""


class PartitioningError(ReproError):
    """Offline partitioning failed or was given inconsistent parameters."""


class TranslationError(ReproError):
    """A PaQL query could not be translated into an integer linear program."""


class EvaluationError(ReproError):
    """A package evaluation strategy failed for a non-infeasibility reason."""


class CacheError(EvaluationError):
    """A result-cache operation was misused (bad capacity, missing context).

    Note this covers *misuse* only: a stale or unusable entry is never an
    error — the cache reports a miss and the engine re-solves.
    """


class StalePartitioningError(EvaluationError):
    """A partitioning was requested for a table version it does not describe.

    Raised when SKETCHREFINE is explicitly asked to run over a partitioning
    whose recorded table version lags the catalog's current version (the
    table was updated under the ``"stale"`` maintenance policy).  Once stale,
    a partitioning cannot be caught up — deltas anchor to the current table
    version — so rebuilding it is the recourse.
    """
