#!/usr/bin/env python3
"""Procurement portfolio selection over a TPC-H-style table.

A purchasing department must pick a bundle of part-supplier offers: bounded
total availability, a cap on total part size, minimising total supply cost —
the paper's TPC-H Q2-style workload.  The script demonstrates:

* the per-query NULL projection of the pre-joined table (Figure 3),
* writing the query in raw PaQL and validating it against the schema,
* the false-infeasibility mitigation: an over-constrained query that the plain
  sketch reports infeasible is rescued by the hybrid sketch (Section 4.4).

Run with::

    python examples/procurement_portfolio.py
"""

import numpy as np

from repro import PackageQueryEngine, parse_paql
from repro.core import SketchRefineConfig, SketchRefineEvaluator
from repro.core.validation import check_package
from repro.errors import InfeasiblePackageQueryError
from repro.paql import validate_query
from repro.partition import QuadTreePartitioner
from repro.workloads.tpch import query_projection, tpch_table, tpch_workload


def main() -> None:
    prejoined = tpch_table(num_rows=3_000, seed=5)
    workload = tpch_workload(prejoined, seed=5)
    print(f"Pre-joined TPC-H table: {prejoined.num_rows} tuples, {prejoined.num_columns} columns")

    # ----------------------------------------------------- per-query NULL projection
    print("\nPer-query projections (Figure 3 of the paper):")
    for workload_query in workload.queries:
        projection = query_projection(prejoined, workload_query.query)
        print(f"  {workload_query.name}: {projection.num_rows:5d} non-NULL tuples "
              f"on {sorted(workload_query.attributes)}")

    # ------------------------------------------------------------ the portfolio query
    q2 = workload.query("Q2")
    table = query_projection(prejoined, q2.query)
    mean_avail = float(np.mean(table.numeric_column("availqty")))
    mean_size = float(np.mean(table.numeric_column("partsize")))

    paql_text = f"""
    SELECT PACKAGE(T) AS P
    FROM portfolio T REPEAT 0
    SUCH THAT COUNT(P.*) = 10 AND
              SUM(P.availqty) BETWEEN {0.6 * mean_avail * 10:.1f} AND {1.4 * mean_avail * 10:.1f} AND
              SUM(P.partsize) <= {mean_size * 10 * 1.2:.1f}
    MINIMIZE SUM(P.supplycost)
    """
    query = parse_paql(paql_text)
    validate_query(query, table.schema)

    engine = PackageQueryEngine()
    engine.register_table(table, name="portfolio")
    engine.build_partitioning(
        "portfolio",
        ["availqty", "partsize", "supplycost"],
        size_threshold=max(1, table.num_rows // 12),
    )

    direct = engine.execute(query, method="direct")
    sketch = engine.execute(query, method="sketchrefine")
    print("\n=== Procurement portfolio ===")
    print(f"DIRECT       : cost = {direct.objective:10.2f} in {direct.wall_seconds:.2f}s")
    print(f"SKETCHREFINE : cost = {sketch.objective:10.2f} in {sketch.wall_seconds:.2f}s "
          f"(ratio {sketch.objective / direct.objective:.3f})")
    print(f"both packages feasible: {direct.feasible and sketch.feasible}")

    # ------------------------------------------ false infeasibility & the hybrid sketch
    # An aggressively tight availability window: feasible, but the group
    # centroids may not be able to hit it, so the plain sketch can fail.
    tight_query = parse_paql(f"""
    SELECT PACKAGE(T) AS P
    FROM portfolio T REPEAT 0
    SUCH THAT COUNT(P.*) = 2 AND
              SUM(P.availqty) BETWEEN {table.numeric_column('availqty').min() * 2:.1f}
                                  AND {table.numeric_column('availqty').min() * 2 + 50:.1f}
    MINIMIZE SUM(P.supplycost)
    """)
    partitioning = QuadTreePartitioner(size_threshold=max(1, table.num_rows // 12)).partition(
        table, ["availqty", "partsize", "supplycost"]
    )

    print("\n=== False infeasibility and the hybrid sketch (Section 4.4) ===")
    plain = SketchRefineEvaluator(config=SketchRefineConfig(use_hybrid_sketch=False))
    try:
        plain.evaluate(table, tight_query, partitioning)
        print("plain sketch: found a package (no false infeasibility this time)")
    except InfeasiblePackageQueryError as error:
        print(f"plain sketch: reported infeasible (false negative possible: "
              f"{error.false_negative_possible})")

    hybrid = SketchRefineEvaluator(config=SketchRefineConfig(use_hybrid_sketch=True))
    try:
        package = hybrid.evaluate(table, tight_query, partitioning)
        report = check_package(package, tight_query)
        print(f"hybrid sketch: found a feasible package "
              f"(cost {package.sum('supplycost'):.2f}, feasible={report.feasible})")
    except InfeasiblePackageQueryError:
        print("hybrid sketch: the query really is infeasible for this data")


if __name__ == "__main__":
    main()
