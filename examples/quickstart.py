#!/usr/bin/env python3
"""Quickstart: the paper's meal-planner example (Example 1 / query Q).

A dietitian wants three gluten-free meals, between 2.0 and 2.5 thousand
calories in total, minimising saturated fat.  This script shows the three ways
to run that package query:

1. PaQL text through the engine (the paper's interface),
2. the programmatic query builder,
3. the individual pieces (translation to an ILP, DIRECT evaluation) for users
   who want to see what happens under the hood.

Run with::

    python examples/quickstart.py

Pass ``--time`` to additionally print a per-phase wall-clock breakdown
(parse, translate, solve) and the LP-solve / warm-start counters of the
bundled solver, so the effect of basis reuse is visible without running the
pytest benchmarks.

Pass ``--workers N`` to run the query again through SKETCHREFINE with its
refine phase fanned out over ``N`` worker processes (the parallel solve
plane).  The answer is bit-identical for every worker count — only the
timing changes::

    python examples/quickstart.py --workers 4
"""

import argparse
import time

from repro import PackageQueryEngine
from repro.core import DirectEvaluator, translate_query
from repro.workloads.recipes import MEAL_PLANNER_PAQL, meal_planner_query, recipes_table


def timing_report(num_rows: int = 150, seed: int = 7) -> None:
    """Per-phase timings and LP-solve counters for the meal-planner query."""
    from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
    from repro.ilp.lp_backend import LpBackend
    from repro.paql.parser import parse_paql

    recipes = recipes_table(num_rows=num_rows, seed=seed)

    t0 = time.perf_counter()
    query = parse_paql(MEAL_PLANNER_PAQL)
    t1 = time.perf_counter()
    translation = translate_query(recipes, query)
    t2 = time.perf_counter()

    print("=== Timing breakdown (--time) ===")
    print(f"parse PaQL            : {(t1 - t0) * 1000:8.2f} ms")
    print(f"translate to ILP      : {(t2 - t1) * 1000:8.2f} ms "
          f"({translation.num_variables} vars, {translation.model.num_constraints} constraints)")

    for backend in (LpBackend.HIGHS, LpBackend.SIMPLEX):
        solver = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-6), lp_backend=backend
        )
        t3 = time.perf_counter()
        solution = solver.solve(translation.model)
        t4 = time.perf_counter()
        stats = solution.stats
        line = (
            f"solve ({backend.value:7s})       : {(t4 - t3) * 1000:8.2f} ms  "
            f"status={solution.status.value}  nodes={stats.nodes_explored}  "
            f"lp_solves={stats.lp_solves}"
        )
        if backend is LpBackend.SIMPLEX:
            line += (
                f"  simplex_iters={stats.simplex_iterations}"
                f"  warm_start_hits={stats.warm_start_hits}"
                f" ({stats.warm_start_rate:.0%})"
            )
        print(line)
    print()


def parallel_report(workers: int, num_rows: int = 600, seed: int = 7) -> None:
    """SKETCHREFINE with the refine batches fanned out over worker processes."""
    recipes = recipes_table(num_rows=num_rows, seed=seed)
    query = meal_planner_query()

    print(f"=== Parallel refine (--workers {workers}) ===")
    objectives = {}
    for count in (1, workers):
        engine = PackageQueryEngine(workers=count)
        engine.register_table(recipes)
        engine.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=50)
        result = engine.execute(query, method="sketchrefine", cache="bypass")
        stats = result.details["sketchrefine_stats"]
        objectives[count] = result.objective
        print(
            f"workers={count}: refine {stats.refine_seconds * 1000:7.1f} ms  "
            f"({stats.refine_queries} refine ILPs, "
            f"{stats.refine_parallel_tasks} in worker processes, "
            f"{stats.refine_rounds} rounds)"
        )
    assert objectives[1] == objectives[workers], "parallel answer diverged"
    print(f"objective identical at both worker counts: {objectives[1]:.2f}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--time",
        action="store_true",
        help="print per-phase wall-clock timings and LP-solve counts",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="also run SKETCHREFINE with N refine worker processes "
        "(bit-identical answer, parallel refine phase)",
    )
    args = parser.parse_args()

    if args.time:
        timing_report()
    if args.workers is not None and args.workers > 1:
        parallel_report(args.workers)

    recipes = recipes_table(num_rows=150, seed=7)

    # ------------------------------------------------------------------ PaQL text
    engine = PackageQueryEngine()
    engine.register_table(recipes)
    result = engine.execute(MEAL_PLANNER_PAQL)

    print("=== Meal plan from PaQL text ===")
    print(MEAL_PLANNER_PAQL.strip())
    print()
    plan = result.materialize()
    for row in plan.rows():
        print(f"  {row['name']:<24} kcal={row['kcal']:.3f}  sat_fat={row['saturated_fat']:.2f}")
    print(f"total kcal        = {result.package.sum('kcal'):.3f}")
    print(f"total sat. fat    = {result.objective:.2f}  (minimised)")
    print(f"evaluation method = {result.method.value}, {result.wall_seconds * 1000:.1f} ms")
    print()

    # --------------------------------------------------------- programmatic builder
    query = meal_planner_query()
    result_built = engine.execute(query, method="direct")
    assert abs(result_built.objective - result.objective) < 1e-6
    print("=== Same query via the builder API ===")
    print(f"objective matches the PaQL run: {result_built.objective:.2f}")
    print()

    # ------------------------------------------------------------- under the hood
    translation = translate_query(recipes, query)
    print("=== Under the hood ===")
    print(f"ILP variables   : {translation.num_variables} (one per gluten-free recipe)")
    print(f"ILP constraints : {translation.model.num_constraints}")
    package = DirectEvaluator().evaluate(recipes, query)
    print(f"DIRECT objective: {package.sum('saturated_fat'):.2f}")


if __name__ == "__main__":
    main()
