#!/usr/bin/env python3
"""Quickstart: the paper's meal-planner example (Example 1 / query Q).

A dietitian wants three gluten-free meals, between 2.0 and 2.5 thousand
calories in total, minimising saturated fat.  This script shows the three ways
to run that package query:

1. PaQL text through the engine (the paper's interface),
2. the programmatic query builder,
3. the individual pieces (translation to an ILP, DIRECT evaluation) for users
   who want to see what happens under the hood.

Run with::

    python examples/quickstart.py
"""

from repro import PackageQueryEngine
from repro.core import DirectEvaluator, translate_query
from repro.workloads.recipes import MEAL_PLANNER_PAQL, meal_planner_query, recipes_table


def main() -> None:
    recipes = recipes_table(num_rows=150, seed=7)

    # ------------------------------------------------------------------ PaQL text
    engine = PackageQueryEngine()
    engine.register_table(recipes)
    result = engine.execute(MEAL_PLANNER_PAQL)

    print("=== Meal plan from PaQL text ===")
    print(MEAL_PLANNER_PAQL.strip())
    print()
    plan = result.materialize()
    for row in plan.rows():
        print(f"  {row['name']:<24} kcal={row['kcal']:.3f}  sat_fat={row['saturated_fat']:.2f}")
    print(f"total kcal        = {result.package.sum('kcal'):.3f}")
    print(f"total sat. fat    = {result.objective:.2f}  (minimised)")
    print(f"evaluation method = {result.method.value}, {result.wall_seconds * 1000:.1f} ms")
    print()

    # --------------------------------------------------------- programmatic builder
    query = meal_planner_query()
    result_built = engine.execute(query, method="direct")
    assert abs(result_built.objective - result.objective) < 1e-6
    print("=== Same query via the builder API ===")
    print(f"objective matches the PaQL run: {result_built.objective:.2f}")
    print()

    # ------------------------------------------------------------- under the hood
    translation = translate_query(recipes, query)
    print("=== Under the hood ===")
    print(f"ILP variables   : {translation.num_variables} (one per gluten-free recipe)")
    print(f"ILP constraints : {translation.model.num_constraints}")
    package = DirectEvaluator().evaluate(recipes, query)
    print(f"DIRECT objective: {package.sum('saturated_fat'):.2f}")


if __name__ == "__main__":
    main()
