#!/usr/bin/env python3
"""Night-sky exploration (Example 2 of the paper) at scale with SKETCHREFINE.

An astrophysicist wants a set of galaxies whose overall redshift falls in a
target band, maximising total Petrosian flux — a package query over a large
photometric catalogue.  This script:

1. generates a synthetic Galaxy table (a stand-in for the SDSS Galaxy view),
2. builds the offline quad-tree partitioning once,
3. answers the query with both DIRECT and SKETCHREFINE, and
4. compares their runtimes and objective values (the paper's Figure 5 story).

Run with::

    python examples/night_sky.py [num_rows]
"""

import sys
import time

from repro import PackageQueryEngine
from repro.paql import query_over
from repro.workloads.galaxy import galaxy_table, galaxy_workload


def main(num_rows: int = 4_000) -> None:
    table = galaxy_table(num_rows=num_rows, seed=11)
    workload = galaxy_workload(table, seed=11)

    engine = PackageQueryEngine()
    engine.register_table(table)

    print(f"Galaxy catalogue: {table.num_rows} tuples, {table.num_columns} attributes")

    # Offline partitioning on the workload attributes, τ = 10 % of the data,
    # no radius condition — the paper's default experimental setting.
    start = time.perf_counter()
    partitioning = engine.build_partitioning(
        "galaxy",
        workload.workload_attributes,
        size_threshold=max(1, table.num_rows // 10),
    )
    print(
        f"Offline partitioning: {partitioning.num_groups} groups "
        f"in {time.perf_counter() - start:.2f}s (done once, reused for the whole workload)"
    )
    print()

    # The night-sky query: 12 galaxies, total redshift in a band, maximise flux.
    mean_redshift = sum(table.numeric_column("redshift")) / table.num_rows
    query = (
        query_over("galaxy", name="night_sky")
        .no_repetition()
        .count_equals(12)
        .sum_between("redshift", 0.7 * mean_redshift * 12, 1.3 * mean_redshift * 12)
        .maximize_sum("petroFlux_r")
        .build()
    )

    direct_result = engine.execute(query, method="direct")
    sketch_result = engine.execute(query, method="sketchrefine")

    print("=== Night-sky package query ===")
    print(f"DIRECT       : {direct_result.wall_seconds:6.2f}s  total flux = {direct_result.objective:10.2f}")
    print(f"SKETCHREFINE : {sketch_result.wall_seconds:6.2f}s  total flux = {sketch_result.objective:10.2f}")
    if sketch_result.objective:
        ratio = direct_result.objective / sketch_result.objective
        print(f"approximation ratio (DIRECT / SKETCHREFINE) = {ratio:.3f}")
    if sketch_result.wall_seconds:
        print(f"speed-up = {direct_result.wall_seconds / sketch_result.wall_seconds:.1f}x")
    print()

    print("Selected galaxies (SKETCHREFINE):")
    for row in sketch_result.materialize().rows():
        print(
            f"  ra={row['ra']:7.2f} dec={row['dec']:6.2f} "
            f"z={row['redshift']:.3f} flux={row['petroFlux_r']:9.2f}"
        )


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    main(rows)
