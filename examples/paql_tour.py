#!/usr/bin/env python3
"""A tour of the PaQL language features.

Walks through every language construct of Section 2.1 of the paper on a small
recipes table: base vs global predicates, REPEAT, BETWEEN windows, filtered
sub-query aggregates, AVG linearisation, maximisation and minimisation
objectives, and what happens when a query is infeasible.

Run with::

    python examples/paql_tour.py
"""

from repro import PackageQueryEngine
from repro.errors import InfeasiblePackageQueryError
from repro.paql import format_paql, parse_paql
from repro.workloads.recipes import recipes_table


QUERIES = {
    "Strict cardinality + BETWEEN window (the running example)": """
        SELECT PACKAGE(R) AS P
        FROM recipes R REPEAT 0
        WHERE R.gluten = 'free'
        SUCH THAT COUNT(P.*) = 3 AND
                  SUM(P.kcal) BETWEEN 2.0 AND 2.5
        MINIMIZE SUM(P.saturated_fat)
    """,
    "Repetition allowed (REPEAT 2): a favourite dish may appear up to 3 times": """
        SELECT PACKAGE(R) AS P
        FROM recipes R REPEAT 2
        SUCH THAT COUNT(P.*) = 5 AND
                  SUM(P.kcal) <= 4.0
        MAXIMIZE SUM(P.protein)
    """,
    "AVG constraint (linearised during translation)": """
        SELECT PACKAGE(R) AS P
        FROM recipes R REPEAT 0
        SUCH THAT COUNT(P.*) BETWEEN 3 AND 6 AND
                  AVG(P.kcal) <= 0.9
        MAXIMIZE SUM(P.protein)
    """,
    "Filtered sub-query aggregates (the paper's carbs/protein example)": """
        SELECT PACKAGE(R) AS P
        FROM recipes R REPEAT 0
        WHERE R.gluten = 'free'
        SUCH THAT COUNT(P.*) = 4 AND
                  (SELECT COUNT(*) FROM P WHERE P.carbs > 30) >=
                  (SELECT COUNT(*) FROM P WHERE P.protein <= 10)
        MINIMIZE SUM(P.saturated_fat)
    """,
    "An infeasible query (calorie window no 3 meals can hit)": """
        SELECT PACKAGE(R) AS P
        FROM recipes R REPEAT 0
        SUCH THAT COUNT(P.*) = 3 AND
                  SUM(P.kcal) BETWEEN 90.0 AND 95.0
        MINIMIZE SUM(P.saturated_fat)
    """,
}


def main() -> None:
    engine = PackageQueryEngine()
    engine.register_table(recipes_table(num_rows=200, seed=13))

    for title, text in QUERIES.items():
        print(f"=== {title} ===")
        query = parse_paql(text)
        print(format_paql(query))
        try:
            result = engine.execute(query, method="direct")
        except InfeasiblePackageQueryError:
            print("-> the engine correctly reports this query as INFEASIBLE")
            print()
            continue
        package = result.package
        print(
            f"-> package of {package.cardinality} tuples "
            f"({package.num_distinct} distinct), objective = {result.objective:.3f}, "
            f"feasible = {result.feasible}"
        )
        print()


if __name__ == "__main__":
    main()
