"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.workloads.recipes import recipes_table


@pytest.fixture
def small_numeric_table() -> Table:
    """A tiny all-numeric table with known values, used across many tests."""
    schema = Schema(
        [
            Column("a", DataType.FLOAT),
            Column("b", DataType.FLOAT),
            Column("c", DataType.INT),
        ]
    )
    return Table(
        schema,
        {
            "a": [1.0, 2.0, 3.0, 4.0, 5.0],
            "b": [10.0, 20.0, 30.0, 40.0, 50.0],
            "c": [1, 0, 1, 0, 1],
        },
        name="numbers",
    )


@pytest.fixture
def mixed_table() -> Table:
    """A table mixing numeric, string and nullable columns."""
    schema = Schema(
        [
            Column("name", DataType.STRING),
            Column("category", DataType.STRING, nullable=True),
            Column("value", DataType.FLOAT, nullable=True),
            Column("weight", DataType.FLOAT),
        ]
    )
    return Table(
        schema,
        {
            "name": ["alpha", "beta", "gamma", "delta"],
            "category": ["x", None, "y", "x"],
            "value": [1.5, 2.5, None, 4.0],
            "weight": [1.0, 2.0, 3.0, 4.0],
        },
        name="mixed",
    )


@pytest.fixture
def recipes() -> Table:
    """A deterministic recipes table (the paper's running example data)."""
    return recipes_table(num_rows=80, seed=7)


@pytest.fixture
def fast_solver() -> BranchAndBoundSolver:
    """A branch-and-bound solver with small limits, for unit tests."""
    return BranchAndBoundSolver(
        limits=SolverLimits(time_limit_seconds=20.0, node_limit=5_000, relative_gap=1e-6)
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
