"""Tests for repro.dataset.schema."""

import numpy as np
import pytest

from repro.dataset.schema import Column, DataType, Schema
from repro.errors import ColumnNotFoundError, SchemaError


class TestDataType:
    def test_numpy_dtypes(self):
        assert DataType.INT.numpy_dtype == np.dtype(np.int64)
        assert DataType.FLOAT.numpy_dtype == np.dtype(np.float64)
        assert DataType.STRING.numpy_dtype == np.dtype(object)

    def test_is_numeric(self):
        assert DataType.INT.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric

    def test_infer_int(self):
        assert DataType.infer([1, 2, 3]) is DataType.INT

    def test_infer_float_from_mixed(self):
        assert DataType.infer([1, 2.5, 3]) is DataType.FLOAT

    def test_infer_float_from_none(self):
        assert DataType.infer([1, None, 3]) is DataType.FLOAT

    def test_infer_string(self):
        assert DataType.infer([1, "x", 3]) is DataType.STRING

    def test_infer_empty_defaults_to_float(self):
        assert DataType.infer([]) is DataType.FLOAT

    def test_infer_numpy_scalars(self):
        assert DataType.infer([np.int64(1), np.int64(2)]) is DataType.INT
        assert DataType.infer([np.float64(1.5)]) is DataType.FLOAT


class TestColumn:
    def test_valid_column(self):
        column = Column("kcal", DataType.FLOAT)
        assert column.name == "kcal"
        assert column.is_numeric

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DataType.FLOAT)

    def test_nullable_int_rejected(self):
        with pytest.raises(SchemaError):
            Column("count", DataType.INT, nullable=True)

    def test_nullable_float_allowed(self):
        column = Column("value", DataType.FLOAT, nullable=True)
        assert column.nullable


class TestSchema:
    def test_basic_construction(self):
        schema = Schema([Column("a", DataType.FLOAT), Column("b", DataType.STRING)])
        assert len(schema) == 2
        assert schema.names == ("a", "b")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", DataType.FLOAT), Column("a", DataType.INT)])

    def test_non_column_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["not a column"])

    def test_of_constructor(self):
        schema = Schema.of(a="float", b="int", c="string")
        assert schema["a"].dtype is DataType.FLOAT
        assert schema["b"].dtype is DataType.INT
        assert schema["c"].dtype is DataType.STRING

    def test_numeric_constructor(self):
        schema = Schema.numeric(["x", "y"])
        assert all(c.dtype is DataType.FLOAT for c in schema)

    def test_contains_and_getitem(self):
        schema = Schema.numeric(["x", "y"])
        assert "x" in schema
        assert "z" not in schema
        assert schema["y"].name == "y"

    def test_missing_column_error_lists_available(self):
        schema = Schema.numeric(["x", "y"])
        with pytest.raises(ColumnNotFoundError) as excinfo:
            schema["z"]
        assert "x" in str(excinfo.value)

    def test_index_of(self):
        schema = Schema.numeric(["x", "y", "z"])
        assert schema.index_of("y") == 1
        with pytest.raises(ColumnNotFoundError):
            schema.index_of("w")

    def test_require(self):
        schema = Schema.numeric(["x", "y"])
        schema.require(["x"])
        with pytest.raises(ColumnNotFoundError):
            schema.require(["x", "missing"])

    def test_require_numeric(self):
        schema = Schema([Column("x", DataType.FLOAT), Column("s", DataType.STRING)])
        schema.require_numeric(["x"])
        with pytest.raises(SchemaError):
            schema.require_numeric(["s"])

    def test_numeric_names(self):
        schema = Schema([Column("x", DataType.FLOAT), Column("s", DataType.STRING), Column("i", DataType.INT)])
        assert schema.numeric_names == ("x", "i")

    def test_project(self):
        schema = Schema.numeric(["x", "y", "z"])
        projected = schema.project(["z", "x"])
        assert projected.names == ("z", "x")

    def test_with_column(self):
        schema = Schema.numeric(["x"])
        extended = schema.with_column(Column("y", DataType.STRING))
        assert extended.names == ("x", "y")
        assert schema.names == ("x",)  # Original unchanged.

    def test_rename(self):
        schema = Schema.numeric(["x", "y"])
        renamed = schema.rename({"x": "a"})
        assert renamed.names == ("a", "y")
        with pytest.raises(ColumnNotFoundError):
            schema.rename({"missing": "a"})

    def test_equality_and_hash(self):
        schema_one = Schema.numeric(["x", "y"])
        schema_two = Schema.numeric(["x", "y"])
        schema_three = Schema.numeric(["y", "x"])
        assert schema_one == schema_two
        assert hash(schema_one) == hash(schema_two)
        assert schema_one != schema_three

    def test_repr(self):
        schema = Schema.numeric(["x"])
        assert "x:float" in repr(schema)
