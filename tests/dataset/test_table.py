"""Tests for repro.dataset.table."""

import numpy as np
import pytest

from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.errors import ColumnNotFoundError, TableError


class TestConstruction:
    def test_basic(self, small_numeric_table):
        assert small_numeric_table.num_rows == 5
        assert small_numeric_table.num_columns == 3
        assert len(small_numeric_table) == 5

    def test_missing_column_data(self):
        schema = Schema.numeric(["a", "b"])
        with pytest.raises(TableError, match="missing data"):
            Table(schema, {"a": [1.0]})

    def test_extra_column_data(self):
        schema = Schema.numeric(["a"])
        with pytest.raises(TableError, match="unknown columns"):
            Table(schema, {"a": [1.0], "b": [2.0]})

    def test_length_mismatch(self):
        schema = Schema.numeric(["a", "b"])
        with pytest.raises(TableError, match="length"):
            Table(schema, {"a": [1.0, 2.0], "b": [1.0]})

    def test_from_rows_tuples(self):
        schema = Schema.numeric(["a", "b"])
        table = Table.from_rows(schema, [(1, 2), (3, 4)])
        assert table.row(1) == {"a": 3.0, "b": 4.0}

    def test_from_rows_dicts(self):
        schema = Schema.numeric(["a", "b"])
        table = Table.from_rows(schema, [{"a": 1, "b": 2}, {"b": 4, "a": 3}])
        assert table.row(1) == {"a": 3.0, "b": 4.0}

    def test_from_rows_wrong_arity(self):
        schema = Schema.numeric(["a", "b"])
        with pytest.raises(TableError):
            Table.from_rows(schema, [(1, 2, 3)])

    def test_from_dict_infers_types(self):
        table = Table.from_dict({"x": [1, 2, 3], "s": ["a", "b", None], "f": [1.0, None, 3.0]})
        assert table.schema["x"].dtype is DataType.INT
        assert table.schema["s"].dtype is DataType.STRING
        assert table.schema["f"].dtype is DataType.FLOAT
        assert table.schema["f"].nullable

    def test_empty_table(self):
        table = Table.empty(Schema.numeric(["a"]))
        assert table.num_rows == 0
        assert bool(table) is True

    def test_int_coercion_failure(self):
        schema = Schema([Column("a", DataType.INT)])
        with pytest.raises(TableError):
            Table(schema, {"a": ["not-an-int"]})

    def test_string_column_preserves_none(self, mixed_table):
        assert mixed_table.column("category")[1] is None


class TestAccessors:
    def test_column_returns_array(self, small_numeric_table):
        column = small_numeric_table.column("a")
        assert isinstance(column, np.ndarray)
        assert column.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_unknown_column(self, small_numeric_table):
        with pytest.raises(ColumnNotFoundError):
            small_numeric_table.column("missing")

    def test_numeric_column_on_int(self, small_numeric_table):
        values = small_numeric_table.numeric_column("c")
        assert values.dtype == np.float64

    def test_numeric_matrix(self, small_numeric_table):
        matrix = small_numeric_table.numeric_matrix(["a", "b"])
        assert matrix.shape == (5, 2)
        assert matrix[2].tolist() == [3.0, 30.0]

    def test_numeric_matrix_empty_columns(self, small_numeric_table):
        matrix = small_numeric_table.numeric_matrix([])
        assert matrix.shape == (5, 0)

    def test_row_out_of_range(self, small_numeric_table):
        with pytest.raises(TableError):
            small_numeric_table.row(99)

    def test_rows_iteration(self, small_numeric_table):
        rows = list(small_numeric_table.rows())
        assert len(rows) == 5
        assert rows[0] == {"a": 1.0, "b": 10.0, "c": 1}

    def test_to_dict_native_types(self, small_numeric_table):
        data = small_numeric_table.to_dict()
        assert isinstance(data["c"][0], int)
        assert isinstance(data["a"][0], float)


class TestDerivation:
    def test_take_with_repeats(self, small_numeric_table):
        taken = small_numeric_table.take([0, 0, 4])
        assert taken.num_rows == 3
        assert taken.column("a").tolist() == [1.0, 1.0, 5.0]

    def test_take_out_of_range(self, small_numeric_table):
        with pytest.raises(TableError):
            small_numeric_table.take([10])

    def test_filter(self, small_numeric_table):
        mask = small_numeric_table.column("a") > 2.5
        filtered = small_numeric_table.filter(mask)
        assert filtered.num_rows == 3

    def test_filter_shape_mismatch(self, small_numeric_table):
        with pytest.raises(TableError):
            small_numeric_table.filter(np.array([True, False]))

    def test_select_columns(self, small_numeric_table):
        selected = small_numeric_table.select_columns(["b"])
        assert selected.schema.names == ("b",)

    def test_with_column(self, small_numeric_table):
        extended = small_numeric_table.with_column(Column("d", DataType.FLOAT), [0.0] * 5)
        assert "d" in extended.schema
        assert "d" not in small_numeric_table.schema

    def test_replace_column(self, small_numeric_table):
        replaced = small_numeric_table.replace_column("a", [9.0] * 5)
        assert replaced.column("a").tolist() == [9.0] * 5
        assert small_numeric_table.column("a").tolist()[0] == 1.0

    def test_rename(self, small_numeric_table):
        renamed = small_numeric_table.rename({"a": "alpha"})
        assert "alpha" in renamed.schema
        assert "a" not in renamed.schema

    def test_head(self, small_numeric_table):
        assert small_numeric_table.head(2).num_rows == 2
        assert small_numeric_table.head(100).num_rows == 5

    def test_sample_without_replacement(self, small_numeric_table):
        sample = small_numeric_table.sample(3, seed=1)
        assert sample.num_rows == 3
        with pytest.raises(TableError):
            small_numeric_table.sample(10)

    def test_sample_with_replacement(self, small_numeric_table):
        sample = small_numeric_table.sample(10, seed=1, replace=True)
        assert sample.num_rows == 10

    def test_concat(self, small_numeric_table):
        combined = small_numeric_table.concat(small_numeric_table)
        assert combined.num_rows == 10

    def test_concat_schema_mismatch(self, small_numeric_table, mixed_table):
        with pytest.raises(TableError):
            small_numeric_table.concat(mixed_table)


class TestNullHandling:
    def test_null_mask_float(self, mixed_table):
        mask = mixed_table.null_mask("value")
        assert mask.tolist() == [False, False, True, False]

    def test_null_mask_string(self, mixed_table):
        mask = mixed_table.null_mask("category")
        assert mask.tolist() == [False, True, False, False]

    def test_null_mask_non_nullable(self, small_numeric_table):
        assert not small_numeric_table.null_mask("c").any()

    def test_drop_nulls_all_columns(self, mixed_table):
        clean = mixed_table.drop_nulls()
        assert clean.num_rows == 2

    def test_drop_nulls_subset(self, mixed_table):
        clean = mixed_table.drop_nulls(["value"])
        assert clean.num_rows == 3


class TestEquality:
    def test_equals_same_content(self, small_numeric_table):
        copy = small_numeric_table.take(np.arange(5))
        assert small_numeric_table.equals(copy)

    def test_equals_detects_difference(self, small_numeric_table):
        other = small_numeric_table.replace_column("a", [0.0] * 5)
        assert not small_numeric_table.equals(other)

    def test_equals_nan_aware(self):
        table_one = Table.from_dict({"x": [1.0, None]})
        table_two = Table.from_dict({"x": [1.0, None]})
        assert table_one.equals(table_two)

    def test_repr_mentions_name(self, small_numeric_table):
        assert "numbers" in repr(small_numeric_table)


class TestVersionedUpdates:
    def test_fresh_tables_are_version_zero(self, small_numeric_table):
        assert small_numeric_table.version == 0

    def test_append_rows_bumps_version_and_keeps_base(self, small_numeric_table):
        appended, delta = small_numeric_table.append_rows([(6.0, 60.0, 0), (7.0, 70.0, 1)])
        assert small_numeric_table.version == 0
        assert small_numeric_table.num_rows == 5
        assert appended.version == 1
        assert appended.num_rows == 7
        assert appended.column("a").tolist()[-2:] == [6.0, 7.0]
        assert delta.base_version == 0 and delta.new_version == 1
        assert delta.num_inserted == 2 and delta.num_deleted == 0

    def test_append_table_block_shares_schema(self, small_numeric_table):
        block = small_numeric_table.take(np.array([0, 1]))
        appended, _ = small_numeric_table.append_rows(block)
        assert appended.num_rows == 7

    def test_append_schema_mismatch_rejected(self, small_numeric_table, mixed_table):
        with pytest.raises(TableError):
            small_numeric_table.append_rows(mixed_table)

    def test_delete_rows_by_mask(self, small_numeric_table):
        mask = np.array([True, False, False, True, False])
        deleted, delta = small_numeric_table.delete_rows(mask)
        assert deleted.version == 1
        assert deleted.column("a").tolist() == [2.0, 3.0, 5.0]
        assert delta.num_deleted == 2
        assert delta.surviving_rows().tolist() == [1, 2, 4]

    def test_delete_rows_by_indices(self, small_numeric_table):
        deleted, _ = small_numeric_table.delete_rows([0, 4])
        assert deleted.column("a").tolist() == [2.0, 3.0, 4.0]

    def test_delete_out_of_range_rejected(self, small_numeric_table):
        with pytest.raises(TableError):
            small_numeric_table.delete_rows([99])

    def test_update_rows_combined_single_version_bump(self, small_numeric_table):
        updated, delta = small_numeric_table.update_rows(
            insert=[(9.0, 90.0, 0)], delete=[0]
        )
        assert updated.version == 1
        assert updated.num_rows == 5
        assert updated.column("a").tolist() == [2.0, 3.0, 4.0, 5.0, 9.0]
        assert delta.num_inserted == 1 and delta.num_deleted == 1

    def test_apply_delta_wrong_version_rejected(self, small_numeric_table):
        appended, delta = small_numeric_table.append_rows([(6.0, 60.0, 0)])
        with pytest.raises(TableError, match="version"):
            appended.apply_delta(delta)

    def test_row_remap(self, small_numeric_table):
        _, delta = small_numeric_table.update_rows(insert=[(6.0, 60.0, 0)], delete=[1])
        assert delta.row_remap().tolist() == [0, -1, 1, 2, 3]

    def test_chained_versions(self, small_numeric_table):
        table = small_numeric_table
        for expected in (1, 2, 3):
            table, _ = table.append_rows([(1.0, 1.0, 1)])
            assert table.version == expected
        assert table.num_rows == 8

    def test_version_in_repr(self, small_numeric_table):
        appended, _ = small_numeric_table.append_rows([(6.0, 60.0, 0)])
        assert "version=1" in repr(appended)

    def test_string_and_null_columns_survive_updates(self, mixed_table):
        appended, _ = mixed_table.append_rows(
            [{"name": "epsilon", "category": None, "value": None, "weight": 5.0}]
        )
        assert appended.column("name")[-1] == "epsilon"
        assert appended.column("category")[-1] is None
        deleted, _ = appended.delete_rows([0])
        assert deleted.column("name")[0] == "beta"

    def test_delete_rejects_non_integer_indices(self, small_numeric_table):
        with pytest.raises(TableError, match="integer"):
            small_numeric_table.delete_rows(np.array([1.9, 2.9]))

    def test_delete_empty_index_list_is_noop(self, small_numeric_table):
        deleted, delta = small_numeric_table.delete_rows([])
        assert deleted.version == 1
        assert deleted.num_rows == 5
        assert delta.num_deleted == 0

    def test_delta_rejects_non_boolean_mask(self, small_numeric_table):
        from repro.dataset.table import TableDelta

        empty = Table.empty(small_numeric_table.schema)
        with pytest.raises(TableError, match="boolean"):
            TableDelta(0, empty, np.array([0, 1, 0, 0, 1]))

    def test_delete_rejects_duplicate_indices(self, small_numeric_table):
        # Catches 0/1 masks passed as ints, which would silently delete the
        # wrong rows if interpreted as indices.
        with pytest.raises(TableError, match="duplicate"):
            small_numeric_table.delete_rows([0, 1, 1, 0])


class TestDeltaMerge:
    def _random_delta(self, table, rng):
        """A random combined insert/delete change for ``table``."""
        num_insert = int(rng.integers(0, 4))
        insert = [
            (float(rng.integers(0, 100)), float(rng.integers(0, 100)), int(rng.integers(0, 2)))
            for _ in range(num_insert)
        ]
        mask = rng.random(table.num_rows) < 0.25
        return table.update_rows(insert=insert or None, delete=mask)

    def test_merge_equals_sequential_application(self, small_numeric_table):
        base = small_numeric_table
        mid, first = base.update_rows(insert=[(6.0, 60.0, 0)], delete=[1])
        final, second = mid.update_rows(insert=[(7.0, 70.0, 1)], delete=[0, 4])
        merged = first.merge(second)
        assert merged.base_version == 0
        assert merged.spans == 2
        assert merged.new_version == final.version == 2
        replayed = base.apply_delta(merged)
        assert replayed.version == final.version
        assert replayed.equals(final)

    def test_merge_drops_inserts_deleted_by_the_later_delta(self, small_numeric_table):
        base = small_numeric_table
        mid, first = base.append_rows([(6.0, 60.0, 0), (7.0, 70.0, 1)])
        # Delete the first of the two freshly inserted rows (index 5 of mid).
        final, second = mid.delete_rows([5])
        merged = first.merge(second)
        assert merged.num_inserted == 1
        assert merged.inserted.column("a").tolist() == [7.0]
        assert base.apply_delta(merged).equals(final)

    def test_merge_version_mismatch_rejected(self, small_numeric_table):
        _, first = small_numeric_table.append_rows([(6.0, 60.0, 0)])
        with pytest.raises(TableError, match="merge"):
            first.merge(first)

    def test_merge_mask_shape_mismatch_rejected(self, small_numeric_table):
        from repro.dataset.table import TableDelta

        _, first = small_numeric_table.append_rows([(6.0, 60.0, 0)])
        bad = TableDelta(1, Table.empty(small_numeric_table.schema), np.zeros(3, dtype=bool))
        with pytest.raises(TableError, match="shape"):
            first.merge(bad)

    def test_row_remap_of_merged_delta_composes(self, small_numeric_table):
        base = small_numeric_table
        mid, first = base.update_rows(insert=[(6.0, 60.0, 0)], delete=[2])
        final, second = mid.delete_rows([0])
        merged = first.merge(second)
        remap = merged.row_remap()
        # Row 0 deleted second, row 2 deleted first; survivors keep order.
        assert remap.tolist() == [-1, 0, -1, 1, 2]
        survivors = base.take(np.nonzero(remap >= 0)[0])
        for position, row in enumerate(np.nonzero(remap >= 0)[0]):
            assert final.row(int(remap[row])) == base.row(int(row))

    def test_merged_chain_matches_random_stream(self, small_numeric_table, rng):
        table = small_numeric_table
        merged = None
        expected = table
        for _ in range(6):
            expected, delta = self._random_delta(expected, rng)
            merged = delta if merged is None else merged.merge(delta)
        replayed = small_numeric_table.apply_delta(merged)
        assert merged.spans == 6
        assert replayed.version == expected.version == 6
        assert replayed.equals(expected)

    def test_merge_with_empty_delta_is_identity_up_to_spans(self, small_numeric_table):
        base = small_numeric_table
        mid, first = base.update_rows(insert=[(6.0, 60.0, 0)], delete=[1])
        noop_mid, empty = mid.update_rows(delete=[])
        assert (empty.num_inserted, empty.num_deleted) == (0, 0)
        # Empty-after: the change is first's, only the version window widens.
        merged = first.merge(empty)
        assert merged.spans == 2
        assert base.apply_delta(merged).equals(noop_mid)
        # Empty-before: same, anchored one version earlier.
        noop_base, leading = base.update_rows(delete=[])
        _, change = noop_base.update_rows(insert=[(6.0, 60.0, 0)], delete=[1])
        merged = leading.merge(change)
        assert merged.spans == 2
        rows = base.apply_delta(merged)
        assert rows.num_rows == mid.num_rows
        assert rows.column("a").tolist() == mid.column("a").tolist()

    def test_merge_after_delete_everything(self, small_numeric_table):
        # The first delta empties the table entirely; the later delta's mask
        # covers zero rows (shape (0,)) and only inserts.
        base = small_numeric_table
        emptied, wipe = base.delete_rows(np.arange(base.num_rows))
        assert emptied.num_rows == 0
        final, refill = emptied.append_rows([(8.0, 80.0, 1), (9.0, 90.0, 0)])
        merged = wipe.merge(refill)
        assert merged.deleted_mask.all()
        assert merged.num_inserted == 2
        replayed = base.apply_delta(merged)
        assert replayed.equals(final)
        assert (merged.row_remap() == -1).all()

    def test_merge_where_the_later_delta_deletes_everything(self, small_numeric_table):
        # Every base row and every row the first delta inserted dies: the
        # merged delta must be a full wipe with no surviving inserts.
        base = small_numeric_table
        mid, first = base.update_rows(insert=[(6.0, 60.0, 0)], delete=[2])
        final, wipe = mid.delete_rows(np.arange(mid.num_rows))
        merged = first.merge(wipe)
        assert merged.deleted_mask.all()
        assert merged.num_inserted == 0
        replayed = base.apply_delta(merged)
        assert replayed.num_rows == 0
        assert replayed.equals(final)

    def test_merge_chain_that_renumbers_the_row_space(self, small_numeric_table):
        # Each step deletes the current head row and inserts a new tail row,
        # so every surviving row's index shifts at every step.  The merged
        # remap must compose all the shifts at once.
        base = small_numeric_table
        expected = base
        merged = None
        for step in range(4):
            expected, delta = expected.update_rows(
                insert=[(100.0 + step, 0.0, step % 2)], delete=[0]
            )
            merged = delta if merged is None else merged.merge(delta)
        replayed = base.apply_delta(merged)
        assert replayed.equals(expected)
        remap = merged.row_remap()
        # Base rows 0-3 were consumed head-first; only row 4 survives, and it
        # slid to the front of the new row space.
        assert remap.tolist() == [-1, -1, -1, -1, 0]
        assert replayed.row(0) == base.row(4)
        # Inserts land at the tail while deletes eat the head, so all four
        # inserted rows survive, in insertion order after the one survivor.
        assert merged.num_inserted == 4
        assert replayed.column("a").tolist()[1:] == [100.0, 101.0, 102.0, 103.0]
