"""Tests for repro.dataset.io (CSV and NPZ persistence)."""

import numpy as np
import pytest

from repro.dataset.io import load_table, read_csv, save_table, write_csv
from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.errors import TableError


@pytest.fixture
def sample_table() -> Table:
    schema = Schema(
        [
            Column("id", DataType.INT),
            Column("score", DataType.FLOAT, nullable=True),
            Column("label", DataType.STRING, nullable=True),
        ]
    )
    return Table(
        schema,
        {
            "id": [1, 2, 3],
            "score": [1.5, None, 3.25],
            "label": ["alpha", None, "gamma"],
        },
        name="sample",
    )


class TestCsv:
    def test_round_trip_with_schema(self, sample_table, tmp_path):
        path = tmp_path / "sample.csv"
        write_csv(sample_table, path)
        loaded = read_csv(path, schema=sample_table.schema)
        assert loaded.equals(sample_table)

    def test_round_trip_inferred_schema(self, sample_table, tmp_path):
        path = tmp_path / "sample.csv"
        write_csv(sample_table, path)
        loaded = read_csv(path)
        assert loaded.schema["id"].dtype is DataType.INT
        assert loaded.schema["score"].dtype is DataType.FLOAT
        assert loaded.schema["label"].dtype is DataType.STRING
        assert loaded.num_rows == 3
        assert np.isnan(loaded.column("score")[1])
        assert loaded.column("label")[1] is None

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TableError):
            read_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(TableError):
            read_csv(path)

    def test_name_defaults_to_stem(self, sample_table, tmp_path):
        path = tmp_path / "galaxy_sample.csv"
        write_csv(sample_table, path)
        assert read_csv(path).name == "galaxy_sample"

    def test_float_precision_preserved(self, tmp_path):
        table = Table.from_dict({"x": [0.1, 1e-12, 123456.789]})
        path = tmp_path / "precision.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert np.allclose(loaded.column("x"), table.column("x"))


class TestNpz:
    def test_round_trip(self, sample_table, tmp_path):
        path = tmp_path / "sample.npz"
        save_table(sample_table, path)
        loaded = load_table(path)
        assert loaded.name == "sample"
        assert loaded.schema == sample_table.schema
        assert loaded.equals(sample_table)

    def test_round_trip_large_numeric(self, tmp_path, rng):
        table = Table.from_dict({"x": rng.normal(size=1000), "y": rng.integers(0, 10, 1000)})
        path = tmp_path / "big.npz"
        save_table(table, path)
        assert load_table(path).equals(table)

    def test_string_none_round_trip(self, tmp_path):
        table = Table(
            Schema([Column("s", DataType.STRING, nullable=True)]),
            {"s": ["a", None, "c"]},
        )
        path = tmp_path / "strings.npz"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.column("s")[1] is None
        assert loaded.column("s")[0] == "a"


class TestVersionPersistence:
    def test_npz_round_trips_table_version(self, tmp_path):
        table = Table.from_dict({"x": [1.0, 2.0, 3.0]}, name="versioned")
        table, _ = table.append_rows([(4.0,)])
        table, _ = table.delete_rows([0])
        assert table.version == 2
        path = tmp_path / "versioned.npz"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.version == 2
        assert loaded.equals(table)
