"""Tests for the Package answer object."""

import numpy as np
import pytest

from repro.core.package import Package
from repro.db.aggregates import AggregateFunction
from repro.errors import EvaluationError


class TestConstruction:
    def test_basic(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 2], [1, 3])
        assert package.cardinality == 4
        assert package.num_distinct == 2
        assert package.max_multiplicity == 3
        assert not package.is_empty

    def test_default_multiplicities(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 1, 2])
        assert package.cardinality == 3
        assert package.multiplicities.tolist() == [1, 1, 1]

    def test_zero_multiplicities_dropped(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 1, 2], [1, 0, 2])
        assert package.num_distinct == 2
        assert package.multiplicity_of(1) == 0

    def test_empty_package(self, small_numeric_table):
        package = Package.empty(small_numeric_table)
        assert package.is_empty
        assert package.cardinality == 0
        assert package.max_multiplicity == 0

    def test_out_of_range_index_rejected(self, small_numeric_table):
        with pytest.raises(EvaluationError):
            Package(small_numeric_table, [99])

    def test_negative_multiplicity_rejected(self, small_numeric_table):
        with pytest.raises(EvaluationError):
            Package(small_numeric_table, [0], [-1])

    def test_length_mismatch_rejected(self, small_numeric_table):
        with pytest.raises(EvaluationError):
            Package(small_numeric_table, [0, 1], [1])

    def test_from_solution_values(self, small_numeric_table):
        package = Package.from_solution_values(
            small_numeric_table, np.array([0.0, 2.0000001, 0.9999999]), np.array([1, 3, 4])
        )
        assert package.as_multiplicity_map() == {3: 2, 4: 1}

    def test_from_multiplicity_map(self, small_numeric_table):
        package = Package.from_multiplicity_map(small_numeric_table, {4: 2, 1: 1})
        assert package.indices.tolist() == [1, 4]
        assert package.multiplicities.tolist() == [1, 2]
        assert Package.from_multiplicity_map(small_numeric_table, {}).is_empty


class TestAggregation:
    def test_count_and_sum(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 4], [2, 1])
        assert package.count() == 3.0
        assert package.sum("a") == 2 * 1.0 + 5.0

    def test_avg(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 1])
        assert package.aggregate(AggregateFunction.AVG, "a") == 1.5

    def test_min_max(self, small_numeric_table):
        package = Package(small_numeric_table, [1, 3])
        assert package.aggregate(AggregateFunction.MIN, "b") == 20.0
        assert package.aggregate(AggregateFunction.MAX, "b") == 40.0

    def test_filtered_aggregate_with_row_mask(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 1, 2], [1, 1, 2])
        mask = small_numeric_table.column("c") == 1  # rows 0, 2, 4
        assert package.aggregate(AggregateFunction.COUNT, row_mask=mask) == 3.0
        assert package.aggregate(AggregateFunction.SUM, "a", row_mask=mask) == 1.0 + 2 * 3.0

    def test_sum_requires_column(self, small_numeric_table):
        package = Package(small_numeric_table, [0])
        with pytest.raises(EvaluationError):
            package.aggregate(AggregateFunction.SUM)

    def test_empty_package_aggregates(self, small_numeric_table):
        package = Package.empty(small_numeric_table)
        assert package.count() == 0.0
        assert package.sum("a") == 0.0
        assert np.isnan(package.aggregate(AggregateFunction.MIN, "a"))


class TestSetOperations:
    def test_combine(self, small_numeric_table):
        one = Package(small_numeric_table, [0, 1], [1, 1])
        two = Package(small_numeric_table, [1, 2], [2, 1])
        combined = one.combine(two)
        assert combined.as_multiplicity_map() == {0: 1, 1: 3, 2: 1}

    def test_combine_different_tables_rejected(self, small_numeric_table, mixed_table):
        one = Package(small_numeric_table, [0])
        two = Package(mixed_table, [0])
        with pytest.raises(EvaluationError):
            one.combine(two)

    def test_without_rows(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 1, 2], [1, 2, 3])
        reduced = package.without_rows([1])
        assert reduced.as_multiplicity_map() == {0: 1, 2: 3}

    def test_restricted_to_rows(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 1, 2], [1, 2, 3])
        restricted = package.restricted_to_rows([1, 2, 4])
        assert restricted.as_multiplicity_map() == {1: 2, 2: 3}

    def test_same_contents(self, small_numeric_table):
        one = Package(small_numeric_table, [0, 1], [1, 2])
        two = Package.from_multiplicity_map(small_numeric_table, {1: 2, 0: 1})
        assert one.same_contents(two)
        assert not one.same_contents(Package(small_numeric_table, [0]))


class TestMaterialisation:
    def test_materialize_repeats_rows(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 4], [2, 1])
        table = package.materialize()
        assert table.num_rows == 3
        assert sorted(table.column("a").tolist()) == [1.0, 1.0, 5.0]

    def test_iteration_matches_multiplicities(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 4], [2, 1])
        assert sorted(package) == [0, 0, 4]
        assert len(package) == 3

    def test_repr(self, small_numeric_table):
        package = Package(small_numeric_table, [0])
        assert "cardinality=1" in repr(package)
