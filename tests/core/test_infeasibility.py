"""Tests for the Section 4.4 false-infeasibility mitigation strategies."""

import numpy as np
import pytest

from repro.core.direct import DirectEvaluator
from repro.core.infeasibility import (
    DropPartitioningAttributes,
    FalseInfeasibilityResolver,
    FurtherPartitioning,
    IterativeGroupMerging,
    merge_groups_pairwise,
)
from repro.core.sketchrefine import SketchRefineConfig, SketchRefineEvaluator
from repro.core.validation import check_package
from repro.errors import InfeasiblePackageQueryError
from repro.paql.builder import query_over
from repro.partition.quadtree import QuadTreePartitioner
from repro.workloads.recipes import meal_planner_query, recipes_table


@pytest.fixture(scope="module")
def setup():
    table = recipes_table(num_rows=150, seed=29)
    partitioning = QuadTreePartitioner(size_threshold=30).partition(
        table, ["kcal", "saturated_fat", "protein"]
    )
    return table, partitioning


def tight_query(table):
    """A feasible query only satisfiable by extreme tuples (defeats plain sketch)."""
    kcal = table.numeric_column("kcal")
    two_smallest = float(np.sort(kcal)[:2].sum())
    return (
        query_over("recipes")
        .no_repetition()
        .count_equals(2)
        .sum_between("kcal", two_smallest - 1e-9, two_smallest + 0.01)
        .minimize_sum("saturated_fat")
        .build()
    )


class TestStrategies:
    def test_further_partitioning_shrinks_tau(self, setup):
        table, partitioning = setup
        candidates = FurtherPartitioning(rounds=2).candidate_partitionings(
            table, meal_planner_query(), partitioning
        )
        assert len(candidates) == 2
        assert candidates[0].stats.size_threshold < partitioning.stats.size_threshold
        assert candidates[1].num_groups >= candidates[0].num_groups

    def test_drop_attributes_reduces_dimensions(self, setup):
        table, partitioning = setup
        candidates = DropPartitioningAttributes(max_drops=2).candidate_partitionings(
            table, meal_planner_query(), partitioning
        )
        assert candidates
        assert all(len(c.attributes) < len(partitioning.attributes) for c in candidates)

    def test_group_merging_halves_group_count(self, setup):
        table, partitioning = setup
        merged = merge_groups_pairwise(partitioning)
        assert merged.num_groups == (partitioning.num_groups + 1) // 2
        assert merged.group_sizes().sum() == table.num_rows

    def test_group_merging_candidates_shrink_to_one(self, setup):
        table, partitioning = setup
        candidates = IterativeGroupMerging(rounds=10).candidate_partitionings(
            table, meal_planner_query(), partitioning
        )
        assert candidates[-1].num_groups == 1

    def test_merge_single_group_is_identity(self, setup):
        table, _ = setup
        single = QuadTreePartitioner(size_threshold=10_000).partition(table, ["kcal"])
        assert merge_groups_pairwise(single) is single


class TestResolver:
    def test_passthrough_when_sketchrefine_succeeds(self, setup, fast_solver):
        table, partitioning = setup
        resolver = FalseInfeasibilityResolver(SketchRefineEvaluator(solver=fast_solver))
        package = resolver.evaluate(table, meal_planner_query(), partitioning)
        assert check_package(package, meal_planner_query()).feasible
        assert resolver.last_report.succeeded_with == "original-partitioning"
        assert not resolver.last_report.used_fallback

    def test_resolver_recovers_tight_query(self, setup, fast_solver):
        """Without the hybrid sketch, the tight query often looks infeasible;
        the resolver must still answer it because DIRECT can (group merging
        degenerates to DIRECT in the limit)."""
        table, partitioning = setup
        query = tight_query(table)
        # Sanity: the query is genuinely feasible.
        direct = DirectEvaluator(solver=fast_solver).evaluate(table, query)
        assert check_package(direct, query).feasible

        evaluator = SketchRefineEvaluator(
            solver=fast_solver, config=SketchRefineConfig(use_hybrid_sketch=False)
        )
        resolver = FalseInfeasibilityResolver(evaluator)
        package = resolver.evaluate(table, query, partitioning)
        assert check_package(package, query).feasible
        assert resolver.last_report.attempts[0] == "original-partitioning"

    def test_truly_infeasible_query_still_raises(self, setup, fast_solver):
        table, partitioning = setup
        impossible = (
            query_over("recipes").no_repetition().count_equals(3).sum_at_most("kcal", 0.001).build()
        )
        resolver = FalseInfeasibilityResolver(SketchRefineEvaluator(solver=fast_solver))
        with pytest.raises(InfeasiblePackageQueryError):
            resolver.evaluate(table, impossible, partitioning)

    def test_report_lists_attempts(self, setup, fast_solver):
        table, partitioning = setup
        query = tight_query(table)
        evaluator = SketchRefineEvaluator(
            solver=fast_solver, config=SketchRefineConfig(use_hybrid_sketch=False)
        )
        resolver = FalseInfeasibilityResolver(
            evaluator, strategies=[IterativeGroupMerging(rounds=10)]
        )
        resolver.evaluate(table, query, partitioning)
        assert len(resolver.last_report.attempts) >= 1
