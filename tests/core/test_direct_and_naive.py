"""Tests for the DIRECT evaluator and the naïve (SQL-style) baselines.

The exhaustive evaluators double as oracles: on small inputs DIRECT must find
packages with the same optimal objective value.
"""

import numpy as np
import pytest

from repro.core.direct import DirectEvaluator
from repro.core.naive import ExhaustiveSearchEvaluator, NaiveSelfJoinEvaluator
from repro.core.validation import check_package, objective_value
from repro.db.expressions import col
from repro.errors import (
    EvaluationError,
    InfeasiblePackageQueryError,
    SolverCapacityError,
)
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.ilp.status import SolverStatus
from repro.paql.builder import query_over
from repro.workloads.recipes import meal_planner_query, recipes_table


@pytest.fixture
def tiny_recipes():
    return recipes_table(num_rows=25, seed=3)


class TestDirect:
    def test_meal_planner_optimal_and_feasible(self, recipes, fast_solver):
        query = meal_planner_query()
        package = DirectEvaluator(solver=fast_solver).evaluate(recipes, query)
        assert package.cardinality == 3
        assert check_package(package, query).feasible

    def test_matches_exhaustive_oracle(self, tiny_recipes, fast_solver):
        query = (
            query_over("recipes")
            .no_repetition()
            .count_equals(3)
            .sum_at_most("kcal", 2.5)
            .minimize_sum("saturated_fat")
            .build()
        )
        direct = DirectEvaluator(solver=fast_solver).evaluate(tiny_recipes, query)
        oracle = ExhaustiveSearchEvaluator().evaluate(tiny_recipes, query)
        assert objective_value(direct, query) == pytest.approx(
            objective_value(oracle, query), rel=1e-6
        )

    def test_maximisation_matches_oracle(self, tiny_recipes, fast_solver):
        query = (
            query_over("recipes")
            .no_repetition()
            .count_at_most(4)
            .sum_at_most("kcal", 3.0)
            .maximize_sum("protein")
            .build()
        )
        direct = DirectEvaluator(solver=fast_solver).evaluate(tiny_recipes, query)
        oracle = ExhaustiveSearchEvaluator(max_cardinality=4).evaluate(tiny_recipes, query)
        assert objective_value(direct, query) == pytest.approx(
            objective_value(oracle, query), rel=1e-6
        )

    def test_repetition_allowed(self, tiny_recipes, fast_solver):
        query = (
            query_over("recipes")
            .repeat(2)
            .count_equals(3)
            .minimize_sum("kcal")
            .build()
        )
        package = DirectEvaluator(solver=fast_solver).evaluate(tiny_recipes, query)
        # The cheapest recipe should simply be repeated 3 times.
        assert package.cardinality == 3
        assert package.max_multiplicity == 3

    def test_infeasible_query_raises(self, tiny_recipes, fast_solver):
        query = (
            query_over("recipes").no_repetition().count_equals(3).sum_at_most("kcal", 0.01).build()
        )
        with pytest.raises(InfeasiblePackageQueryError):
            DirectEvaluator(solver=fast_solver).evaluate(tiny_recipes, query)

    def test_unbounded_query_raises(self, tiny_recipes, fast_solver):
        query = query_over("recipes").maximize_sum("protein").build()
        with pytest.raises(EvaluationError, match="unbounded"):
            DirectEvaluator(solver=fast_solver).evaluate(tiny_recipes, query)

    def test_capacity_limit_surfaces_as_error(self, recipes):
        solver = BranchAndBoundSolver(limits=SolverLimits(max_variables=5))
        with pytest.raises(SolverCapacityError):
            DirectEvaluator(solver=solver).evaluate(recipes, meal_planner_query())

    def test_stats_recorded(self, recipes, fast_solver):
        evaluator = DirectEvaluator(solver=fast_solver)
        evaluator.evaluate(recipes, meal_planner_query())
        stats = evaluator.last_stats
        assert stats.num_variables > 0
        assert stats.num_constraints == 3
        assert stats.solver_status is SolverStatus.OPTIMAL
        assert stats.total_seconds >= stats.solve_seconds


class TestNaiveSelfJoin:
    def test_matches_direct_on_strict_cardinality(self, tiny_recipes, fast_solver):
        query = (
            query_over("recipes")
            .no_repetition()
            .where(col("gluten") == "free")
            .count_equals(2)
            .sum_at_most("kcal", 2.0)
            .minimize_sum("saturated_fat")
            .build()
        )
        naive = NaiveSelfJoinEvaluator().evaluate(tiny_recipes, query)
        direct = DirectEvaluator(solver=fast_solver).evaluate(tiny_recipes, query)
        assert objective_value(naive, query) == pytest.approx(objective_value(direct, query))

    def test_requires_strict_cardinality(self, tiny_recipes):
        query = query_over("recipes").count_at_most(3).minimize_sum("kcal").build()
        with pytest.raises(EvaluationError, match="strict-cardinality"):
            NaiveSelfJoinEvaluator().evaluate(tiny_recipes, query)

    def test_infeasible_raises(self, tiny_recipes):
        query = (
            query_over("recipes").no_repetition().count_equals(2).sum_at_most("kcal", 0.001).build()
        )
        with pytest.raises(InfeasiblePackageQueryError):
            NaiveSelfJoinEvaluator().evaluate(tiny_recipes, query)

    def test_candidate_limit_enforced(self, recipes):
        query = query_over("recipes").no_repetition().count_equals(4).minimize_sum("kcal").build()
        evaluator = NaiveSelfJoinEvaluator(max_candidates=100)
        with pytest.raises(EvaluationError, match="candidates"):
            evaluator.evaluate(recipes, query)

    def test_stats_count_candidates(self, tiny_recipes):
        query = query_over("recipes").no_repetition().count_equals(2).minimize_sum("kcal").build()
        evaluator = NaiveSelfJoinEvaluator()
        evaluator.evaluate(tiny_recipes, query)
        expected = 25 * 24 // 2
        assert evaluator.last_stats.candidates_examined == expected

    def test_cardinality_via_between(self, tiny_recipes):
        query = (
            query_over("recipes").no_repetition().count_between(2, 2).minimize_sum("kcal").build()
        )
        package = NaiveSelfJoinEvaluator().evaluate(tiny_recipes, query)
        assert package.cardinality == 2


class TestExhaustiveSearch:
    def test_respects_repetition_bound(self, tiny_recipes):
        query = (
            query_over("recipes").repeat(1).count_equals(2).minimize_sum("kcal").build()
        )
        package = ExhaustiveSearchEvaluator(max_cardinality=2).evaluate(tiny_recipes, query)
        assert package.max_multiplicity <= 2
        assert check_package(package, query).feasible

    def test_infeasible(self, tiny_recipes):
        query = query_over("recipes").count_equals(2).sum_at_most("kcal", 0.0001).build()
        with pytest.raises(InfeasiblePackageQueryError):
            ExhaustiveSearchEvaluator(max_cardinality=2).evaluate(tiny_recipes, query)
