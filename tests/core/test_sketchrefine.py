"""Tests for the SKETCHREFINE evaluator (Section 4)."""

import numpy as np
import pytest

from repro.core.direct import DirectEvaluator
from repro.core.sketchrefine import SketchRefineConfig, SketchRefineEvaluator
from repro.core.validation import check_package, objective_value
from repro.db.expressions import col
from repro.errors import EvaluationError, InfeasiblePackageQueryError
from repro.paql.builder import query_over
from repro.partition.quadtree import QuadTreePartitioner
from repro.workloads.recipes import meal_planner_query, recipes_table


@pytest.fixture(scope="module")
def recipes_with_partitioning():
    table = recipes_table(num_rows=200, seed=11)
    partitioning = QuadTreePartitioner(size_threshold=25).partition(
        table, ["kcal", "saturated_fat", "protein", "carbs"]
    )
    return table, partitioning


class TestBasicBehaviour:
    def test_produces_feasible_package(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        query = meal_planner_query()
        evaluator = SketchRefineEvaluator(solver=fast_solver)
        package = evaluator.evaluate(table, query, partitioning)
        assert check_package(package, query).feasible
        assert package.cardinality == 3

    def test_objective_close_to_direct(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        query = meal_planner_query()
        direct = DirectEvaluator(solver=fast_solver).evaluate(table, query)
        sketch = SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)
        # Minimisation: SKETCHREFINE may be worse but not wildly so on this data.
        ratio = objective_value(sketch, query) / objective_value(direct, query)
        assert ratio < 3.0

    def test_maximisation_query(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        query = (
            query_over("recipes")
            .no_repetition()
            .count_equals(5)
            .sum_at_most("kcal", 4.0)
            .maximize_sum("protein")
            .build()
        )
        direct = DirectEvaluator(solver=fast_solver).evaluate(table, query)
        sketch = SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)
        assert check_package(sketch, query).feasible
        assert objective_value(sketch, query) <= objective_value(direct, query) + 1e-6
        assert objective_value(sketch, query) >= 0.3 * objective_value(direct, query)

    def test_base_predicate_respected(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        query = meal_planner_query()
        package = SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)
        gluten = table.column("gluten")
        assert all(gluten[i] == "free" for i in package.indices)

    def test_repetition_constraint_respected(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        query = (
            query_over("recipes")
            .repeat(1)
            .count_equals(4)
            .sum_at_most("kcal", 4.0)
            .minimize_sum("saturated_fat")
            .build()
        )
        package = SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)
        assert package.max_multiplicity <= 2
        assert check_package(package, query).feasible

    def test_filtered_aggregate_constraint(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        query = (
            query_over("recipes")
            .no_repetition()
            .count_equals(4)
            .filtered_count_at_least(col("protein") >= 20, 2)
            .minimize_sum("saturated_fat")
            .build()
        )
        package = SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)
        assert check_package(package, query).feasible

    def test_avg_constraint(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        query = (
            query_over("recipes")
            .no_repetition()
            .count_between(3, 6)
            .avg_at_most("kcal", 0.8)
            .maximize_sum("protein")
            .build()
        )
        package = SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)
        assert check_package(package, query).feasible

    def test_stats_recorded(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        evaluator = SketchRefineEvaluator(solver=fast_solver)
        evaluator.evaluate(table, meal_planner_query(), partitioning)
        stats = evaluator.last_stats
        assert stats.num_groups == partitioning.num_groups
        assert stats.groups_in_sketch >= 1
        assert stats.refine_queries >= stats.groups_in_sketch
        assert stats.total_seconds >= stats.sketch_seconds

    def test_parallel_plane_stats_recorded(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        evaluator = SketchRefineEvaluator(solver=fast_solver)
        # Pin workers=1 so the serial invariants hold regardless of any
        # REPRO_WORKERS value the surrounding run exports.
        evaluator.evaluate(table, meal_planner_query(), partitioning, workers=1)
        stats = evaluator.last_stats
        assert stats.refine_workers == 1
        assert stats.refine_parallel_tasks == 0  # explicit serial
        assert stats.refine_rounds >= 1
        assert stats.pool_wall_ms > 0.0
        assert stats.child_solve_ms > 0.0
        assert stats.merge_wait_ms == 0.0  # serial batches have no wait gap

    def test_parallel_workers_give_identical_package_and_search_shape(
        self, recipes_with_partitioning, fast_solver
    ):
        table, partitioning = recipes_with_partitioning
        query = meal_planner_query()
        serial = SketchRefineEvaluator(solver=fast_solver)
        serial_package = serial.evaluate(table, query, partitioning, workers=1)
        parallel = SketchRefineEvaluator(solver=fast_solver)
        parallel_package = parallel.evaluate(table, query, partitioning, workers=2)
        assert serial_package.same_contents(parallel_package)
        for field in (
            "refine_queries", "refine_rounds", "merge_deferrals",
            "backtracks", "groups_in_sketch", "used_hybrid_sketch",
        ):
            assert getattr(serial.last_stats, field) == getattr(parallel.last_stats, field)
        assert parallel.last_stats.refine_workers == 2


class TestInfeasibilityHandling:
    def test_truly_infeasible_query(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        query = (
            query_over("recipes").no_repetition().count_equals(3).sum_at_most("kcal", 0.01).build()
        )
        with pytest.raises(InfeasiblePackageQueryError):
            SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)

    def test_no_eligible_tuple(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        query = (
            query_over("recipes")
            .where(col("gluten") == "no-such-label")
            .count_equals(1)
            .build()
        )
        with pytest.raises(InfeasiblePackageQueryError):
            SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)

    def test_hybrid_sketch_recovers_tight_queries(self, fast_solver):
        """A query only satisfiable by extreme tuples defeats the plain sketch
        (centroids are too average) but the hybrid sketch finds it."""
        table = recipes_table(num_rows=150, seed=23)
        partitioning = QuadTreePartitioner(size_threshold=30).partition(
            table, ["kcal", "saturated_fat"]
        )
        kcal = table.numeric_column("kcal")
        two_smallest = float(np.sort(kcal)[:2].sum())
        query = (
            query_over("recipes")
            .no_repetition()
            .count_equals(2)
            .sum_between("kcal", two_smallest - 1e-9, two_smallest + 0.02)
            .minimize_sum("saturated_fat")
            .build()
        )
        with_hybrid = SketchRefineEvaluator(
            solver=fast_solver, config=SketchRefineConfig(use_hybrid_sketch=True)
        )
        without_hybrid = SketchRefineEvaluator(
            solver=fast_solver, config=SketchRefineConfig(use_hybrid_sketch=False)
        )
        # The plain sketch may or may not fail depending on centroid positions;
        # the hybrid sketch must succeed whenever DIRECT does.
        direct = DirectEvaluator(solver=fast_solver).evaluate(table, query)
        assert check_package(direct, query).feasible
        try:
            package = with_hybrid.evaluate(table, query, partitioning)
            assert check_package(package, query).feasible
        except InfeasiblePackageQueryError as error:
            # Permitted by the theory only as a (rare) false negative with the
            # flag set; the hybrid sketch makes this very unlikely.
            assert error.false_negative_possible
        try:
            without_hybrid.evaluate(table, query, partitioning)
        except InfeasiblePackageQueryError as error:
            assert error.false_negative_possible

    def test_wrong_partitioning_table_rejected(self, recipes_with_partitioning, fast_solver):
        table, partitioning = recipes_with_partitioning
        other = recipes_table(num_rows=50, seed=1)
        with pytest.raises(EvaluationError):
            SketchRefineEvaluator(solver=fast_solver).evaluate(
                other, meal_planner_query(), partitioning
            )


class TestPartitioningVariants:
    @pytest.mark.parametrize("size_threshold", [10, 40, 120])
    def test_quality_across_partition_sizes(self, fast_solver, size_threshold):
        table = recipes_table(num_rows=160, seed=31)
        partitioning = QuadTreePartitioner(size_threshold=size_threshold).partition(
            table, ["kcal", "saturated_fat"]
        )
        query = meal_planner_query()
        package = SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)
        assert check_package(package, query).feasible

    def test_partitioning_on_subset_of_query_attributes(self, fast_solver):
        """Coverage < 1 (partitioning misses the objective attribute) still works."""
        table = recipes_table(num_rows=160, seed=37)
        partitioning = QuadTreePartitioner(size_threshold=25).partition(table, ["kcal"])
        query = meal_planner_query()
        package = SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)
        assert check_package(package, query).feasible

    def test_single_group_degenerates_to_direct(self, fast_solver):
        table = recipes_table(num_rows=80, seed=41)
        partitioning = QuadTreePartitioner(size_threshold=1000).partition(table, ["kcal"])
        assert partitioning.num_groups == 1
        query = meal_planner_query()
        direct = DirectEvaluator(solver=fast_solver).evaluate(table, query)
        sketch = SketchRefineEvaluator(solver=fast_solver).evaluate(table, query, partitioning)
        # With one group the refine query is the full problem: same optimum.
        assert objective_value(sketch, query) == pytest.approx(
            objective_value(direct, query), rel=1e-3
        )


class TestRefineBasisReuse:
    def test_retry_of_same_group_reuses_cached_basis(self):
        """A second refine solve of the same group warm-starts from the first."""
        from repro.core.sketchrefine import SketchRefineStats
        from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
        from repro.ilp.lp_backend import LpBackend
        from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense

        solver = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-9), lp_backend=LpBackend.SIMPLEX
        )
        evaluator = SketchRefineEvaluator(solver=solver)
        stats = SketchRefineStats()

        def group_model(rhs):
            model = IlpModel("refine_retry")
            for i in range(8):
                model.add_variable(f"t{i}", 0, 1)
            model.add_constraint(
                {i: float(i + 1) for i in range(8)}, ConstraintSense.LE, rhs
            )
            model.set_objective(
                ObjectiveSense.MAXIMIZE, {i: float(8 - i) for i in range(8)}
            )
            return model

        first = evaluator._solve_with_group_basis(3, group_model(12.0), stats)
        assert first.root_basis is not None
        assert stats.refine_retry_warm_starts == 0

        # Backtracking retry: same group shape, shifted residual rhs.
        second = evaluator._solve_with_group_basis(3, group_model(10.0), stats)
        assert stats.refine_retry_warm_starts == 1
        assert second.stats.warm_start_hits >= 1

        cold = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-9), lp_backend=LpBackend.SIMPLEX
        ).solve(group_model(10.0))
        assert second.objective_value == pytest.approx(cold.objective_value)

    def test_non_simplex_solver_skips_cache(self, recipes_with_partitioning, fast_solver):
        from repro.core.sketchrefine import SketchRefineStats

        evaluator = SketchRefineEvaluator(solver=fast_solver)
        table, partitioning = recipes_with_partitioning
        query = meal_planner_query()
        evaluator.evaluate(table, query, partitioning)
        assert evaluator.last_stats.refine_retry_warm_starts == 0
