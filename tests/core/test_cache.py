"""Tests for the delta-aware package result cache.

Covers the :class:`~repro.core.cache.PackageCache` data structure, its wiring
through ``PackageQueryEngine.execute(cache=...)`` and
``Database.update_table``, and the correctness property the cache must never
violate: a served answer is always exactly what a fresh recompute would
certify on the *current* data — never a stale hit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache import PackageCache
from repro.core.engine import PackageQueryEngine
from repro.core.validation import check_package, objective_value
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import EvaluationError
from repro.paql.builder import query_over
from repro.paql.fingerprint import query_fingerprint


def _two_cluster_table(num_per_cluster: int = 12, seed: int = 0) -> Table:
    """Two well-separated numeric clusters: A near x=0, B near x=100.

    Partitioning on ``x`` puts them in different groups, so updates aimed at
    one cluster provably miss packages drawn from the other.
    """
    rng = np.random.default_rng(seed)
    x = np.concatenate(
        [
            np.round(rng.uniform(0.0, 1.0, num_per_cluster), 3),
            np.round(rng.uniform(100.0, 101.0, num_per_cluster), 3),
        ]
    )
    value = np.arange(len(x), dtype=np.float64)
    schema = Schema.numeric(["x", "value"])
    return Table(schema, {"x": x, "value": value}, name="clusters")


def _cluster_a_query():
    from repro.db.expressions import col

    return (
        query_over("clusters", name="qa")
        .no_repetition()
        .where(col("x") < 50.0)
        .count_equals(3)
        .minimize_sum("value")
        .build()
    )


def _cluster_engine(tau: int = 16):
    # τ=16 over 12+12 rows forces the quadtree to split the clusters into
    # separate groups while leaving insert headroom before any re-split.
    engine = PackageQueryEngine()
    engine.register_table(_two_cluster_table(), name="clusters")
    engine.build_partitioning("clusters", ["x"], size_threshold=tau)
    return engine


def _b_row(x: float = 100.5) -> tuple[float, float]:
    return (x, 999.0)


class TestEngineCacheModes:
    def test_hit_returns_identical_answer(self, recipes):
        engine = PackageQueryEngine()
        engine.register_table(recipes, name="recipes")
        query = (
            query_over("recipes")
            .no_repetition()
            .count_equals(3)
            .minimize_sum("kcal")
            .build()
        )
        first = engine.execute(query, method="direct")
        second = engine.execute(query, method="direct")
        assert first.details["cache"]["status"] == "miss"
        assert second.details["cache"]["status"] == "hit"
        assert second.objective == first.objective
        assert second.package.same_contents(first.package)
        # Per-call metric: exactly the solve time the hit spared, not the
        # cache's running total (which lives under "totals").
        assert second.details["cache"]["saved_solve_seconds"] == first.wall_seconds
        assert second.details["cache"]["totals"]["hits"] == 1
        other = (
            query_over("recipes").no_repetition().count_equals(4).minimize_sum("kcal").build()
        )
        missed = engine.execute(other, method="direct")
        assert missed.details["cache"]["status"] == "miss"
        assert missed.details["cache"]["saved_solve_seconds"] == 0.0
        assert missed.details["cache"]["totals"]["saved_solve_seconds"] == first.wall_seconds

    def test_textual_variant_hits_the_same_entry(self, recipes):
        engine = PackageQueryEngine()
        engine.register_table(recipes, name="recipes")
        text = (
            "SELECT PACKAGE(R) AS P FROM recipes R REPEAT 0 "
            "SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) <= 5000 "
            "MINIMIZE SUM(P.kcal)"
        )
        variant = (
            "select package(rel) as pkg from recipes rel repeat 0 "
            "such that sum(pkg.kcal) <= 5000.0 and count(pkg.*) = 3 "
            "minimize sum(pkg.kcal)"
        )
        first = engine.execute(text, method="direct")
        second = engine.execute(variant, method="direct")
        assert second.details["cache"]["status"] == "hit"
        assert second.objective == first.objective

    def test_bypass_never_reads_or_writes(self, recipes):
        engine = PackageQueryEngine()
        engine.register_table(recipes, name="recipes")
        query = (
            query_over("recipes").no_repetition().count_equals(2).minimize_sum("kcal").build()
        )
        first = engine.execute(query, method="direct", cache="bypass")
        assert first.details["cache"] == {"status": "bypass"}
        assert len(engine.cache) == 0
        engine.execute(query, method="direct")  # populate
        bypassed = engine.execute(query, method="direct", cache="bypass")
        assert bypassed.details["cache"] == {"status": "bypass"}
        assert engine.cache.stats.hits == 0

    def test_refresh_resolves_and_overwrites(self, recipes):
        engine = PackageQueryEngine()
        engine.register_table(recipes, name="recipes")
        query = (
            query_over("recipes").no_repetition().count_equals(2).minimize_sum("kcal").build()
        )
        engine.execute(query, method="direct")
        refreshed = engine.execute(query, method="direct", cache="refresh")
        assert refreshed.details["cache"]["status"] == "refresh"
        assert engine.cache.stats.stores == 2
        assert engine.cache.stats.hits == 0

    def test_unknown_cache_mode_rejected(self, recipes):
        engine = PackageQueryEngine()
        engine.register_table(recipes, name="recipes")
        query = query_over("recipes").count_equals(2).build()
        with pytest.raises(EvaluationError, match="cache mode"):
            engine.execute(query, method="direct", cache="yolo")

    def test_methods_do_not_share_entries(self, recipes):
        engine = PackageQueryEngine()
        engine.register_table(recipes, name="recipes")
        query = (
            query_over("recipes").no_repetition().count_equals(2).minimize_sum("kcal").build()
        )
        direct = engine.execute(query, method="direct")
        naive = engine.execute(query, method="naive")
        assert naive.details["cache"]["status"] == "miss"
        assert naive.objective == direct.objective
        assert engine.execute(query, method="naive").details["cache"]["status"] == "hit"


class TestDeltaInvalidation:
    def test_direct_entry_invalidates_on_any_version_bump(self, recipes):
        engine = PackageQueryEngine()
        engine.register_table(recipes, name="recipes")
        query = (
            query_over("recipes").no_repetition().count_equals(2).minimize_sum("kcal").build()
        )
        engine.execute(query, method="direct")
        engine.update_table("recipes", delete=[recipes.num_rows - 1])
        result = engine.execute(query, method="direct")
        assert result.details["cache"]["status"] == "miss"
        assert engine.cache.stats.invalidations >= 1

    def test_sketchrefine_revalidates_when_delta_misses_its_groups(self):
        engine = _cluster_engine()
        query = _cluster_a_query()
        first = engine.execute(query, method="sketchrefine")
        assert first.details["cache"]["status"] == "miss"
        update = engine.update_table("clusters", insert=[_b_row()])
        stats = update.maintained["default"]
        assert not stats.groups_renumbered
        result = engine.execute(query, method="sketchrefine")
        assert result.details["cache"]["status"] == "revalidated"
        assert result.objective == first.objective
        assert result.feasible
        # The served package must be valid against the *current* table.
        assert check_package(result.package, query).feasible
        assert result.package.table is engine.table("clusters")

    def test_sketchrefine_invalidates_when_delta_touches_its_groups(self):
        engine = _cluster_engine()
        query = _cluster_a_query()
        first = engine.execute(query, method="sketchrefine")
        # Insert into cluster A — the group the package lives in.
        engine.update_table("clusters", insert=[(0.5, 999.0)])
        result = engine.execute(query, method="sketchrefine")
        assert result.details["cache"]["status"] == "miss"

    def test_sketchrefine_invalidates_when_a_package_row_is_deleted(self):
        engine = _cluster_engine()
        query = _cluster_a_query()
        first = engine.execute(query, method="sketchrefine")
        victim = int(first.package.indices[0])
        engine.update_table("clusters", delete=[victim])
        result = engine.execute(query, method="sketchrefine")
        assert result.details["cache"]["status"] == "miss"
        # The fresh solve ran over the post-delete table, not the stale one.
        assert result.package.table is engine.table("clusters")
        assert check_package(result.package, query).feasible

    def test_coalesced_update_burst_needs_one_revalidation(self):
        engine = _cluster_engine()
        query = _cluster_a_query()
        first = engine.execute(query, method="sketchrefine")
        # Three updates, all confined to cluster B, before the next lookup.
        engine.update_table("clusters", insert=[_b_row(100.2)])
        engine.update_table("clusters", insert=[_b_row(100.8)])
        b_rows = np.nonzero(engine.table("clusters").numeric_column("x") > 50.0)[0]
        engine.update_table("clusters", delete=[int(b_rows[0])])
        result = engine.execute(query, method="sketchrefine")
        assert result.details["cache"]["status"] == "revalidated"
        assert result.objective == first.objective
        assert engine.cache.stats.revalidations == 1

    def test_group_renumbering_invalidates_conservatively(self):
        engine = _cluster_engine()
        query = _cluster_a_query()
        engine.execute(query, method="sketchrefine")
        # Deleting all of cluster B retires its group: the gid space is
        # renumbered, so even a package in untouched groups is dropped.
        b_rows = np.nonzero(engine.table("clusters").numeric_column("x") > 50.0)[0]
        update = engine.update_table("clusters", delete=b_rows)
        assert update.maintained["default"].groups_renumbered
        result = engine.execute(query, method="sketchrefine")
        assert result.details["cache"]["status"] == "miss"

    def test_stale_policy_drops_the_entry(self):
        engine = _cluster_engine()
        query = _cluster_a_query()
        engine.execute(query, method="sketchrefine")
        engine.update_table("clusters", insert=[_b_row()], policy="stale")
        # Explicit SKETCHREFINE must still raise — the cache never masks
        # staleness (regression for the PR 4 error paths).
        from repro.errors import StalePartitioningError

        with pytest.raises(StalePartitioningError, match="stale"):
            engine.execute(query, method="sketchrefine")

    def test_table_replacement_invalidates(self, recipes):
        engine = PackageQueryEngine()
        engine.register_table(recipes, name="recipes")
        query = (
            query_over("recipes").no_repetition().count_equals(2).minimize_sum("kcal").build()
        )
        engine.execute(query, method="direct")
        engine.register_table(recipes, name="recipes", replace=True)
        assert len(engine.cache) == 0
        assert engine.execute(query, method="direct").details["cache"]["status"] == "miss"


class TestAutoFallbackWithCache:
    """PR 4's AUTO fallback notes must survive — and explain — cached paths."""

    def test_auto_fallback_note_present_on_cached_answers(self):
        engine = PackageQueryEngine(auto_direct_threshold=5)
        engine.register_table(_two_cluster_table(), name="clusters")
        query = _cluster_a_query()
        first = engine.execute(query)  # AUTO, no partitioning -> DIRECT + note
        assert "no partitioning" in first.details["auto"]
        second = engine.execute(query)
        assert second.details["cache"]["status"] == "hit"
        assert "no partitioning" in second.details["auto"]

    def test_auto_stale_fallback_does_not_serve_sketchrefine_entry(self):
        engine = PackageQueryEngine(auto_direct_threshold=5)
        engine.register_table(_two_cluster_table(), name="clusters")
        engine.build_partitioning("clusters", ["x"], size_threshold=16)
        query = _cluster_a_query()
        cached = engine.execute(query, method="sketchrefine")
        engine.update_table("clusters", insert=[_b_row()], policy="stale")
        result = engine.execute(query)  # AUTO
        assert "stale" in result.details["auto"]
        # AUTO fell back to DIRECT; the sketchrefine entry was dropped, not
        # served, and the DIRECT answer is a fresh (exact) solve.
        assert result.method.value == "direct"
        assert result.details["cache"]["status"] == "miss"

    def test_auto_and_explicit_direct_share_an_entry(self):
        engine = PackageQueryEngine(auto_direct_threshold=1000)
        engine.register_table(_two_cluster_table(), name="clusters")
        query = _cluster_a_query()
        engine.execute(query)  # AUTO -> DIRECT (small table)
        explicit = engine.execute(query, method="direct")
        assert explicit.details["cache"]["status"] == "hit"


class TestCacheUnit:
    def test_lru_eviction(self, recipes):
        engine = PackageQueryEngine(cache=PackageCache(max_entries=2))
        engine.register_table(recipes, name="recipes")
        queries = [
            query_over("recipes").no_repetition().count_equals(k).minimize_sum("kcal").build()
            for k in (1, 2, 3)
        ]
        for query in queries:
            engine.execute(query, method="direct")
        assert len(engine.cache) == 2
        assert engine.cache.stats.evictions == 1
        # The oldest entry (k=1) was evicted; k=3 is still warm.
        assert engine.execute(queries[0], method="direct").details["cache"]["status"] == "miss"
        assert engine.execute(queries[2], method="direct").details["cache"]["status"] == "hit"

    def test_version_drift_without_notification_is_a_safe_miss(self, recipes):
        # A cache not registered with the catalog sees version changes only
        # at lookup time — it must drop the entry, never serve it.
        cache = PackageCache()
        engine = PackageQueryEngine(cache=cache)
        engine.register_table(recipes, name="recipes")
        query = (
            query_over("recipes").no_repetition().count_equals(2).minimize_sum("kcal").build()
        )
        engine.execute(query, method="direct")
        engine.database.unregister_cache(cache)
        engine.update_table("recipes", delete=[0])
        result = engine.execute(query, method="direct")
        assert result.details["cache"]["status"] == "miss"

    def test_store_requires_partitioning_for_sketchrefine(self, recipes):
        cache = PackageCache()
        query = query_over("recipes").count_equals(1).build()
        from repro.core.package import Package

        with pytest.raises(EvaluationError, match="partitioning"):
            cache.store(
                query,
                query_fingerprint(query),
                recipes,
                "recipes",
                "sketchrefine",
                Package.empty(recipes),
                0.0,
                True,
                1.0,
            )

    def test_invalid_capacity_rejected(self):
        with pytest.raises(EvaluationError):
            PackageCache(max_entries=0)

    def test_clear_and_invalidate_table(self, recipes):
        engine = PackageQueryEngine()
        engine.register_table(recipes, name="recipes")
        query = (
            query_over("recipes").no_repetition().count_equals(2).minimize_sum("kcal").build()
        )
        engine.execute(query, method="direct")
        engine.cache.invalidate_table("other")
        assert len(engine.cache) == 1
        engine.cache.invalidate_table("recipes")
        assert len(engine.cache) == 0
        engine.execute(query, method="direct")
        engine.cache.clear()
        assert len(engine.cache) == 0


class TestCacheCorrectnessProperty:
    """After arbitrary insert/delete streams, a served answer always equals
    what a fresh ``cache="bypass"`` recompute certifies — never a stale hit."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_direct_answers_match_fresh_recompute_exactly(self, seed):
        rng = np.random.default_rng(seed)
        engine = PackageQueryEngine()
        schema = Schema.numeric(["a", "b"])
        table = Table(
            schema,
            {
                "a": rng.integers(0, 30, 12).astype(np.float64),
                "b": rng.integers(0, 30, 12).astype(np.float64),
            },
            name="stream",
        )
        engine.register_table(table, name="stream")
        query = (
            query_over("stream")
            .no_repetition()
            .count_equals(3)
            .sum_at_most("b", 90.0)
            .minimize_sum("a")
            .build()
        )
        for step in range(8):
            if rng.random() < 0.5:
                current = engine.table("stream")
                insert = [
                    (float(rng.integers(0, 30)), float(rng.integers(0, 30)))
                    for _ in range(int(rng.integers(0, 3)))
                ]
                deletable = max(0, current.num_rows - 8)
                delete = rng.choice(
                    current.num_rows,
                    size=int(rng.integers(0, min(3, deletable + 1))),
                    replace=False,
                )
                if insert or len(delete):
                    engine.update_table(
                        "stream", insert=insert or None, delete=delete if len(delete) else None
                    )
            cached = engine.execute(query, method="direct")
            fresh = engine.execute(query, method="direct", cache="bypass")
            status = cached.details["cache"]["status"]
            assert cached.objective == fresh.objective, (
                f"seed={seed} step={step} status={status}: cached objective "
                f"{cached.objective} != fresh {fresh.objective}"
            )
            assert cached.feasible == fresh.feasible

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sketchrefine_never_serves_a_stale_package(self, seed):
        rng = np.random.default_rng(seed)
        engine = _cluster_engine()
        query = _cluster_a_query()
        for step in range(8):
            action = rng.random()
            if action < 0.4:  # update confined to cluster B
                engine.update_table(
                    "clusters", insert=[_b_row(float(100.0 + rng.random()))]
                )
            elif action < 0.6:  # update touching cluster A
                engine.update_table(
                    "clusters", insert=[(float(rng.random()), 999.0)]
                )
            result = engine.execute(query, method="sketchrefine")
            status = result.details["cache"]["status"]
            current = engine.table("clusters")
            # Whatever the status, the answer must be internally consistent
            # with the *current* table: indices valid, feasibility certified
            # by the independent checker, objective reproducible.
            assert result.package.table is current, f"seed={seed} step={step}"
            report = check_package(result.package, query)
            assert report.feasible, f"seed={seed} step={step} status={status}"
            assert result.objective == objective_value(result.package, query), (
                f"seed={seed} step={step} status={status}"
            )
