"""Tests for package feasibility checking and objective evaluation."""

import math

import numpy as np
import pytest

from repro.core.package import Package
from repro.core.validation import (
    approximation_ratio,
    check_package,
    evaluate_linear_expression,
    is_feasible,
    objective_value,
)
from repro.db.expressions import col
from repro.paql.ast import ObjectiveDirection
from repro.paql.builder import query_over
from repro.workloads.recipes import meal_planner_query


class TestExpressionEvaluation:
    def test_linear_expression_on_package(self, small_numeric_table):
        package = Package(small_numeric_table, [0, 2], [2, 1])
        query = query_over("numbers").sum_at_most("a", 100).build()
        expression = query.global_constraints[0].expression
        assert evaluate_linear_expression(package, expression) == 2 * 1.0 + 3.0

    def test_objective_value(self, small_numeric_table):
        package = Package(small_numeric_table, [1, 3])
        query = query_over("numbers").maximize_sum("b").build()
        assert objective_value(package, query) == 60.0

    def test_objective_nan_when_absent(self, small_numeric_table):
        package = Package(small_numeric_table, [0])
        query = query_over("numbers").count_equals(1).build()
        assert math.isnan(objective_value(package, query))


class TestCheckPackage:
    def test_feasible_package(self, recipes):
        query = meal_planner_query()
        free_rows = np.nonzero(recipes.column("gluten") == "free")[0]
        kcal = recipes.numeric_column("kcal")
        # Greedily pick three gluten-free recipes whose kcal total lands in [2, 2.5].
        chosen = None
        for i in range(len(free_rows)):
            for j in range(i + 1, len(free_rows)):
                for k in range(j + 1, len(free_rows)):
                    total = kcal[free_rows[i]] + kcal[free_rows[j]] + kcal[free_rows[k]]
                    if 2.0 <= total <= 2.5:
                        chosen = [free_rows[i], free_rows[j], free_rows[k]]
                        break
                if chosen:
                    break
            if chosen:
                break
        assert chosen is not None
        package = Package(recipes, np.array(chosen))
        report = check_package(package, query)
        assert report.feasible
        assert report.base_predicate_ok
        assert report.repetition_ok
        assert all(c.satisfied for c in report.constraint_checks)

    def test_cardinality_violation_reported(self, recipes):
        query = meal_planner_query()
        free_rows = np.nonzero(recipes.column("gluten") == "free")[0][:2]
        package = Package(recipes, free_rows)
        report = check_package(package, query)
        assert not report.feasible
        assert any(not c.satisfied for c in report.constraint_checks)
        violated = report.violated_constraints[0]
        assert violated.violation > 0

    def test_base_predicate_violation(self, recipes):
        query = meal_planner_query()
        contains = np.nonzero(recipes.column("gluten") == "contains")[0][:3]
        package = Package(recipes, contains)
        report = check_package(package, query)
        assert not report.base_predicate_ok
        assert not report.feasible

    def test_repetition_violation(self, recipes):
        query = meal_planner_query()  # REPEAT 0
        free = np.nonzero(recipes.column("gluten") == "free")[0]
        package = Package(recipes, [free[0]], [3])
        report = check_package(package, query)
        assert not report.repetition_ok

    def test_unbounded_repetition_ok(self, recipes):
        query = query_over("recipes").count_equals(3).build()
        package = Package(recipes, [0], [3])
        assert check_package(package, query).repetition_ok

    def test_filtered_constraint_checked(self, recipes):
        query = (
            query_over("recipes")
            .count_equals(2)
            .filtered_count_at_least(col("protein") >= 0, 2)
            .build()
        )
        package = Package(recipes, [0, 1])
        assert is_feasible(package, query)

    def test_between_violation_both_sides(self, small_numeric_table):
        query = query_over("numbers").sum_between("a", 3.0, 4.0).build()
        too_small = Package(small_numeric_table, [0])       # sum = 1
        too_large = Package(small_numeric_table, [3, 4])    # sum = 9
        in_range = Package(small_numeric_table, [0, 2])     # sum = 4
        assert not is_feasible(too_small, query)
        assert not is_feasible(too_large, query)
        assert is_feasible(in_range, query)

    def test_empty_package_vacuously_satisfies_base_predicate(self, recipes):
        query = meal_planner_query()
        report = check_package(Package.empty(recipes), query)
        assert report.base_predicate_ok
        assert not report.feasible  # COUNT = 3 violated.


class TestApproximationRatio:
    def test_minimisation_ratio(self):
        assert approximation_ratio(12.0, 10.0, ObjectiveDirection.MINIMIZE) == pytest.approx(1.2)

    def test_maximisation_ratio(self):
        assert approximation_ratio(50.0, 100.0, ObjectiveDirection.MAXIMIZE) == pytest.approx(2.0)

    def test_perfect_ratio(self):
        assert approximation_ratio(7.0, 7.0, ObjectiveDirection.MINIMIZE) == 1.0

    def test_zero_handling(self):
        assert approximation_ratio(0.0, 0.0, ObjectiveDirection.MINIMIZE) == 1.0
        assert math.isinf(approximation_ratio(5.0, 0.0, ObjectiveDirection.MINIMIZE))
