"""Tests for the PackageQueryEngine facade."""

import pytest

from repro import PackageQueryEngine
from repro.core.engine import EvaluationMethod
from repro.errors import CatalogError, EvaluationError, PaQLValidationError
from repro.paql.builder import query_over
from repro.workloads.recipes import MEAL_PLANNER_PAQL, meal_planner_query, recipes_table


@pytest.fixture
def engine():
    engine = PackageQueryEngine()
    engine.register_table(recipes_table(num_rows=120, seed=7))
    return engine


class TestCatalogManagement:
    def test_register_and_fetch(self, engine):
        assert engine.table("recipes").num_rows == 120

    def test_missing_table(self, engine):
        with pytest.raises(CatalogError):
            engine.table("nope")

    def test_build_partitioning_methods(self, engine):
        for method in ("quadtree", "kdtree", "kmeans"):
            partitioning = engine.build_partitioning(
                "recipes", ["kcal", "saturated_fat"], size_threshold=30,
                method=method, label=method,
            )
            assert partitioning.num_groups >= 1
            assert engine.database.has_partitioning("recipes", method)

    def test_unknown_partitioning_method(self, engine):
        with pytest.raises(EvaluationError):
            engine.build_partitioning("recipes", ["kcal"], 10, method="voronoi")


class TestExecution:
    def test_paql_text_direct(self, engine):
        result = engine.execute(MEAL_PLANNER_PAQL, method="direct")
        assert result.method is EvaluationMethod.DIRECT
        assert result.feasible
        assert result.package.cardinality == 3
        assert result.wall_seconds > 0
        assert "direct_stats" in result.details

    def test_builder_query(self, engine):
        result = engine.execute(meal_planner_query(), method="direct")
        assert result.feasible

    def test_sketchrefine_requires_partitioning(self, engine):
        with pytest.raises(EvaluationError, match="partitioning"):
            engine.execute(MEAL_PLANNER_PAQL, method="sketchrefine")

    def test_sketchrefine_with_partitioning(self, engine):
        engine.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=30)
        result = engine.execute(MEAL_PLANNER_PAQL, method="sketchrefine")
        assert result.method is EvaluationMethod.SKETCH_REFINE
        assert result.feasible
        assert "sketchrefine_stats" in result.details

    def test_naive_method(self, engine):
        result = engine.execute(MEAL_PLANNER_PAQL, method="naive")
        assert result.method is EvaluationMethod.NAIVE
        assert result.feasible

    def test_all_methods_agree_on_objective(self, engine):
        engine.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=20)
        direct = engine.execute(MEAL_PLANNER_PAQL, method="direct")
        naive = engine.execute(MEAL_PLANNER_PAQL, method="naive")
        assert direct.objective == pytest.approx(naive.objective, rel=1e-6)

    def test_validation_error_for_bad_column(self, engine):
        query = query_over("recipes").sum_at_most("no_such_column", 1).build()
        with pytest.raises(PaQLValidationError):
            engine.execute(query, method="direct")

    def test_materialize_result(self, engine):
        result = engine.execute(MEAL_PLANNER_PAQL, method="direct")
        table = result.materialize("meal_plan")
        assert table.num_rows == 3
        assert table.name == "meal_plan"
        assert set(table.schema.names) == set(engine.table("recipes").schema.names)


class TestAutoMethod:
    def test_auto_uses_direct_for_small_tables(self, engine):
        result = engine.execute(MEAL_PLANNER_PAQL)  # default AUTO
        assert result.method is EvaluationMethod.DIRECT

    def test_auto_uses_sketchrefine_for_large_partitioned_tables(self):
        engine = PackageQueryEngine()
        engine.register_table(recipes_table(num_rows=2_500, seed=7))
        engine.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=250)
        result = engine.execute(MEAL_PLANNER_PAQL, method=EvaluationMethod.AUTO)
        assert result.method is EvaluationMethod.SKETCH_REFINE
        assert result.feasible

    def test_auto_without_partitioning_stays_direct(self):
        engine = PackageQueryEngine()
        engine.register_table(recipes_table(num_rows=2_500, seed=7))
        result = engine.execute(MEAL_PLANNER_PAQL)
        assert result.method is EvaluationMethod.DIRECT

    def test_method_accepts_string_or_enum(self, engine):
        as_string = engine.execute(MEAL_PLANNER_PAQL, method="direct")
        as_enum = engine.execute(MEAL_PLANNER_PAQL, method=EvaluationMethod.DIRECT)
        assert as_string.objective == pytest.approx(as_enum.objective)


class TestDynamicData:
    @pytest.fixture
    def live_engine(self):
        from repro.workloads.galaxy import galaxy_table

        engine = PackageQueryEngine(auto_direct_threshold=500)
        engine.register_table(galaxy_table(1000, seed=13))
        engine.build_partitioning(
            "galaxy", ["petroMag_r", "redshift", "petroFlux_r"], size_threshold=80
        )
        return engine

    @staticmethod
    def _galaxy_query(engine):
        from repro.workloads.galaxy import galaxy_workload

        return galaxy_workload(engine.table("galaxy")).query("Q5").query

    def test_update_table_maintains_partitioning(self, live_engine):
        table = live_engine.table("galaxy")
        result = live_engine.update_table("galaxy", insert=table.head(50))
        assert result.table.version == 1
        assert "default" in result.maintained
        assert not live_engine.database.is_partitioning_stale("galaxy")
        query = self._galaxy_query(live_engine)
        evaluation = live_engine.execute(query)
        assert evaluation.method is EvaluationMethod.SKETCH_REFINE
        stats = evaluation.details["sketchrefine_stats"]
        assert stats.partitioning_version == 1
        assert stats.partitioning_maintenance["deltas_applied"] == 1

    def test_update_table_with_delete_and_combined(self, live_engine):
        live_engine.update_table("galaxy", delete=list(range(10)))
        table = live_engine.table("galaxy")
        assert table.version == 1 and table.num_rows == 990
        result = live_engine.update_table("galaxy", insert=table.head(5), delete=[0])
        assert result.table.version == 2
        assert result.table.num_rows == 994

    def test_update_table_argument_validation(self, live_engine):
        from repro.errors import EvaluationError as EvalError

        with pytest.raises(EvalError, match="needs a delta"):
            live_engine.update_table("galaxy")
        table = live_engine.table("galaxy")
        delta = table.make_delta(delete=[0])
        with pytest.raises(EvalError, match="not both"):
            live_engine.update_table("galaxy", delta, delete=[0])
        # The plain delta form works.
        result = live_engine.update_table("galaxy", delta)
        assert result.table.version == 1

    def test_auto_refuses_stale_partitioning_with_note(self, live_engine):
        live_engine.update_table("galaxy", delete=[0], policy="stale")
        evaluation = live_engine.execute(self._galaxy_query(live_engine))
        assert evaluation.method is EvaluationMethod.DIRECT
        assert "stale" in evaluation.details["auto"]

    def test_explicit_sketchrefine_on_stale_raises(self, live_engine):
        from repro.errors import StalePartitioningError

        live_engine.update_table("galaxy", delete=[0], policy="stale")
        with pytest.raises(StalePartitioningError, match="stale"):
            live_engine.execute(self._galaxy_query(live_engine), method="sketchrefine")

    def test_auto_without_partitioning_notes_fallback(self):
        from repro.workloads.galaxy import galaxy_table, galaxy_workload

        engine = PackageQueryEngine(auto_direct_threshold=500)
        engine.register_table(galaxy_table(1000, seed=13))
        query = galaxy_workload(engine.table("galaxy")).query("Q5").query
        evaluation = engine.execute(query)
        assert evaluation.method is EvaluationMethod.DIRECT
        assert "no partitioning" in evaluation.details["auto"]

    def test_auto_direct_threshold_is_configurable(self):
        engine = PackageQueryEngine(auto_direct_threshold=50)
        engine.register_table(recipes_table(num_rows=120, seed=7))
        engine.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=30)
        result = engine.execute(MEAL_PLANNER_PAQL)
        assert result.method is EvaluationMethod.SKETCH_REFINE
        relaxed = PackageQueryEngine(auto_direct_threshold=10_000)
        relaxed.register_table(recipes_table(num_rows=120, seed=7))
        relaxed.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=30)
        assert relaxed.execute(MEAL_PLANNER_PAQL).method is EvaluationMethod.DIRECT

    def test_update_table_rejects_unknown_policy(self, live_engine):
        from repro.errors import EvaluationError as EvalError

        with pytest.raises(EvalError, match="policy"):
            live_engine.update_table("galaxy", delete=[0], policy="yolo")

    def test_build_partitioning_invalid_threshold_keeps_error_type(self, live_engine):
        from repro.errors import PartitioningError

        with pytest.raises(PartitioningError, match="size threshold"):
            live_engine.build_partitioning("galaxy", ["petroMag_r"], size_threshold=0)

    def test_engine_keeps_passed_empty_database(self):
        from repro import Database

        database = Database("mine", maintenance_policy="stale")
        engine = PackageQueryEngine(database=database)
        assert engine.database is database
