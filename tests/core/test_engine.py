"""Tests for the PackageQueryEngine facade."""

import pytest

from repro import PackageQueryEngine
from repro.core.engine import EvaluationMethod
from repro.errors import CatalogError, EvaluationError, PaQLValidationError
from repro.paql.builder import query_over
from repro.workloads.recipes import MEAL_PLANNER_PAQL, meal_planner_query, recipes_table


@pytest.fixture
def engine():
    engine = PackageQueryEngine()
    engine.register_table(recipes_table(num_rows=120, seed=7))
    return engine


class TestCatalogManagement:
    def test_register_and_fetch(self, engine):
        assert engine.table("recipes").num_rows == 120

    def test_missing_table(self, engine):
        with pytest.raises(CatalogError):
            engine.table("nope")

    def test_build_partitioning_methods(self, engine):
        for method in ("quadtree", "kdtree", "kmeans"):
            partitioning = engine.build_partitioning(
                "recipes", ["kcal", "saturated_fat"], size_threshold=30,
                method=method, label=method,
            )
            assert partitioning.num_groups >= 1
            assert engine.database.has_partitioning("recipes", method)

    def test_unknown_partitioning_method(self, engine):
        with pytest.raises(EvaluationError):
            engine.build_partitioning("recipes", ["kcal"], 10, method="voronoi")


class TestExecution:
    def test_paql_text_direct(self, engine):
        result = engine.execute(MEAL_PLANNER_PAQL, method="direct")
        assert result.method is EvaluationMethod.DIRECT
        assert result.feasible
        assert result.package.cardinality == 3
        assert result.wall_seconds > 0
        assert "direct_stats" in result.details

    def test_builder_query(self, engine):
        result = engine.execute(meal_planner_query(), method="direct")
        assert result.feasible

    def test_sketchrefine_requires_partitioning(self, engine):
        with pytest.raises(EvaluationError, match="partitioning"):
            engine.execute(MEAL_PLANNER_PAQL, method="sketchrefine")

    def test_sketchrefine_with_partitioning(self, engine):
        engine.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=30)
        result = engine.execute(MEAL_PLANNER_PAQL, method="sketchrefine")
        assert result.method is EvaluationMethod.SKETCH_REFINE
        assert result.feasible
        assert "sketchrefine_stats" in result.details

    def test_naive_method(self, engine):
        result = engine.execute(MEAL_PLANNER_PAQL, method="naive")
        assert result.method is EvaluationMethod.NAIVE
        assert result.feasible

    def test_all_methods_agree_on_objective(self, engine):
        engine.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=20)
        direct = engine.execute(MEAL_PLANNER_PAQL, method="direct")
        naive = engine.execute(MEAL_PLANNER_PAQL, method="naive")
        assert direct.objective == pytest.approx(naive.objective, rel=1e-6)

    def test_validation_error_for_bad_column(self, engine):
        query = query_over("recipes").sum_at_most("no_such_column", 1).build()
        with pytest.raises(PaQLValidationError):
            engine.execute(query, method="direct")

    def test_materialize_result(self, engine):
        result = engine.execute(MEAL_PLANNER_PAQL, method="direct")
        table = result.materialize("meal_plan")
        assert table.num_rows == 3
        assert table.name == "meal_plan"
        assert set(table.schema.names) == set(engine.table("recipes").schema.names)


class TestAutoMethod:
    def test_auto_uses_direct_for_small_tables(self, engine):
        result = engine.execute(MEAL_PLANNER_PAQL)  # default AUTO
        assert result.method is EvaluationMethod.DIRECT

    def test_auto_uses_sketchrefine_for_large_partitioned_tables(self):
        engine = PackageQueryEngine()
        engine.register_table(recipes_table(num_rows=2_500, seed=7))
        engine.build_partitioning("recipes", ["kcal", "saturated_fat"], size_threshold=250)
        result = engine.execute(MEAL_PLANNER_PAQL, method=EvaluationMethod.AUTO)
        assert result.method is EvaluationMethod.SKETCH_REFINE
        assert result.feasible

    def test_auto_without_partitioning_stays_direct(self):
        engine = PackageQueryEngine()
        engine.register_table(recipes_table(num_rows=2_500, seed=7))
        result = engine.execute(MEAL_PLANNER_PAQL)
        assert result.method is EvaluationMethod.DIRECT

    def test_method_accepts_string_or_enum(self, engine):
        as_string = engine.execute(MEAL_PLANNER_PAQL, method="direct")
        as_enum = engine.execute(MEAL_PLANNER_PAQL, method=EvaluationMethod.DIRECT)
        assert as_string.objective == pytest.approx(as_enum.objective)
