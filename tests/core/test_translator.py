"""Tests for the PaQL→ILP translation rules (Section 3.1)."""

import numpy as np
import pytest

from repro.core.base_relations import compute_base_relation, indicator_vector
from repro.core.translator import (
    aggregate_coefficients,
    constraint_linear_rows,
    expression_coefficients,
    objective_linear,
    translate_query,
)
from repro.db.aggregates import AggregateFunction
from repro.db.expressions import col
from repro.errors import TranslationError
from repro.ilp.model import ConstraintSense, ObjectiveSense
from repro.paql.ast import (
    AggregateRef,
    ConstraintSenseKeyword,
    GlobalConstraint,
    LinearAggregateExpression,
)
from repro.paql.builder import query_over
from repro.paql.parser import parse_paql


class TestBaseRelations:
    def test_no_predicate_keeps_all_rows(self, recipes):
        query = query_over("recipes").count_equals(1).build()
        base = compute_base_relation(recipes, query)
        assert base.num_eligible == recipes.num_rows

    def test_predicate_filters_rows(self, recipes):
        query = query_over("recipes").where(col("gluten") == "free").count_equals(1).build()
        base = compute_base_relation(recipes, query)
        gluten = recipes.column("gluten")
        assert base.num_eligible == sum(1 for g in gluten if g == "free")
        assert all(gluten[i] == "free" for i in base.eligible_indices)

    def test_restrict(self, recipes):
        query = query_over("recipes").where(col("gluten") == "free").count_equals(1).build()
        base = compute_base_relation(recipes, query)
        restricted = base.restrict(np.arange(10))
        assert set(restricted.eligible_indices) <= set(range(10))
        assert set(restricted.eligible_indices) <= set(base.eligible_indices)

    def test_indicator_vector(self, small_numeric_table):
        rows = np.array([0, 2, 3])
        indicators = indicator_vector(small_numeric_table, col("a") >= 3, rows)
        assert indicators.tolist() == [0.0, 1.0, 1.0]


class TestCoefficientComputation:
    def test_count_coefficients(self, small_numeric_table):
        rows = np.arange(5)
        coefficients = aggregate_coefficients(
            small_numeric_table, rows, AggregateRef(AggregateFunction.COUNT)
        )
        assert coefficients.tolist() == [1.0] * 5

    def test_sum_coefficients_are_attribute_values(self, small_numeric_table):
        rows = np.array([1, 3])
        coefficients = aggregate_coefficients(
            small_numeric_table, rows, AggregateRef(AggregateFunction.SUM, "b")
        )
        assert coefficients.tolist() == [20.0, 40.0]

    def test_filtered_coefficients(self, small_numeric_table):
        rows = np.arange(5)
        aggregate = AggregateRef(AggregateFunction.SUM, "a", filter=col("c") == 1)
        coefficients = aggregate_coefficients(small_numeric_table, rows, aggregate)
        assert coefficients.tolist() == [1.0, 0.0, 3.0, 0.0, 5.0]

    def test_expression_combines_terms(self, small_numeric_table):
        expression = LinearAggregateExpression(
            [
                (2.0, AggregateRef(AggregateFunction.SUM, "a")),
                (-1.0, AggregateRef(AggregateFunction.COUNT)),
            ]
        )
        coefficients = expression_coefficients(small_numeric_table, np.arange(5), expression)
        assert coefficients.tolist() == [1.0, 3.0, 5.0, 7.0, 9.0]

    def test_min_max_rejected(self, small_numeric_table):
        with pytest.raises(TranslationError):
            aggregate_coefficients(
                small_numeric_table, np.arange(5), AggregateRef(AggregateFunction.MIN, "a")
            )


class TestConstraintRows:
    def test_between_produces_two_rows(self, small_numeric_table):
        constraint = GlobalConstraint(
            LinearAggregateExpression.of(AggregateRef(AggregateFunction.SUM, "a")),
            ConstraintSenseKeyword.BETWEEN, 2.0, 6.0,
        )
        rows = constraint_linear_rows(small_numeric_table, np.arange(5), constraint, "window")
        assert [r.sense for r in rows] == [ConstraintSense.GE, ConstraintSense.LE]
        assert [r.rhs for r in rows] == [2.0, 6.0]

    def test_avg_rewrite(self, small_numeric_table):
        # AVG(a) <= 3  ->  sum over (a_i - 3) x_i <= 0
        constraint = GlobalConstraint(
            LinearAggregateExpression.of(AggregateRef(AggregateFunction.AVG, "a")),
            ConstraintSenseKeyword.LE, 3.0,
        )
        rows = constraint_linear_rows(small_numeric_table, np.arange(5), constraint, "avg")
        assert len(rows) == 1
        assert rows[0].rhs == 0.0
        assert rows[0].coefficients.tolist() == [-2.0, -1.0, 0.0, 1.0, 2.0]

    def test_avg_with_negative_weight_flips_sense(self, small_numeric_table):
        constraint = GlobalConstraint(
            LinearAggregateExpression.of(AggregateRef(AggregateFunction.AVG, "a"), coefficient=-1.0),
            ConstraintSenseKeyword.LE, -3.0,
        )
        rows = constraint_linear_rows(small_numeric_table, np.arange(5), constraint, "avg")
        assert rows[0].sense is ConstraintSense.GE

    def test_avg_between(self, small_numeric_table):
        constraint = GlobalConstraint(
            LinearAggregateExpression.of(AggregateRef(AggregateFunction.AVG, "a")),
            ConstraintSenseKeyword.BETWEEN, 2.0, 4.0,
        )
        rows = constraint_linear_rows(small_numeric_table, np.arange(5), constraint, "avg")
        assert [r.sense for r in rows] == [ConstraintSense.GE, ConstraintSense.LE]


class TestTranslateQuery:
    def test_running_example_shape(self, recipes):
        query = parse_paql(
            "SELECT PACKAGE(R) AS P FROM recipes R REPEAT 0 "
            "WHERE R.gluten = 'free' "
            "SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) BETWEEN 2.0 AND 2.5 "
            "MINIMIZE SUM(P.saturated_fat)"
        )
        translation = translate_query(recipes, query)
        base = compute_base_relation(recipes, query)
        assert translation.num_variables == base.num_eligible
        # COUNT equality (1 row) + BETWEEN (2 rows).
        assert translation.model.num_constraints == 3
        assert translation.model.objective.sense is ObjectiveSense.MINIMIZE
        # Repetition bound REPEAT 0 -> upper bound 1 on every variable.
        assert all(v.upper == 1.0 for v in translation.model.variables)

    def test_repeat_none_means_unbounded(self, recipes):
        query = query_over("recipes").count_equals(2).minimize_sum("kcal").build()
        translation = translate_query(recipes, query)
        assert all(v.upper is None for v in translation.model.variables)

    def test_repeat_k_bound(self, recipes):
        query = query_over("recipes").repeat(2).count_equals(2).minimize_sum("kcal").build()
        translation = translate_query(recipes, query)
        assert all(v.upper == 3.0 for v in translation.model.variables)

    def test_vacuous_objective_when_absent(self, recipes):
        query = query_over("recipes").count_equals(2).build()
        translation = translate_query(recipes, query)
        assert translation.model.is_pure_feasibility
        assert translation.model.objective.sense is ObjectiveSense.MAXIMIZE

    def test_candidate_rows_restriction(self, recipes):
        query = query_over("recipes").count_equals(1).minimize_sum("kcal").build()
        translation = translate_query(recipes, query, candidate_rows=np.arange(7))
        assert translation.num_variables == 7
        assert translation.variable_rows.tolist() == list(range(7))

    def test_upper_bounds_override(self, recipes):
        query = query_over("recipes").no_repetition().count_equals(1).build()
        rows = np.arange(4)
        translation = translate_query(
            recipes, query, candidate_rows=rows, upper_bounds=np.array([5.0, 6.0, 7.0, 8.0])
        )
        assert [v.upper for v in translation.model.variables] == [5.0, 6.0, 7.0, 8.0]

    def test_upper_bounds_length_mismatch(self, recipes):
        query = query_over("recipes").count_equals(1).build()
        with pytest.raises(TranslationError):
            translate_query(recipes, query, candidate_rows=np.arange(4), upper_bounds=np.ones(3))

    def test_extra_constraints_appended(self, recipes):
        query = query_over("recipes").count_equals(3).build()
        extra = GlobalConstraint(
            LinearAggregateExpression.of(AggregateRef(AggregateFunction.SUM, "kcal")),
            ConstraintSenseKeyword.LE, 100.0,
        )
        translation = translate_query(recipes, query, extra_constraints=[extra])
        assert translation.model.num_constraints == 2

    def test_objective_linear_helper(self, recipes):
        query = query_over("recipes").maximize_sum("protein").build()
        sense, coefficients = objective_linear(recipes, np.arange(recipes.num_rows), query)
        assert sense is ObjectiveSense.MAXIMIZE
        assert np.allclose(coefficients, recipes.numeric_column("protein"))

    def test_package_from_solution_round_trip(self, recipes, fast_solver):
        query = (
            query_over("recipes")
            .no_repetition()
            .where(col("gluten") == "free")
            .count_equals(3)
            .minimize_sum("saturated_fat")
            .build()
        )
        translation = translate_query(recipes, query)
        solution = fast_solver.solve(translation.model)
        package = translation.package_from_solution(solution)
        assert package.cardinality == 3
        # Variables map back to the correct source rows (all gluten-free).
        gluten = recipes.column("gluten")
        assert all(gluten[i] == "free" for i in package.indices)
