"""Tests for incremental partition maintenance (PartitionMaintainer).

The load-bearing guarantee: a maintained partitioning satisfies the same τ
(and ω, when configured) conditions as a fresh build, and its per-group
statistics match a from-scratch recompute of the same group assignment
(untouched groups bit-identically, touched groups within floating-point
accumulation tolerance) — so SKETCHREFINE's approximation story is unchanged
under insert/delete streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.table import Table
from repro.errors import PartitioningError
from repro.partition.kdtree import KdTreePartitioner
from repro.partition.kmeans import KMeansPartitioner
from repro.partition.maintenance import (
    MaintenanceStats,
    PartitionMaintainer,
    make_partitioner,
)
from repro.partition.quadtree import QuadTreePartitioner
from repro.partition.representatives import compute_centroids, group_radii
from repro.workloads.galaxy import galaxy_table

ATTRIBUTES = ["petroMag_r", "redshift", "petroFlux_r"]


def _assert_stats_match_recompute(partitioning) -> None:
    """The carried per-group stats must equal a from-scratch recompute."""
    table, gids = partitioning.table, partitioning.group_ids
    assert np.array_equal(
        partitioning.group_sizes(),
        np.bincount(gids, minlength=partitioning.num_groups),
    )
    fresh_centroids = compute_centroids(table, gids, partitioning.attributes)
    assert np.allclose(partitioning.group_centroids(), fresh_centroids)
    fresh_radii = group_radii(table, gids, partitioning.attributes, centroids=fresh_centroids)
    assert np.allclose(partitioning.group_radii_array(), fresh_radii)
    assert partitioning.stats.num_groups == partitioning.num_groups
    assert partitioning.stats.max_group_size == int(partitioning.group_sizes().max())
    assert partitioning.stats.max_radius == pytest.approx(partitioning.max_radius())
    # Dense gid space: every group has at least one member.
    assert (partitioning.group_sizes() > 0).all()


class TestMakePartitioner:
    def test_known_methods(self):
        assert isinstance(make_partitioner("quadtree", 10, None), QuadTreePartitioner)
        assert isinstance(make_partitioner("kdtree", 10, 1.0), KdTreePartitioner)
        assert isinstance(make_partitioner("kmeans", 10, None), KMeansPartitioner)

    def test_derived_method_string(self):
        assert isinstance(make_partitioner("quadtree(restricted)", 10, None), QuadTreePartitioner)

    def test_unknown_method_rejected(self):
        with pytest.raises(PartitioningError):
            make_partitioner("voronoi", 10, None)


class TestSingleDelta:
    @pytest.fixture
    def built(self):
        table = galaxy_table(800, seed=11)
        partitioning = QuadTreePartitioner(size_threshold=60).partition(table, ATTRIBUTES)
        return table, partitioning

    def test_insert_joins_nearest_group(self, built):
        table, partitioning = built
        # Re-inserting copies of existing tuples must land them in groups that
        # already enclose them (distance 0 to their own group's members).
        block = table.take(np.arange(10))
        new_table, delta = table.append_rows(block)
        maintained, stats = PartitionMaintainer().maintain(partitioning, new_table, delta)
        assert maintained.version == 1
        assert maintained.table is new_table
        assert stats.rows_inserted == 10
        _assert_stats_match_recompute(maintained)

    def test_delete_shrinks_and_retires_groups(self, built):
        table, partitioning = built
        victim = int(np.argmin(partitioning.group_sizes()))
        mask = partitioning.group_ids == victim
        new_table, delta = table.delete_rows(mask)
        maintained, stats = PartitionMaintainer().maintain(partitioning, new_table, delta)
        assert maintained.num_groups == partitioning.num_groups - 1
        assert stats.groups_retired == 1
        assert maintained.maintenance.groups_retired == 1
        _assert_stats_match_recompute(maintained)

    def test_overflowing_group_is_resplit_locally(self, built):
        table, partitioning = built
        tau = partitioning.stats.size_threshold
        centroid = partitioning.group_centroids()[0]
        rng = np.random.default_rng(5)
        columns = {
            name: np.zeros(2 * tau) for name in table.schema.names
        }
        for j, attribute in enumerate(ATTRIBUTES):
            columns[attribute] = np.round(rng.normal(centroid[j], 1e-3, 2 * tau), 6)
        blob = Table(table.schema, columns, name=table.name)
        new_table, delta = table.append_rows(blob)
        maintained, stats = PartitionMaintainer().maintain(partitioning, new_table, delta)
        assert stats.groups_resplit >= 1
        assert stats.groups_created >= 2
        assert maintained.satisfies_size_threshold(tau)
        _assert_stats_match_recompute(maintained)

    def test_radius_limit_maintained(self):
        table = galaxy_table(600, seed=21)
        attributes = ["petroMag_r", "redshift"]
        partitioning = QuadTreePartitioner(size_threshold=400, radius_limit=1.5).partition(
            table, attributes
        )
        assert partitioning.satisfies_radius_limit(1.5)
        centroid = partitioning.group_centroids()[0]
        columns = {name: np.zeros(20) for name in table.schema.names}
        for j, attribute in enumerate(attributes):
            columns[attribute] = np.full(20, centroid[j] + 6.0)
        outliers = Table(table.schema, columns, name=table.name)
        new_table, delta = table.append_rows(outliers)
        maintained, stats = PartitionMaintainer().maintain(partitioning, new_table, delta)
        assert stats.groups_resplit >= 1
        assert maintained.satisfies_radius_limit(1.5)
        _assert_stats_match_recompute(maintained)

    def test_empty_partitioning_rebuilds(self, built):
        table, partitioning = built
        emptied, delta = table.delete_rows(np.ones(table.num_rows, dtype=bool))
        maintainer = PartitionMaintainer()
        empty_p, _ = maintainer.maintain(partitioning, emptied, delta)
        assert empty_p.num_groups == 0
        refilled, delta2 = emptied.append_rows(table.take(np.arange(100)))
        rebuilt, stats = maintainer.maintain(empty_p, refilled, delta2)
        assert stats.rebuilt
        assert rebuilt.version == 2
        assert rebuilt.satisfies_size_threshold(60)
        assert rebuilt.maintenance.deltas_applied == 2
        _assert_stats_match_recompute(rebuilt)

    def test_version_mismatch_rejected(self, built):
        table, partitioning = built
        new_table, delta = table.append_rows(table.take(np.arange(5)))
        newer, _ = new_table.append_rows(table.take(np.arange(5)))
        with pytest.raises(PartitioningError, match="version"):
            partitioning.with_delta(newer, delta, np.zeros(5, dtype=np.int64))
        maintained, _ = PartitionMaintainer().maintain(partitioning, new_table, delta)
        with pytest.raises(PartitioningError, match="version"):
            PartitionMaintainer().maintain(maintained, new_table, delta)

    def test_inserted_assignment_must_name_existing_groups(self, built):
        table, partitioning = built
        new_table, delta = table.append_rows(table.take(np.arange(3)))
        bad = np.array([0, 1, partitioning.num_groups], dtype=np.int64)
        with pytest.raises(PartitioningError, match="existing groups"):
            partitioning.with_delta(new_table, delta, bad)

    def test_maintenance_stats_shape(self, built):
        table, partitioning = built
        new_table, delta = table.append_rows(table.take(np.arange(7)))
        _, stats = PartitionMaintainer().maintain(partitioning, new_table, delta)
        assert isinstance(stats, MaintenanceStats)
        assert stats.groups_before == partitioning.num_groups
        assert stats.rows_inserted == 7
        assert stats.rows_deleted == 0
        assert stats.maintain_seconds > 0


@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize(
    "tau,omega", [(80, None), (300, 2.0)], ids=["tau-only", "tau-and-omega"]
)
def test_property_random_delta_stream(seed, tau, omega):
    """Acceptance property: after ≥20 mixed insert/delete deltas the maintained
    partitioning still satisfies τ (and ω), and its stats are exact."""
    table = galaxy_table(1200, seed=3)
    pool = galaxy_table(2500, seed=1000 + seed)
    partitioning = QuadTreePartitioner(size_threshold=tau, radius_limit=omega).partition(
        table, ATTRIBUTES
    )
    maintainer = PartitionMaintainer()
    rng = np.random.default_rng(seed)

    for _ in range(22):
        choice = rng.random()
        insert = delete = None
        if choice < 0.45 or table.num_rows < 200:
            count = int(rng.integers(10, 60))
            insert = pool.take(rng.choice(pool.num_rows, count, replace=False))
        elif choice < 0.9:
            count = int(rng.integers(5, 40))
            delete = rng.choice(table.num_rows, count, replace=False)
        else:  # mixed delta: delete and insert in one version bump
            insert = pool.take(rng.choice(pool.num_rows, 15, replace=False))
            delete = rng.choice(table.num_rows, 10, replace=False)
        new_table, delta = table.update_rows(insert=insert, delete=delete)
        partitioning, _ = maintainer.maintain(partitioning, new_table, delta)
        table = new_table

    assert partitioning.version == table.version == 22
    assert partitioning.maintenance.deltas_applied == 22
    assert partitioning.satisfies_size_threshold(tau)
    if omega is not None:
        assert partitioning.satisfies_radius_limit(omega)
    _assert_stats_match_recompute(partitioning)


def test_property_sketchrefine_quality_after_maintenance():
    """SKETCHREFINE over a maintained partitioning stays feasible and close in
    objective to SKETCHREFINE over a full rebuild of the final table."""
    from repro.core.sketchrefine import SketchRefineEvaluator
    from repro.core.validation import check_package, objective_value
    from repro.workloads.galaxy import galaxy_workload

    table = galaxy_table(1200, seed=3)
    pool = galaxy_table(2500, seed=17)
    tau = 80
    partitioning = QuadTreePartitioner(size_threshold=tau).partition(table, ATTRIBUTES)
    maintainer = PartitionMaintainer()
    rng = np.random.default_rng(4)
    for _ in range(20):
        if rng.random() < 0.5:
            insert, delete = pool.take(rng.choice(pool.num_rows, 30, replace=False)), None
        else:
            insert, delete = None, rng.choice(table.num_rows, 20, replace=False)
        new_table, delta = table.update_rows(insert=insert, delete=delete)
        partitioning, _ = maintainer.maintain(partitioning, new_table, delta)
        table = new_table

    rebuilt = QuadTreePartitioner(size_threshold=tau).partition(table, ATTRIBUTES)
    workload = galaxy_workload(table)
    query = workload.query("Q5").query

    evaluator = SketchRefineEvaluator()
    maintained_package = evaluator.evaluate(table, query, partitioning)
    assert evaluator.last_stats.partitioning_version == 20
    assert evaluator.last_stats.partitioning_maintenance["deltas_applied"] == 20
    rebuilt_package = evaluator.evaluate(table, query, rebuilt)
    # A fresh rebuild also describes version 20 — but with no maintenance history.
    assert evaluator.last_stats.partitioning_version == 20
    assert evaluator.last_stats.partitioning_maintenance["deltas_applied"] == 0

    assert check_package(maintained_package, query).feasible
    assert check_package(rebuilt_package, query).feasible
    maintained_objective = objective_value(maintained_package, query)
    rebuilt_objective = objective_value(rebuilt_package, query)
    # Both partitionings satisfy the same τ condition, so both evaluations
    # carry the paper's approximation argument; empirically they land within
    # a tight band of each other (Q5 maximises total flux).
    assert maintained_objective == pytest.approx(rebuilt_objective, rel=0.25)


def test_null_attributes_radius_metric_consistent():
    """NULL (NaN) partitioning attributes are zero-filled by the same rule at
    build time, in group_radii, and in the maintenance rescan, so the ω check
    a maintainer enforces equals the one the fresh build enforced."""
    rng = np.random.default_rng(3)
    values = rng.normal(10.0, 2.0, 120)
    values[rng.choice(120, 15, replace=False)] = np.nan
    table = Table.from_dict({"x": values.tolist(), "y": rng.normal(0, 1, 120).tolist()})
    partitioning = QuadTreePartitioner(size_threshold=25).partition(table, ["x", "y"])
    block = Table.from_dict(
        {"x": [11.0, None, 9.5], "y": [0.1, -0.2, 0.0]}
    )
    new_table, delta = table.update_rows(insert=block, delete=[0, 5])
    maintained, _ = PartitionMaintainer().maintain(partitioning, new_table, delta)
    assert maintained.satisfies_size_threshold(25)
    fresh_radii = group_radii(
        new_table, maintained.group_ids, maintained.attributes,
        centroids=maintained.group_centroids(),
    )
    assert np.allclose(maintained.group_radii_array(), fresh_radii)
    assert not np.isnan(maintained.group_radii_array()).any()


def test_build_and_maintenance_omega_metric_agree_on_nulls():
    """A group the ω-limited builder accepts must also pass the published
    radius check, so the first benign maintain() never spuriously re-splits
    groups on NULL data (the builders use the same NULL-excluding centroid)."""
    table = Table.from_dict({"x": [10.0, None, 10.5, None]})
    partitioning = QuadTreePartitioner(size_threshold=10, radius_limit=11.0).partition(
        table, ["x"]
    )
    # Published metric: NULLs measured as 0 against the NULL-excluding
    # centroid (~10.25), radius ~10.25 <= 11 — and build-time acceptance
    # now agrees with it.
    assert partitioning.satisfies_radius_limit(11.0)
    assert partitioning.stats.max_radius <= 11.0
    new_table, delta = table.append_rows([(10.2,)])
    maintained, stats = PartitionMaintainer().maintain(partitioning, new_table, delta)
    assert stats.groups_resplit == 0
    assert maintained.satisfies_radius_limit(11.0)
    _assert_stats_match_recompute(maintained)


def test_partitioning_rejects_bad_attributes_at_construction():
    from repro.errors import SchemaError
    from repro.partition.partitioning import Partitioning, PartitioningStats

    table = galaxy_table(10, seed=1)
    stats = PartitioningStats(1, 10, 0.0, 0.0, 10, None, "manual")
    with pytest.raises(SchemaError):
        Partitioning(table, np.zeros(10, dtype=np.int64), ["no_such_column"], stats)
