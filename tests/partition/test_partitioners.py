"""Tests for the quad-tree, k-d tree and k-means partitioners."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.partition.kdtree import KdTreePartitioner
from repro.partition.kmeans import KMeansPartitioner
from repro.partition.quadtree import QuadTreePartitioner
from repro.workloads.galaxy import galaxy_table


@pytest.fixture(scope="module")
def galaxy():
    return galaxy_table(600, seed=9)


ATTRIBUTES = ["petroMag_r", "petroFlux_r", "redshift"]


class TestQuadTree:
    def test_respects_size_threshold(self, galaxy):
        partitioning = QuadTreePartitioner(size_threshold=60).partition(galaxy, ATTRIBUTES)
        assert partitioning.satisfies_size_threshold(60)
        assert partitioning.num_groups >= galaxy.num_rows // 60

    def test_every_row_assigned_exactly_once(self, galaxy):
        partitioning = QuadTreePartitioner(size_threshold=100).partition(galaxy, ATTRIBUTES)
        assert partitioning.group_ids.shape == (galaxy.num_rows,)
        assert partitioning.group_sizes().sum() == galaxy.num_rows

    def test_radius_limit_enforced(self, galaxy):
        no_radius = QuadTreePartitioner(size_threshold=300).partition(galaxy, ATTRIBUTES)
        omega = no_radius.max_radius() / 2
        limited = QuadTreePartitioner(size_threshold=300, radius_limit=omega).partition(
            galaxy, ATTRIBUTES
        )
        assert limited.satisfies_radius_limit(omega)
        assert limited.num_groups >= no_radius.num_groups

    def test_single_group_when_threshold_large(self, galaxy):
        partitioning = QuadTreePartitioner(size_threshold=10_000).partition(galaxy, ATTRIBUTES)
        assert partitioning.num_groups == 1

    def test_degenerate_identical_tuples(self):
        from repro.dataset.table import Table

        table = Table.from_dict({"x": [1.0] * 20, "y": [2.0] * 20})
        partitioning = QuadTreePartitioner(size_threshold=5).partition(table, ["x", "y"])
        # All tuples identical: the split is degenerate, one group remains
        # (the size threshold cannot be met, which is acceptable behaviour).
        assert partitioning.num_groups == 1
        assert partitioning.max_radius() == 0.0

    def test_invalid_parameters(self, galaxy):
        with pytest.raises(PartitioningError):
            QuadTreePartitioner(size_threshold=0)
        with pytest.raises(PartitioningError):
            QuadTreePartitioner(size_threshold=5, radius_limit=-1.0)
        with pytest.raises(PartitioningError):
            QuadTreePartitioner(size_threshold=5).partition(galaxy, [])

    def test_requires_numeric_attributes(self, recipes):
        with pytest.raises(Exception):
            QuadTreePartitioner(size_threshold=5).partition(recipes, ["gluten"])

    def test_stats_populated(self, galaxy):
        partitioning = QuadTreePartitioner(size_threshold=60).partition(galaxy, ATTRIBUTES)
        stats = partitioning.stats
        assert stats.method == "quadtree"
        assert stats.num_groups == partitioning.num_groups
        assert stats.max_group_size <= 60
        assert stats.build_seconds >= 0.0
        assert stats.max_radius >= 0.0

    def test_empty_table(self):
        from repro.dataset.table import Table

        table = Table.from_dict({"x": []})
        partitioning = QuadTreePartitioner(size_threshold=5).partition(table, ["x"])
        assert partitioning.num_groups == 0

    def test_nan_values_tolerated(self):
        from repro.dataset.table import Table

        table = Table.from_dict({"x": [1.0, None, 3.0, 4.0], "y": [1.0, 2.0, None, 4.0]})
        partitioning = QuadTreePartitioner(size_threshold=2).partition(table, ["x", "y"])
        assert partitioning.group_sizes().sum() == 4


class TestKdTree:
    def test_respects_size_threshold(self, galaxy):
        partitioning = KdTreePartitioner(size_threshold=50).partition(galaxy, ATTRIBUTES)
        assert partitioning.satisfies_size_threshold(50)

    def test_balanced_group_count(self, galaxy):
        partitioning = KdTreePartitioner(size_threshold=75).partition(galaxy, ATTRIBUTES)
        # Median splits give group counts close to n / tau (within a factor 4).
        expected = galaxy.num_rows / 75
        assert expected <= partitioning.num_groups <= 4 * expected

    def test_radius_limit(self, galaxy):
        base = KdTreePartitioner(size_threshold=300).partition(galaxy, ATTRIBUTES)
        omega = base.max_radius() / 2
        limited = KdTreePartitioner(size_threshold=300, radius_limit=omega).partition(
            galaxy, ATTRIBUTES
        )
        assert limited.satisfies_radius_limit(omega)

    def test_invalid_threshold(self):
        with pytest.raises(PartitioningError):
            KdTreePartitioner(size_threshold=0)


class TestKMeans:
    def test_enforced_size_threshold(self, galaxy):
        partitioning = KMeansPartitioner(size_threshold=80, seed=1).partition(galaxy, ATTRIBUTES)
        assert partitioning.satisfies_size_threshold(80)

    def test_unenforced_may_violate_threshold(self, galaxy):
        partitioning = KMeansPartitioner(size_threshold=10, enforce_size=False, seed=1).partition(
            galaxy, ATTRIBUTES
        )
        # Plain k-means offers no guarantee — this is exactly the drawback the
        # paper cites; with such a tiny τ some cluster almost surely overflows.
        assert partitioning.num_groups >= 1

    def test_deterministic_given_seed(self, galaxy):
        one = KMeansPartitioner(size_threshold=100, seed=7).partition(galaxy, ATTRIBUTES)
        two = KMeansPartitioner(size_threshold=100, seed=7).partition(galaxy, ATTRIBUTES)
        assert np.array_equal(one.group_ids, two.group_ids)

    def test_invalid_threshold(self):
        with pytest.raises(PartitioningError):
            KMeansPartitioner(size_threshold=0)


class TestKdTreeSmallTables:
    """Regression: stats must be consistent when the whole table fits one group."""

    def test_single_group_when_below_threshold(self):
        table = galaxy_table(7, seed=2)
        partitioning = KdTreePartitioner(size_threshold=50).partition(table, ATTRIBUTES)
        assert partitioning.num_groups == 1
        assert partitioning.stats.num_groups == 1
        assert partitioning.stats.max_group_size == 7
        assert partitioning.group_sizes().tolist() == [7]
        assert partitioning.group_rows(0).tolist() == list(range(7))
        assert partitioning.stats.max_radius == pytest.approx(partitioning.max_radius())

    def test_empty_table(self):
        from repro.dataset.table import Table

        table = Table.empty(galaxy_table(1).schema, name="galaxy")
        partitioning = KdTreePartitioner(size_threshold=50).partition(table, ATTRIBUTES)
        assert partitioning.num_groups == 0
        assert partitioning.stats.num_groups == 0
        assert partitioning.stats.max_group_size == 0
        assert partitioning.max_radius() == 0.0

    def test_empty_table_with_radius_limit(self):
        from repro.dataset.table import Table

        table = Table.empty(galaxy_table(1).schema, name="galaxy")
        partitioning = KdTreePartitioner(size_threshold=50, radius_limit=0.5).partition(
            table, ATTRIBUTES
        )
        assert partitioning.num_groups == 0
