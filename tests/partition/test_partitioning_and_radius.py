"""Tests for the Partitioning object, representatives, and the radius/epsilon machinery."""

import numpy as np
import pytest

from repro.dataset.table import Table
from repro.errors import PartitioningError
from repro.paql.ast import ObjectiveDirection
from repro.partition.partitioning import Partitioning, PartitioningStats
from repro.partition.quadtree import QuadTreePartitioner
from repro.partition.radius import (
    approximation_factor,
    epsilon_for_omega,
    gamma_for_epsilon,
    omega_for_epsilon,
)
from repro.partition.representatives import build_representative_table, compute_centroids, group_radii
from repro.workloads.galaxy import galaxy_table


@pytest.fixture(scope="module")
def partitioned_galaxy():
    table = galaxy_table(400, seed=5)
    attributes = ["petroMag_r", "redshift", "petroFlux_r"]
    partitioning = QuadTreePartitioner(size_threshold=50).partition(table, attributes)
    return table, attributes, partitioning


class TestRepresentatives:
    def test_centroids_are_group_means(self):
        table = Table.from_dict({"x": [0.0, 2.0, 10.0, 14.0], "y": [1.0, 3.0, 5.0, 7.0]})
        group_ids = np.array([0, 0, 1, 1])
        centroids = compute_centroids(table, group_ids, ["x", "y"])
        assert centroids.tolist() == [[1.0, 2.0], [12.0, 6.0]]

    def test_centroids_ignore_nans(self):
        table = Table.from_dict({"x": [1.0, None, 5.0]})
        centroids = compute_centroids(table, np.array([0, 0, 0]), ["x"])
        assert centroids[0, 0] == pytest.approx(3.0)

    def test_representative_table_schema(self, partitioned_galaxy):
        table, attributes, partitioning = partitioned_galaxy
        representatives = build_representative_table(table, partitioning.group_ids, attributes)
        assert representatives.schema.names == ("gid",) + tuple(attributes)
        assert representatives.num_rows == partitioning.num_groups

    def test_group_radii_bound_member_distances(self):
        table = Table.from_dict({"x": [0.0, 4.0, 100.0]})
        group_ids = np.array([0, 0, 1])
        radii = group_radii(table, group_ids, ["x"])
        assert radii[0] == pytest.approx(2.0)
        assert radii[1] == pytest.approx(0.0)


class TestPartitioningObject:
    def test_group_rows_partition_the_table(self, partitioned_galaxy):
        _, _, partitioning = partitioned_galaxy
        all_rows = np.concatenate(
            [partitioning.group_rows(g) for g in range(partitioning.num_groups)]
        )
        assert sorted(all_rows.tolist()) == list(range(partitioning.table.num_rows))

    def test_group_size_and_radius(self, partitioned_galaxy):
        _, _, partitioning = partitioned_galaxy
        for gid in range(partitioning.num_groups):
            assert partitioning.group_size(gid) == len(partitioning.group_rows(gid))
            assert partitioning.group_radius(gid) >= 0.0
        assert partitioning.max_radius() == max(
            partitioning.group_radius(g) for g in range(partitioning.num_groups)
        )

    def test_unknown_group_rejected(self, partitioned_galaxy):
        _, _, partitioning = partitioned_galaxy
        with pytest.raises(PartitioningError):
            partitioning.group_rows(9999)

    def test_mismatched_group_ids_rejected(self, small_numeric_table):
        stats = PartitioningStats(1, 5, 0.0, 0.0, 5, None, "manual")
        with pytest.raises(PartitioningError):
            Partitioning(small_numeric_table, np.zeros(3, dtype=np.int64), ["a"], stats)

    def test_table_with_gid_column(self, partitioned_galaxy):
        _, _, partitioning = partitioned_galaxy
        augmented = partitioning.table_with_gid()
        assert "gid" in augmented.schema
        assert augmented.column("gid").tolist() == partitioning.group_ids.tolist()

    def test_restricted_to_rows_preserves_size_condition(self, partitioned_galaxy):
        _, _, partitioning = partitioned_galaxy
        rng = np.random.default_rng(0)
        subset = np.sort(rng.choice(partitioning.table.num_rows, 150, replace=False))
        restricted = partitioning.restricted_to_rows(subset)
        assert restricted.table.num_rows == 150
        # Removing tuples can only shrink groups, never grow them.
        assert restricted.group_sizes().max() <= partitioning.group_sizes().max()
        # Group ids are densified.
        assert set(np.unique(restricted.group_ids)) == set(range(restricted.num_groups))

    def test_save_and_load_round_trip(self, partitioned_galaxy, tmp_path):
        table, _, partitioning = partitioned_galaxy
        partitioning.save(tmp_path / "part")
        loaded = Partitioning.load(tmp_path / "part", table)
        assert loaded.num_groups == partitioning.num_groups
        assert np.array_equal(loaded.group_ids, partitioning.group_ids)
        assert loaded.attributes == partitioning.attributes

    def test_load_with_wrong_table_rejected(self, partitioned_galaxy, tmp_path):
        table, attributes, partitioning = partitioned_galaxy
        partitioning.save(tmp_path / "part2")
        smaller = table.head(50)
        with pytest.raises(PartitioningError):
            Partitioning.load(tmp_path / "part2", smaller)


class TestRadiusFormula:
    def test_gamma_for_maximisation(self):
        assert gamma_for_epsilon(0.2, ObjectiveDirection.MAXIMIZE) == 0.2
        with pytest.raises(PartitioningError):
            gamma_for_epsilon(1.5, ObjectiveDirection.MAXIMIZE)

    def test_gamma_for_minimisation(self):
        assert gamma_for_epsilon(1.0, ObjectiveDirection.MINIMIZE) == pytest.approx(0.5)
        with pytest.raises(PartitioningError):
            gamma_for_epsilon(-0.1, ObjectiveDirection.MINIMIZE)

    def test_omega_uses_smallest_representative_magnitude(self, partitioned_galaxy):
        _, attributes, partitioning = partitioned_galaxy
        omega = omega_for_epsilon(
            partitioning.representatives, attributes, 0.5, ObjectiveDirection.MAXIMIZE
        )
        magnitudes = np.abs(partitioning.representatives.numeric_matrix(attributes))
        assert omega == pytest.approx(0.5 * magnitudes.min())

    def test_epsilon_omega_inverse_relationship(self, partitioned_galaxy):
        _, attributes, partitioning = partitioned_galaxy
        epsilon = 0.3
        omega = omega_for_epsilon(
            partitioning.representatives, attributes, epsilon, ObjectiveDirection.MAXIMIZE
        )
        recovered = epsilon_for_omega(
            partitioning.representatives, attributes, omega, ObjectiveDirection.MAXIMIZE
        )
        assert recovered == pytest.approx(epsilon)

    def test_epsilon_for_omega_minimisation_saturates(self, partitioned_galaxy):
        _, attributes, partitioning = partitioned_galaxy
        huge_omega = 1e12
        assert epsilon_for_omega(
            partitioning.representatives, attributes, huge_omega, ObjectiveDirection.MINIMIZE
        ) == float("inf")

    def test_approximation_factor(self):
        assert approximation_factor(0.0, ObjectiveDirection.MAXIMIZE) == 1.0
        assert approximation_factor(0.1, ObjectiveDirection.MAXIMIZE) == pytest.approx(0.9 ** 6)
        assert approximation_factor(0.1, ObjectiveDirection.MINIMIZE) == pytest.approx(1.1 ** 6)


class TestSaveLoadRoundTrip:
    """Satellite coverage for Partitioning.save/load (metadata, derivation, errors)."""

    def test_metadata_and_stats_equality(self, partitioned_galaxy, tmp_path):
        table, _, partitioning = partitioned_galaxy
        partitioning.save(tmp_path / "part")
        loaded = Partitioning.load(tmp_path / "part", table)
        assert loaded.stats == partitioning.stats
        assert loaded.attributes == partitioning.attributes
        assert loaded.version == partitioning.version
        assert loaded.maintenance == partitioning.maintenance
        assert np.allclose(
            loaded.representatives.numeric_matrix(loaded.attributes),
            partitioning.representatives.numeric_matrix(partitioning.attributes),
        )

    def test_restricted_to_rows_of_loaded_partitioning(self, partitioned_galaxy, tmp_path):
        table, _, partitioning = partitioned_galaxy
        partitioning.save(tmp_path / "part")
        loaded = Partitioning.load(tmp_path / "part", table)
        rng = np.random.default_rng(9)
        subset = np.sort(rng.choice(table.num_rows, 120, replace=False))
        restricted = loaded.restricted_to_rows(subset)
        expected = partitioning.restricted_to_rows(subset)
        assert restricted.table.num_rows == 120
        assert np.array_equal(restricted.group_ids, expected.group_ids)
        assert restricted.group_sizes().max() <= partitioning.group_sizes().max()

    def test_representatives_mismatch_rejected(self, partitioned_galaxy, tmp_path):
        table, attributes, partitioning = partitioned_galaxy
        directory = tmp_path / "part"
        partitioning.save(directory)
        # Corrupt the persisted representatives: drop half the groups.
        from repro.dataset.io import load_table, save_table

        persisted = load_table(directory / "representatives.npz")
        truncated = persisted.head(max(1, persisted.num_rows // 2))
        save_table(truncated, directory / "representatives.npz")
        with pytest.raises(PartitioningError, match="does not match"):
            Partitioning.load(directory, table)

    def test_maintained_partitioning_round_trips_version(self, tmp_path):
        from repro.partition.maintenance import PartitionMaintainer

        table = galaxy_table(300, seed=6)
        attributes = ["petroMag_r", "redshift"]
        partitioning = QuadTreePartitioner(size_threshold=40).partition(table, attributes)
        new_table, delta = table.append_rows(table.head(25))
        maintained, _ = PartitionMaintainer().maintain(partitioning, new_table, delta)
        maintained.save(tmp_path / "part")
        loaded = Partitioning.load(tmp_path / "part", new_table)
        assert loaded.version == 1
        assert loaded.maintenance.deltas_applied == 1
        assert loaded.maintenance.rows_inserted == 25
        assert np.array_equal(loaded.group_ids, maintained.group_ids)
