"""Tests for PaQL semantic validation."""

import pytest

from repro.dataset.schema import Column, DataType, Schema
from repro.errors import PaQLValidationError
from repro.paql.parser import parse_paql
from repro.paql.validator import validate_query


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Column("kcal", DataType.FLOAT),
            Column("fat", DataType.FLOAT),
            Column("gluten", DataType.STRING),
        ]
    )


def make(text: str):
    return parse_paql(text)


class TestColumnChecks:
    def test_valid_query_passes(self, schema):
        query = make(
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' "
            "SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) <= 10 MINIMIZE SUM(P.fat)"
        )
        validate_query(query, schema)

    def test_unknown_column_in_constraint(self, schema):
        query = make("SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT SUM(P.protein) <= 10")
        with pytest.raises(PaQLValidationError, match="protein"):
            validate_query(query, schema)

    def test_unknown_column_in_where(self, schema):
        query = make("SELECT PACKAGE(R) AS P FROM recipes R WHERE R.vitamin = 1")
        with pytest.raises(PaQLValidationError, match="vitamin"):
            validate_query(query, schema)

    def test_unknown_column_in_objective(self, schema):
        query = make("SELECT PACKAGE(R) AS P FROM recipes R MINIMIZE SUM(P.sugar)")
        with pytest.raises(PaQLValidationError, match="sugar"):
            validate_query(query, schema)

    def test_error_lists_available_columns(self, schema):
        query = make("SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT SUM(P.protein) <= 1")
        with pytest.raises(PaQLValidationError, match="kcal"):
            validate_query(query, schema)


class TestTypeChecks:
    def test_sum_over_string_column_rejected(self, schema):
        query = make("SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT SUM(P.gluten) <= 1")
        with pytest.raises(PaQLValidationError, match="non-numeric"):
            validate_query(query, schema)

    def test_string_column_in_where_is_fine(self, schema):
        query = make(
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' "
            "SUCH THAT COUNT(P.*) = 1"
        )
        validate_query(query, schema)

    def test_filtered_count_on_string_filter_is_fine(self, schema):
        query = make(
            "SELECT PACKAGE(R) AS P FROM recipes R "
            "SUCH THAT (SELECT COUNT(*) FROM P WHERE P.gluten = 'free') >= 1"
        )
        validate_query(query, schema)


class TestAvgRules:
    def test_avg_alone_is_fine(self, schema):
        query = make("SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT AVG(P.kcal) <= 1")
        validate_query(query, schema)

    def test_avg_mixed_with_other_terms_rejected(self, schema):
        query = make(
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT AVG(P.kcal) + COUNT(P.*) <= 1"
        )
        with pytest.raises(PaQLValidationError, match="AVG"):
            validate_query(query, schema)

    def test_avg_objective_rejected(self, schema):
        query = make("SELECT PACKAGE(R) AS P FROM recipes R MINIMIZE AVG(P.kcal)")
        with pytest.raises(PaQLValidationError, match="AVG"):
            validate_query(query, schema)
