"""Tests for the programmatic builder and the PaQL formatter (round trips)."""

import pytest

from repro.db.aggregates import AggregateFunction
from repro.db.expressions import col
from repro.paql.ast import ConstraintSenseKeyword, ObjectiveDirection
from repro.paql.builder import query_over
from repro.paql.parser import parse_paql
from repro.paql.pretty import format_paql


class TestBuilder:
    def test_full_query(self):
        query = (
            query_over("recipes", name="meal")
            .no_repetition()
            .where(col("gluten") == "free")
            .count_equals(3)
            .sum_between("kcal", 2.0, 2.5)
            .minimize_sum("saturated_fat")
            .build()
        )
        assert query.relation == "recipes"
        assert query.name == "meal"
        assert query.repeat == 0
        assert len(query.global_constraints) == 2
        assert query.objective.direction is ObjectiveDirection.MINIMIZE

    def test_where_accumulates_conjunctively(self):
        query = (
            query_over("t").where(col("a") > 1).where(col("b") < 2).count_equals(1).build()
        )
        assert query.base_predicate.referenced_columns() == {"a", "b"}

    def test_count_variants(self):
        query = (
            query_over("t")
            .count_at_least(2)
            .count_at_most(5)
            .count_between(2, 5)
            .build()
        )
        senses = [c.sense for c in query.global_constraints]
        assert senses == [
            ConstraintSenseKeyword.GE,
            ConstraintSenseKeyword.LE,
            ConstraintSenseKeyword.BETWEEN,
        ]

    def test_sum_variants(self):
        query = (
            query_over("t")
            .sum_at_least("x", 1)
            .sum_at_most("x", 9)
            .sum_equals("y", 5)
            .build()
        )
        senses = [c.sense for c in query.global_constraints]
        assert senses == [
            ConstraintSenseKeyword.GE,
            ConstraintSenseKeyword.LE,
            ConstraintSenseKeyword.EQ,
        ]

    def test_avg_constraints(self):
        query = query_over("t").avg_at_most("x", 2).avg_at_least("x", 1).build()
        functions = [c.expression.terms[0][1].function for c in query.global_constraints]
        assert functions == [AggregateFunction.AVG, AggregateFunction.AVG]

    def test_filtered_counts(self):
        query = (
            query_over("t")
            .filtered_count_at_least(col("x") > 0, 2)
            .filtered_count_at_most(col("y") < 0, 1)
            .build()
        )
        assert all(
            c.expression.terms[0][1].filter is not None for c in query.global_constraints
        )

    def test_compare_counts(self):
        query = query_over("t").compare_counts(col("a") > 0, col("b") > 0).build()
        terms = query.global_constraints[0].expression.terms
        assert [coefficient for coefficient, _ in terms] == [1.0, -1.0]

    def test_objectives(self):
        assert (
            query_over("t").maximize_sum("x").build().objective.direction
            is ObjectiveDirection.MAXIMIZE
        )
        assert (
            query_over("t").minimize_count().build().objective.expression.terms[0][1].function
            is AggregateFunction.COUNT
        )
        assert (
            query_over("t").maximize_count().build().objective.direction
            is ObjectiveDirection.MAXIMIZE
        )

    def test_numeric_query_columns(self):
        query = (
            query_over("t")
            .where(col("label") == "x")
            .sum_at_most("a", 1)
            .minimize_sum("b")
            .build()
        )
        assert query.numeric_query_columns == {"a", "b"}
        assert query.referenced_columns == {"label", "a", "b"}


class TestFormatterRoundTrip:
    CASES = [
        "SELECT PACKAGE(R) AS P FROM recipes R",
        "SELECT PACKAGE(R) AS P FROM recipes R REPEAT 2",
        (
            "SELECT PACKAGE(R) AS P FROM recipes R REPEAT 0 "
            "WHERE R.gluten = 'free' AND R.kcal <= 1.5 "
            "SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) BETWEEN 2.0 AND 2.5 "
            "MINIMIZE SUM(P.saturated_fat)"
        ),
        (
            "SELECT PACKAGE(T) AS P FROM items T "
            "SUCH THAT (SELECT COUNT(*) FROM P WHERE P.carbs > 0) >= 2 "
            "MAXIMIZE SUM(P.value)"
        ),
        (
            "SELECT PACKAGE(T) AS P FROM items T "
            "SUCH THAT AVG(P.price) <= 10 AND 2 * SUM(P.qty) - COUNT(P.*) >= 0"
        ),
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_format_parse_is_stable(self, text):
        query = parse_paql(text)
        formatted = format_paql(query)
        reparsed = parse_paql(formatted)
        assert reparsed.relation == query.relation
        assert reparsed.repeat == query.repeat
        assert len(reparsed.global_constraints) == len(query.global_constraints)
        for original, round_tripped in zip(query.global_constraints, reparsed.global_constraints):
            assert round_tripped.sense is original.sense
            assert round_tripped.lower == pytest.approx(original.lower)
            if original.upper is not None:
                assert round_tripped.upper == pytest.approx(original.upper)
            original_coefficients = [c for c, _ in original.expression.terms]
            reparsed_coefficients = [c for c, _ in round_tripped.expression.terms]
            assert reparsed_coefficients == pytest.approx(original_coefficients)
        if query.objective is None:
            assert reparsed.objective is None
        else:
            assert reparsed.objective.direction is query.objective.direction

    def test_builder_query_formats(self):
        query = (
            query_over("recipes")
            .no_repetition()
            .where(col("gluten") == "free")
            .count_equals(3)
            .minimize_sum("fat")
            .build()
        )
        text = format_paql(query)
        assert "SELECT PACKAGE" in text
        assert "REPEAT 0" in text
        assert "MINIMIZE SUM(P.fat)" in text
        # The formatted text is itself valid PaQL.
        parse_paql(text)
