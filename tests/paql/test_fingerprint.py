"""Stability tests for the canonical query fingerprint.

The fingerprint must identify the *question*, not its spelling: textual
variants (whitespace, alias names, conjunct order, number formatting) map to
one fingerprint, and pretty-printing round-trips through the parser without
changing it.  Distinct questions must keep distinct fingerprints.
"""

from __future__ import annotations

import pytest

from repro.db.expressions import col
from repro.paql.builder import query_over
from repro.paql.fingerprint import canonical_query_text, query_fingerprint
from repro.paql.parser import parse_paql
from repro.paql.pretty import format_paql

BASE_QUERY = """
SELECT PACKAGE(R) AS P
FROM recipes R REPEAT 0
WHERE R.kcal > 100 AND R.saturated_fat < 30
SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) <= 2000
MINIMIZE SUM(P.saturated_fat)
"""


class TestTextualVariants:
    def test_whitespace_and_case_variants_share_a_fingerprint(self):
        squashed = (
            "select   package(R) as P from recipes R repeat 0 "
            "where R.kcal > 100 and R.saturated_fat < 30 "
            "such that count(P.*) = 3 and sum(P.kcal) <= 2000 "
            "minimize sum(P.saturated_fat)"
        )
        assert query_fingerprint(parse_paql(BASE_QUERY)) == query_fingerprint(
            parse_paql(squashed)
        )

    def test_alias_names_are_cosmetic(self):
        renamed = BASE_QUERY.replace("(R)", "(rel)").replace(" R ", " rel ").replace(
            "R.", "rel."
        ).replace("AS P", "AS pkg").replace("P.", "pkg.")
        assert query_fingerprint(parse_paql(BASE_QUERY)) == query_fingerprint(
            parse_paql(renamed)
        )

    def test_where_conjunct_order_is_irrelevant(self):
        swapped = BASE_QUERY.replace(
            "WHERE R.kcal > 100 AND R.saturated_fat < 30",
            "WHERE R.saturated_fat < 30 AND R.kcal > 100",
        )
        assert query_fingerprint(parse_paql(BASE_QUERY)) == query_fingerprint(
            parse_paql(swapped)
        )

    def test_such_that_constraint_order_is_irrelevant(self):
        swapped = BASE_QUERY.replace(
            "SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) <= 2000",
            "SUCH THAT SUM(P.kcal) <= 2000 AND COUNT(P.*) = 3",
        )
        assert query_fingerprint(parse_paql(BASE_QUERY)) == query_fingerprint(
            parse_paql(swapped)
        )

    def test_number_formatting_is_normalised(self):
        reformatted = BASE_QUERY.replace("<= 2000", "<= 2000.0").replace("= 3", "= 3.0")
        assert query_fingerprint(parse_paql(BASE_QUERY)) == query_fingerprint(
            parse_paql(reformatted)
        )

    def test_comparison_orientation_is_normalised(self):
        flipped = BASE_QUERY.replace("R.kcal > 100", "100 < R.kcal")
        assert query_fingerprint(parse_paql(BASE_QUERY)) == query_fingerprint(
            parse_paql(flipped)
        )

    def test_nested_and_flattening(self):
        left = query_over("t").where((col("a") > 1) & ((col("b") > 2) & (col("c") > 3)))
        right = query_over("t").where(((col("c") > 3) & (col("a") > 1)) & (col("b") > 2))
        assert query_fingerprint(left.build()) == query_fingerprint(right.build())


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            BASE_QUERY,
            "SELECT PACKAGE(R) AS P FROM t R SUCH THAT COUNT(P.*) BETWEEN 2 AND 5",
            (
                "SELECT PACKAGE(R) AS P FROM t R REPEAT 2 "
                "WHERE R.x IN (1, 2, 3) OR NOT R.y = 'a' "
                "SUCH THAT AVG(P.x) >= 0.5 MAXIMIZE SUM(P.x)"
            ),
            (
                "SELECT PACKAGE(R) AS P FROM t R "
                "SUCH THAT (SELECT COUNT(*) FROM P WHERE P.x > 0) >= 1 "
                "MINIMIZE COUNT(P.*)"
            ),
        ],
    )
    def test_parse_pretty_parse_keeps_the_fingerprint(self, text):
        query = parse_paql(text)
        round_tripped = parse_paql(format_paql(query))
        assert query_fingerprint(round_tripped) == query_fingerprint(query)
        assert canonical_query_text(round_tripped) == canonical_query_text(query)


class TestDistinctness:
    def test_different_bounds_differ(self):
        a = parse_paql(BASE_QUERY)
        b = parse_paql(BASE_QUERY.replace("<= 2000", "<= 2001"))
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_different_relation_differs(self):
        b = parse_paql(BASE_QUERY.replace("FROM recipes", "FROM other"))
        assert query_fingerprint(parse_paql(BASE_QUERY)) != query_fingerprint(b)

    def test_objective_direction_differs(self):
        b = parse_paql(BASE_QUERY.replace("MINIMIZE", "MAXIMIZE"))
        assert query_fingerprint(parse_paql(BASE_QUERY)) != query_fingerprint(b)

    def test_repeat_bound_differs(self):
        b = parse_paql(BASE_QUERY.replace("REPEAT 0", "REPEAT 1"))
        assert query_fingerprint(parse_paql(BASE_QUERY)) != query_fingerprint(b)

    def test_missing_repeat_differs_from_repeat_zero(self):
        b = parse_paql(BASE_QUERY.replace(" REPEAT 0", ""))
        assert query_fingerprint(parse_paql(BASE_QUERY)) != query_fingerprint(b)

    def test_filtered_aggregate_differs_from_plain(self):
        plain = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R SUCH THAT COUNT(P.*) >= 1"
        )
        filtered = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R "
            "SUCH THAT (SELECT COUNT(*) FROM P WHERE P.x > 0) >= 1"
        )
        assert query_fingerprint(plain) != query_fingerprint(filtered)


class TestLinearNormalisation:
    def test_duplicate_aggregates_merge(self):
        doubled = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R "
            "SUCH THAT SUM(P.x) + SUM(P.x) <= 10"
        )
        scaled = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R SUCH THAT 2 * SUM(P.x) <= 10"
        )
        assert query_fingerprint(doubled) == query_fingerprint(scaled)

    def test_term_order_is_irrelevant(self):
        ab = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R SUCH THAT SUM(P.a) + SUM(P.b) <= 10"
        )
        ba = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R SUCH THAT SUM(P.b) + SUM(P.a) <= 10"
        )
        assert query_fingerprint(ab) == query_fingerprint(ba)
