"""Tests for the PaQL recursive-descent parser."""

import pytest

from repro.db.aggregates import AggregateFunction
from repro.db.expressions import Comparison, LogicalOp, Not
from repro.errors import PaQLSyntaxError
from repro.paql.ast import ConstraintSenseKeyword, ObjectiveDirection
from repro.paql.parser import parse_paql


RUNNING_EXAMPLE = """
SELECT PACKAGE(R) AS P
FROM Recipes R REPEAT 0
WHERE R.gluten = 'free'
SUCH THAT COUNT(P.*) = 3 AND
          SUM(P.kcal) BETWEEN 2.0 AND 2.5
MINIMIZE SUM(P.saturated_fat)
"""


class TestStructure:
    def test_running_example(self):
        query = parse_paql(RUNNING_EXAMPLE)
        assert query.relation == "Recipes"
        assert query.relation_alias == "R"
        assert query.package_alias == "P"
        assert query.repeat == 0
        assert query.base_predicate is not None
        assert len(query.global_constraints) == 2
        assert query.objective.direction is ObjectiveDirection.MINIMIZE

    def test_minimal_query(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM Recipes R")
        assert query.repeat is None
        assert query.base_predicate is None
        assert query.global_constraints == []
        assert query.objective is None

    def test_alias_without_as(self):
        query = parse_paql("SELECT PACKAGE(T) pkg FROM items T")
        assert query.package_alias == "pkg"
        assert query.relation_alias == "T"

    def test_repeat_value(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R REPEAT 3")
        assert query.repeat == 3
        assert query.max_multiplicity == 4

    def test_maximize(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R MAXIMIZE SUM(P.x)")
        assert query.objective.direction is ObjectiveDirection.MAXIMIZE

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PaQLSyntaxError):
            parse_paql("SELECT PACKAGE(R) AS P FROM t R banana banana")

    def test_missing_package_keyword(self):
        with pytest.raises(PaQLSyntaxError):
            parse_paql("SELECT * FROM t")


class TestBasePredicates:
    def test_alias_qualified_columns_are_stripped(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R WHERE R.kcal >= 10")
        assert query.base_predicate.referenced_columns() == {"kcal"}

    def test_and_or_not(self):
        query = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R "
            "WHERE R.a = 1 AND NOT R.b = 2 OR R.c <= 3"
        )
        predicate = query.base_predicate
        assert isinstance(predicate, LogicalOp)
        assert predicate.referenced_columns() == {"a", "b", "c"}

    def test_between_in_where(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R WHERE R.x BETWEEN 1 AND 5")
        assert isinstance(query.base_predicate, LogicalOp)

    def test_in_list(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R WHERE R.tag IN ('a', 'b')")
        assert query.base_predicate.referenced_columns() == {"tag"}

    def test_arithmetic_in_predicate(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R WHERE R.a + R.b * 2 > 10")
        assert query.base_predicate.referenced_columns() == {"a", "b"}

    def test_parenthesised_boolean_group(self):
        query = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R WHERE (R.a = 1 OR R.b = 2) AND R.c = 3"
        )
        assert isinstance(query.base_predicate, LogicalOp)


class TestGlobalConstraints:
    def test_count_equality(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R SUCH THAT COUNT(P.*) = 3")
        constraint = query.global_constraints[0]
        assert constraint.sense is ConstraintSenseKeyword.EQ
        assert constraint.lower == 3
        function = constraint.expression.terms[0][1].function
        assert function is AggregateFunction.COUNT

    def test_between_constraint(self):
        query = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R SUCH THAT SUM(P.x) BETWEEN 1 AND 2"
        )
        constraint = query.global_constraints[0]
        assert constraint.sense is ConstraintSenseKeyword.BETWEEN
        assert (constraint.lower, constraint.upper) == (1.0, 2.0)

    def test_strict_inequalities_mapped(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R SUCH THAT SUM(P.x) < 5 AND SUM(P.y) > 1")
        assert query.global_constraints[0].sense is ConstraintSenseKeyword.LE
        assert query.global_constraints[1].sense is ConstraintSenseKeyword.GE

    def test_avg_constraint(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R SUCH THAT AVG(P.x) <= 0.5")
        aggregate = query.global_constraints[0].expression.terms[0][1]
        assert aggregate.function is AggregateFunction.AVG

    def test_aggregate_comparison_normalised(self):
        query = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R SUCH THAT SUM(P.x) >= SUM(P.y)"
        )
        constraint = query.global_constraints[0]
        assert constraint.lower == 0.0
        coefficients = [c for c, _ in constraint.expression.terms]
        assert coefficients == [1.0, -1.0]

    def test_constant_on_left(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R SUCH THAT 5 <= COUNT(P.*)")
        constraint = query.global_constraints[0]
        # 5 - COUNT <= 0  ->  -COUNT <= -5
        assert constraint.sense is ConstraintSenseKeyword.LE
        assert constraint.lower == -5.0
        assert constraint.expression.terms[0][0] == -1.0

    def test_linear_combination(self):
        query = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R SUCH THAT 2 * SUM(P.x) - SUM(P.y) / 2 <= 10"
        )
        coefficients = [c for c, _ in query.global_constraints[0].expression.terms]
        assert coefficients == [2.0, -0.5]

    def test_subquery_aggregate_with_filter(self):
        query = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R "
            "SUCH THAT (SELECT COUNT(*) FROM P WHERE P.carbs > 0) >= 2"
        )
        aggregate = query.global_constraints[0].expression.terms[0][1]
        assert aggregate.function is AggregateFunction.COUNT
        assert aggregate.filter is not None
        assert aggregate.filter.referenced_columns() == {"carbs"}

    def test_subquery_sum_with_filter(self):
        query = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R "
            "SUCH THAT (SELECT SUM(price) FROM P WHERE P.qty >= 2) <= 100"
        )
        aggregate = query.global_constraints[0].expression.terms[0][1]
        assert aggregate.function is AggregateFunction.SUM
        assert aggregate.column == "price"

    def test_filtered_count_comparison(self):
        query = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R SUCH THAT "
            "(SELECT COUNT(*) FROM P WHERE P.carbs > 0) >= "
            "(SELECT COUNT(*) FROM P WHERE P.protein <= 5)"
        )
        terms = query.global_constraints[0].expression.terms
        assert len(terms) == 2
        assert terms[0][0] == 1.0 and terms[1][0] == -1.0

    def test_or_between_constraints_rejected(self):
        with pytest.raises(PaQLSyntaxError, match="disjunctions"):
            parse_paql(
                "SELECT PACKAGE(R) AS P FROM t R SUCH THAT COUNT(P.*) = 1 OR COUNT(P.*) = 2"
            )

    def test_product_of_aggregates_rejected(self):
        with pytest.raises(PaQLSyntaxError, match="non-linear"):
            parse_paql("SELECT PACKAGE(R) AS P FROM t R SUCH THAT SUM(P.x) * SUM(P.y) <= 1")

    def test_not_equal_rejected_in_global(self):
        with pytest.raises(PaQLSyntaxError):
            parse_paql("SELECT PACKAGE(R) AS P FROM t R SUCH THAT COUNT(P.*) <> 3")

    def test_between_with_non_constant_bound_rejected(self):
        with pytest.raises(PaQLSyntaxError, match="constants"):
            parse_paql(
                "SELECT PACKAGE(R) AS P FROM t R SUCH THAT SUM(P.x) BETWEEN SUM(P.y) AND 5"
            )


class TestObjective:
    def test_objective_expression(self):
        query = parse_paql(
            "SELECT PACKAGE(R) AS P FROM t R MAXIMIZE 2 * SUM(P.x) - COUNT(P.*)"
        )
        terms = query.objective.expression.terms
        assert [c for c, _ in terms] == [2.0, -1.0]

    def test_count_objective(self):
        query = parse_paql("SELECT PACKAGE(R) AS P FROM t R MINIMIZE COUNT(P.*)")
        assert query.objective.expression.terms[0][1].function is AggregateFunction.COUNT
