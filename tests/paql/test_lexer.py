"""Tests for the PaQL tokenizer."""

import pytest

from repro.errors import PaQLSyntaxError
from repro.paql.lexer import Token, TokenType, tokenize


def token_values(text: str) -> list[tuple[TokenType, str]]:
    return [(t.type, t.value) for t in tokenize(text)[:-1]]  # drop END


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = token_values("select Package FROM where")
        assert tokens == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "PACKAGE"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_identifiers_keep_case(self):
        tokens = token_values("Recipes saturated_fat")
        assert tokens == [
            (TokenType.IDENTIFIER, "Recipes"),
            (TokenType.IDENTIFIER, "saturated_fat"),
        ]

    def test_numbers(self):
        tokens = token_values("3 2.5 .75 1e3 2.5E-2")
        assert [v for _, v in tokens] == ["3", "2.5", ".75", "1e3", "2.5E-2"]
        assert all(t is TokenType.NUMBER for t, _ in tokens)

    def test_string_literal(self):
        tokens = token_values("'free'")
        assert tokens == [(TokenType.STRING, "free")]

    def test_unterminated_string(self):
        with pytest.raises(PaQLSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_operators(self):
        tokens = token_values("= <> <= >= < > != + - * /")
        values = [v for _, v in tokens]
        assert values == ["=", "<>", "<=", ">=", "<", ">", "<>", "+", "-", "*", "/"]

    def test_punctuation(self):
        tokens = token_values("( ) , .")
        assert [t for t, _ in tokens] == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.DOT,
        ]

    def test_unexpected_character(self):
        with pytest.raises(PaQLSyntaxError, match="unexpected character"):
            tokenize("SELECT @")

    def test_end_token_always_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.END


class TestPositionsAndComments:
    def test_line_tracking(self):
        tokens = tokenize("SELECT\nPACKAGE")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_sql_comment_skipped(self):
        tokens = token_values("SELECT -- this is a comment\n PACKAGE")
        assert [v for _, v in tokens] == ["SELECT", "PACKAGE"]

    def test_error_reports_location(self):
        with pytest.raises(PaQLSyntaxError) as excinfo:
            tokenize("SELECT\n  %")
        assert excinfo.value.line == 2

    def test_matches_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "SELECT", 1, 1)
        assert token.matches_keyword("SELECT")
        assert not token.matches_keyword("FROM")


class TestRealQueries:
    def test_running_example_tokenizes(self):
        text = """
        SELECT PACKAGE(R) AS P
        FROM Recipes R REPEAT 0
        WHERE R.gluten = 'free'
        SUCH THAT COUNT(P.*) = 3
        MINIMIZE SUM(P.saturated_fat)
        """
        tokens = tokenize(text)
        keywords = [t.value for t in tokens if t.type is TokenType.KEYWORD]
        assert "PACKAGE" in keywords
        assert "REPEAT" in keywords
        assert "MINIMIZE" in keywords
        assert tokens[-1].type is TokenType.END

    def test_star_inside_count(self):
        tokens = token_values("COUNT(P.*)")
        assert (TokenType.STAR, "*") in tokens
