"""Tests for the parallel solve plane: SolvePool and the solve-task contract.

Covers the environment-driven default, the serial fallback (no executor is
ever created), ordered results under oversubscription, worker crashes
surfacing as a clean :class:`SolverError` (no hang, pool usable afterwards),
and the determinism contract: ``workers=1`` and a parallel pool produce
bit-identical :class:`SolveTaskResult`s, independent of the process-global
RNG and of warm memo caches.
"""

import os
import pickle

import numpy as np
import pytest

from repro.errors import SolverError
from repro.exec.pool import (
    WORKERS_ENV_VAR,
    SolvePool,
    default_workers,
    shared_pool,
    shutdown_shared_pools,
)
from repro.exec.tasks import (
    SolveTask,
    run_solve_task,
    solver_supports_warm_start,
)
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.ilp.lp_backend import LpBackend
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense
from repro.ilp.status import SolverStatus


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom {x}")


def _hard_exit(x: int) -> int:
    # Simulates a worker killed mid-task (OOM killer, segfault): the process
    # dies without raising, which breaks the executor.
    os._exit(13)


def _refine_like_task(task_id: int, shift: float = 0.0) -> SolveTask:
    """A small knapsack-shaped ILP like one refine group's Q[G_j]."""
    rng = np.random.default_rng(task_id)
    num_vars = 10
    weights = rng.integers(1, 9, num_vars).astype(float)
    gains = rng.integers(1, 20, num_vars).astype(float)
    model = IlpModel(name=f"task_{task_id}")
    for i in range(num_vars):
        model.add_variable(f"t_{i}", 0, 2)
    model.add_constraint(
        {i: w for i, w in enumerate(weights)},
        ConstraintSense.LE,
        weights.sum() * 0.4 + shift,
    )
    model.add_constraint({0: 1.0, num_vars - 1: 1.0}, ConstraintSense.GE, 1)
    model.set_objective(ObjectiveSense.MAXIMIZE, {i: g for i, g in enumerate(gains)})
    solver = BranchAndBoundSolver(
        limits=SolverLimits(relative_gap=1e-9, node_limit=5_000),
        lp_backend=LpBackend.SIMPLEX,
    )
    return SolveTask(task_id=task_id, model=model, solver=solver, rng_seed=task_id)


class TestDefaultWorkers:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert default_workers() == 1
        assert not SolvePool().is_parallel

    def test_env_variable_drives_the_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert default_workers() == 3
        assert SolvePool().workers == 3

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        assert default_workers() == 1
        monkeypatch.setenv(WORKERS_ENV_VAR, "-4")
        assert default_workers() == 1

    def test_invalid_env_raises_a_clean_error(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(SolverError, match="REPRO_WORKERS"):
            default_workers()

    def test_shared_pool_memoizes_per_count(self):
        try:
            assert shared_pool(2) is shared_pool(2)
            assert shared_pool(2) is not shared_pool(3)
        finally:
            shutdown_shared_pools()


class TestSerialFallback:
    def test_serial_pool_never_creates_an_executor(self):
        pool = SolvePool(1)
        assert pool.map(_square, range(5)) == [0, 1, 4, 9, 16]
        assert pool._executor is None

    def test_single_item_batch_stays_in_process_even_when_parallel(self):
        pool = SolvePool(4)
        assert pool.map(_square, [7]) == [49]
        assert pool._executor is None

    def test_mapped_function_exceptions_propagate(self):
        with pytest.raises(ValueError, match="boom 2"):
            SolvePool(1).map(_boom, [2])


class TestParallelExecution:
    def test_oversubscription_returns_ordered_results(self):
        # Far more tasks than workers: results must come back in submission
        # order regardless of completion order.
        with SolvePool(2) as pool:
            assert pool.map(_square, range(17)) == [i * i for i in range(17)]

    def test_worker_crash_raises_solver_error_and_pool_recovers(self):
        with SolvePool(2) as pool:
            with pytest.raises(SolverError, match="worker crashed"):
                pool.map(_hard_exit, range(4))
            # The broken executor was discarded; the pool works again.
            assert pool.map(_square, range(4)) == [0, 1, 4, 9]

    def test_mapped_function_exceptions_propagate_from_workers(self):
        with SolvePool(2) as pool:
            with pytest.raises(ValueError, match="boom"):
                pool.map(_boom, range(4))


class TestSolveTaskDeterminism:
    def test_task_payload_round_trips_through_pickle(self):
        task = _refine_like_task(3)
        clone = pickle.loads(pickle.dumps(task))
        assert clone.task_id == task.task_id
        assert clone.rng_seed == task.rng_seed
        result = run_solve_task(task)
        shipped = run_solve_task(clone)
        assert result.status is shipped.status
        np.testing.assert_array_equal(result.values, shipped.values)
        assert result.objective_value == shipped.objective_value

    def test_serial_and_parallel_results_are_bit_identical(self):
        tasks = [_refine_like_task(i) for i in range(6)]
        serial = SolvePool(1).map(run_solve_task, tasks)
        with SolvePool(2) as pool:
            parallel = pool.map(run_solve_task, tasks)
        assert len(serial) == len(parallel) == len(tasks)
        for task, s, p in zip(tasks, serial, parallel):
            assert s.task_id == p.task_id == task.task_id
            assert s.status is p.status
            assert s.status is SolverStatus.OPTIMAL
            np.testing.assert_array_equal(s.values, p.values)
            assert s.objective_value == p.objective_value
            assert (s.stats.lp_solves, s.stats.simplex_iterations) == (
                p.stats.lp_solves,
                p.stats.simplex_iterations,
            )

    def test_results_are_independent_of_the_global_rng(self):
        task = _refine_like_task(5)
        baseline = run_solve_task(task)
        # Perturb the process-global RNG the way a warm, reused worker might
        # have: the per-task reseed must make the result identical anyway.
        np.random.seed(987654)
        np.random.random(1000)
        perturbed = run_solve_task(_refine_like_task(5))
        assert perturbed.status is baseline.status
        np.testing.assert_array_equal(perturbed.values, baseline.values)
        assert perturbed.objective_value == baseline.objective_value

    def test_repeated_execution_is_stable_despite_warm_caches(self):
        # Re-running the same task in one process exercises the model's memo
        # caches (matrix form, simplex working matrix); results must not
        # drift between a cold and a warm execution.
        task = _refine_like_task(1)
        first = run_solve_task(task)
        second = run_solve_task(task)
        assert first.status is second.status
        np.testing.assert_array_equal(first.values, second.values)
        assert first.objective_value == second.objective_value

    def test_solve_seconds_is_measured_in_the_executing_process(self):
        result = run_solve_task(_refine_like_task(2))
        assert result.solve_seconds > 0.0

    def test_warm_start_support_probe(self):
        simplex = BranchAndBoundSolver(lp_backend=LpBackend.SIMPLEX)
        highs = BranchAndBoundSolver(lp_backend=LpBackend.HIGHS)
        assert solver_supports_warm_start(simplex)
        assert not solver_supports_warm_start(highs)
        assert not solver_supports_warm_start(object())
