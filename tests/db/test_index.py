"""Tests for hash and sorted indexes."""

import numpy as np
import pytest

from repro.dataset.table import Table
from repro.db.index import HashIndex, SortedIndex, build_group_index
from repro.errors import QueryError


@pytest.fixture
def indexed_table() -> Table:
    return Table.from_dict(
        {
            "gid": [0, 1, 0, 2, 1, 0],
            "value": [5.0, 3.0, 8.0, 1.0, 9.0, 2.0],
            "label": ["a", "b", "a", "c", "b", "a"],
        }
    )


class TestHashIndex:
    def test_lookup(self, indexed_table):
        index = HashIndex(indexed_table, "gid")
        assert index.lookup(0).tolist() == [0, 2, 5]
        assert index.lookup(2).tolist() == [3]

    def test_lookup_missing_returns_empty(self, indexed_table):
        index = HashIndex(indexed_table, "gid")
        assert index.lookup(99).size == 0

    def test_string_keys(self, indexed_table):
        index = HashIndex(indexed_table, "label")
        assert index.lookup("b").tolist() == [1, 4]

    def test_contains_and_len(self, indexed_table):
        index = HashIndex(indexed_table, "gid")
        assert 1 in index
        assert 42 not in index
        assert len(index) == 3

    def test_keys(self, indexed_table):
        index = HashIndex(indexed_table, "gid")
        assert sorted(index.keys()) == [0, 1, 2]

    def test_numpy_scalar_lookup(self, indexed_table):
        index = HashIndex(indexed_table, "gid")
        assert index.lookup(np.int64(1)).tolist() == [1, 4]


class TestSortedIndex:
    def test_full_range(self, indexed_table):
        index = SortedIndex(indexed_table, "value")
        assert index.range().tolist() == [0, 1, 2, 3, 4, 5]

    def test_bounded_range(self, indexed_table):
        index = SortedIndex(indexed_table, "value")
        assert index.range(low=3.0, high=8.0).tolist() == [0, 1, 2]

    def test_exclusive_bounds(self, indexed_table):
        index = SortedIndex(indexed_table, "value")
        assert index.range(low=3.0, high=8.0, include_low=False, include_high=False).tolist() == [0]

    def test_invalid_range(self, indexed_table):
        index = SortedIndex(indexed_table, "value")
        with pytest.raises(QueryError):
            index.range(low=5.0, high=1.0)

    def test_min_max(self, indexed_table):
        index = SortedIndex(indexed_table, "value")
        assert index.min() == 1.0
        assert index.max() == 9.0

    def test_min_on_empty_raises(self):
        table = Table.from_dict({"x": []})
        index = SortedIndex(table, "x")
        with pytest.raises(QueryError):
            index.min()

    def test_requires_numeric_column(self, indexed_table):
        with pytest.raises(Exception):
            SortedIndex(indexed_table, "label")


class TestGroupIndex:
    def test_build_group_index(self, indexed_table):
        groups = build_group_index(indexed_table, "gid")
        assert set(groups) == {0, 1, 2}
        assert groups[0].tolist() == [0, 2, 5]
