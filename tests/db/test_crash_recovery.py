"""Crash-recovery property tests: kill the catalog at every named crash
point of every commit and prove recovery lands on the last committed version.

The reference run applies the same seeded operation stream with no faults and
records a full state signature (table columns bitwise, partitioning
signatures, versions) after every commit.  Each matrix cell then replays the
stream against a :class:`crashsim.CrashStorage` planned to die at one crash
point of one commit, recovers from the durable bytes alone, and asserts the
recovered catalog equals the reference signature of the expected version:
the *previous* commit for ``pre-write`` / ``mid-record`` /
``post-write-pre-fsync``, the *crashed* commit itself for ``post-commit``.
"""

from __future__ import annotations

import numpy as np
import pytest

from crashsim import CRASH_POINTS, LOSING_POINTS, CrashStorage, SimulatedCrash, recovered_wal
from repro.core.engine import PackageQueryEngine
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.db.catalog import Database
from repro.db.wal import MemoryLogStorage, WalRecord, WriteAheadLog
from repro.errors import RecoveryError
from repro.paql.builder import query_over
from repro.partition.maintenance import partitioning_signature
from repro.partition.quadtree import QuadTreePartitioner

ATTRIBUTES = ["x", "y"]
NUM_DELTAS = 30


def _base_table(rng: np.random.Generator, rows: int = 15) -> Table:
    return Table(
        Schema.numeric(ATTRIBUTES),
        {
            "x": rng.uniform(1.0, 50.0, rows),
            "y": rng.uniform(1.0, 50.0, rows),
        },
        name="stream",
    )


def _random_delta(table: Table, rng: np.random.Generator):
    """A random, always-valid delta: some inserts, some deletes, never empty."""
    num_insert = int(rng.integers(0, 4))
    max_delete = min(2, max(0, table.num_rows - 4))
    num_delete = int(rng.integers(0, max_delete + 1))
    if num_insert == 0 and num_delete == 0:
        num_insert = 1
    insert = [
        (float(rng.uniform(1.0, 50.0)), float(rng.uniform(1.0, 50.0)))
        for _ in range(num_insert)
    ]
    delete = rng.choice(table.num_rows, size=num_delete, replace=False)
    return table.make_delta(insert=insert, delete=np.sort(delete))


def _ops(seed: int, num_deltas: int = NUM_DELTAS):
    """The seeded operation stream: one closure per commit (one WAL append).

    Every run — reference or crash — replays these in order with its own
    seeded generator, so the deltas are identical across runs by
    construction (the generators consume the same draws in the same order).
    """
    ops = [
        lambda db, rng: db.create_table(_base_table(rng)),
        lambda db, rng: db.register_partitioning(
            "stream", QuadTreePartitioner(4).partition(db.table("stream"), ATTRIBUTES)
        ),
    ]
    ops += [
        lambda db, rng: db.update_table("stream", _random_delta(db.table("stream"), rng))
        for _ in range(num_deltas)
    ]
    return ops


def _signature(db: Database) -> dict:
    """Everything recovery promises, in comparable (bitwise for arrays) form."""
    sig: dict = {}
    for name in db.table_names():
        table = db.table(name)
        sig[name] = {
            "version": table.version,
            "num_rows": table.num_rows,
            "columns": {c: table.column(c).tobytes() for c in table.schema.names},
            "partitionings": {
                label: partitioning_signature(db.partitioning(name, label))
                for label in db.partitioning_labels(name)
            },
        }
    return sig


def _reference_signatures(seed: int, num_deltas: int = NUM_DELTAS) -> list[dict]:
    """``signatures[k]`` = state after the first ``k + 1`` commits."""
    rng = np.random.default_rng(seed)
    db = Database()
    signatures = []
    for op in _ops(seed, num_deltas):
        op(db, rng)
        signatures.append(_signature(db))
    return signatures


def _run_until_crash(seed: int, storage: CrashStorage, num_deltas: int = NUM_DELTAS):
    """Replay the stream on a WAL over ``storage`` until the planned crash."""
    rng = np.random.default_rng(seed)
    db = Database(wal=WriteAheadLog(storage))
    crashed_at = None
    for index, op in enumerate(_ops(seed, num_deltas)):
        try:
            op(db, rng)
        except SimulatedCrash:
            crashed_at = index
            break
    return db, crashed_at


class TestCrashMatrix:
    """Every crash point × every commit of a 30-delta random stream."""

    @pytest.mark.parametrize("seed", [11, 23])
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_recovers_to_last_committed_version(self, seed, point):
        signatures = _reference_signatures(seed)
        num_commits = len(signatures)
        for commit in range(num_commits):
            storage = CrashStorage()
            storage.plan_crash(commit, point)
            live_db, crashed_at = _run_until_crash(seed, storage)
            assert crashed_at == commit, f"crash fired at {crashed_at}, planned {commit}"

            # The write-ahead discipline: a crash anywhere inside the commit
            # leaves the *in-memory* catalog at the previous commit too.
            assert _signature(live_db) == (signatures[commit - 1] if commit else {})

            expected = commit if point == "post-commit" else commit - 1
            recovered = Database.recover(recovered_wal(storage))
            assert _signature(recovered) == (
                signatures[expected] if expected >= 0 else {}
            ), f"seed={seed} point={point} commit={commit}"

    @pytest.mark.parametrize("point", LOSING_POINTS)
    def test_losing_points_leave_no_trace_in_the_log(self, point):
        storage = CrashStorage()
        storage.plan_crash(3, point)
        _run_until_crash(17, storage)
        wal = recovered_wal(storage)
        assert len(wal.records()) == 3
        assert wal.recovered_torn_tail == (point == "mid-record")

    def test_recovered_catalog_survives_a_second_crash(self):
        # Recovery re-attaches the log; keep committing, crash again, recover
        # again — the guarantee must be stable under iteration.
        seed = 29
        storage = CrashStorage()
        storage.plan_crash(6, "mid-record")
        _run_until_crash(seed, storage)
        recovered = Database.recover(recovered_wal(storage))

        table = recovered.table("stream")
        recovered.update_table("stream", table.make_delta(insert=[(2.0, 3.0)]))
        after_second = _signature(recovered)

        again = Database.recover(
            WriteAheadLog(MemoryLogStorage(recovered.wal.storage.read()))
        )
        assert _signature(again) == after_second


class TestCheckpointRecovery:
    def _stream_with_checkpoint(self, tmp_path, crash_after_checkpoint=None):
        seed = 31
        rng = np.random.default_rng(seed)
        storage = CrashStorage()
        db = Database(wal=WriteAheadLog(storage))
        db.create_table(_base_table(rng))
        db.register_partitioning(
            "stream", QuadTreePartitioner(4).partition(db.table("stream"), ATTRIBUTES)
        )
        for _ in range(5):
            db.update_table("stream", _random_delta(db.table("stream"), rng))
        db.checkpoint(tmp_path / "snap")
        if crash_after_checkpoint is not None:
            storage.plan_crash(storage.append_count + crash_after_checkpoint[0],
                               crash_after_checkpoint[1])
        crashed = False
        for _ in range(4):
            try:
                db.update_table("stream", _random_delta(db.table("stream"), rng))
            except SimulatedCrash:
                crashed = True
                break
        return db, storage, crashed

    def test_recovery_replays_only_the_post_checkpoint_tail(self, tmp_path):
        db, storage, _ = self._stream_with_checkpoint(tmp_path)
        wal = recovered_wal(storage)
        # Compacted log: the checkpoint marker plus the four tail updates.
        assert [r.kind for r in wal.records()] == ["checkpoint"] + ["update"] * 4
        recovered = Database.recover(wal, tmp_path / "snap")
        assert _signature(recovered) == _signature(db)

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_in_the_tail_after_a_checkpoint(self, tmp_path, point):
        db, storage, crashed = self._stream_with_checkpoint(
            tmp_path, crash_after_checkpoint=(2, point)
        )
        assert crashed
        recovered = Database.recover(recovered_wal(storage), tmp_path / "snap")
        if point == "post-commit":
            # The commit is durable but was never acknowledged: the crashed
            # process died before applying it in memory.  Recovery must land
            # one commit *ahead* of the dead process's live state — apply the
            # logged delta to the live catalog to compute that expectation.
            last = recovered.wal.records()[-1]
            db.update_table("stream", last.delta, policy=last.policy)
        assert _signature(recovered) == _signature(db)
        expected_tail = 3 if point == "post-commit" else 2
        assert recovered.table("stream").version == 5 + expected_tail

    def test_crash_between_save_and_log_reset(self, tmp_path):
        # The checkpoint's save completed but the log still holds full
        # history: replay must skip every record the snapshot already
        # absorbed (their versions lag it) instead of double-applying.
        seed = 37
        rng = np.random.default_rng(seed)
        storage = CrashStorage()
        db = Database(wal=WriteAheadLog(storage))
        db.create_table(_base_table(rng))
        db.register_partitioning(
            "stream", QuadTreePartitioner(4).partition(db.table("stream"), ATTRIBUTES)
        )
        for _ in range(5):
            db.update_table("stream", _random_delta(db.table("stream"), rng))
        db.save(tmp_path / "snap")  # checkpoint() minus the wal.reset()

        recovered = Database.recover(recovered_wal(storage), tmp_path / "snap")
        assert _signature(recovered) == _signature(db)

    def test_version_gap_raises_instead_of_guessing(self, tmp_path):
        db, storage, _ = self._stream_with_checkpoint(tmp_path)
        wal = recovered_wal(storage)
        # Drop one mid-tail update record: the remaining stream has a hole.
        records = wal.records()
        broken = WriteAheadLog(MemoryLogStorage())
        for record in records[:2] + records[3:]:
            broken.append(record)
        with pytest.raises(RecoveryError, match="cannot replay"):
            Database.recover(
                WriteAheadLog(MemoryLogStorage(broken.storage.read())), tmp_path / "snap"
            )

    def test_update_for_unknown_table_raises(self):
        table = _base_table(np.random.default_rng(0))
        delta = table.make_delta(insert=[(1.0, 1.0)])
        wal = WriteAheadLog(MemoryLogStorage())
        wal.append(WalRecord.update("ghost", delta, "maintain"))
        with pytest.raises(RecoveryError, match="unknown table"):
            Database.recover(WriteAheadLog(MemoryLogStorage(wal.storage.read())))

    def test_checkpoint_marker_against_wrong_snapshot_raises(self, tmp_path):
        db, storage, _ = self._stream_with_checkpoint(tmp_path)
        # Recovering the compacted log *without* the snapshot directory the
        # checkpoint wrote means the marker's versions cannot be satisfied.
        with pytest.raises(RecoveryError, match="checkpoint marker"):
            Database.recover(recovered_wal(storage))


class TestCacheAcrossRecovery:
    """A registered result cache must never serve a stale answer after
    recovery, and a re-queried recovered catalog must reproduce the
    reference cache contents exactly."""

    QUERY = (
        query_over("stream")
        .count_between(1, 2)
        .minimize_sum("x")
        .build()
    )

    def _round(self, engine: PackageQueryEngine, rng: np.random.Generator) -> None:
        engine.update_table(
            "stream", _random_delta(engine.table("stream"), rng)
        )
        engine.execute(self.QUERY, method="direct", cache="use")

    @pytest.mark.parametrize("point", CRASH_POINTS)
    @pytest.mark.parametrize("crash_round", [1, 4])
    def test_no_stale_cache_hit_after_recovery(self, point, crash_round):
        seed = 41

        def build(storage=None):
            rng = np.random.default_rng(seed)
            wal = WriteAheadLog(storage) if storage is not None else None
            db = Database(wal=wal) if wal is not None else Database()
            engine = PackageQueryEngine(database=db)
            engine.register_table(_base_table(rng))
            engine.database.register_partitioning(
                "stream",
                QuadTreePartitioner(4).partition(engine.table("stream"), ATTRIBUTES),
            )
            return engine, rng

        # Reference: no faults; remember state + cache contents per round.
        reference, ref_rng = build()
        ref_states = []
        for _ in range(5):
            self._round(reference, ref_rng)
            ref_states.append(
                (_signature(reference.database), reference.cache.entries_snapshot())
            )

        # Crash run: same stream, die inside the update of `crash_round`.
        storage = CrashStorage()
        engine, rng = build(storage)
        storage.plan_crash(2 + crash_round, point)  # appends 0-1 are setup
        completed = 0
        with pytest.raises(SimulatedCrash):
            for _ in range(5):
                self._round(engine, rng)
                completed += 1
        assert completed == crash_round

        # The cache survives the crash (an external cache service would);
        # recovery registers it so the replayed update stream flows through
        # its invalidation path before anything is served from it.
        surviving_cache = engine.cache
        recovered = Database.recover(recovered_wal(storage), caches=[surviving_cache])
        # For post-commit the crashed round's update is durable, so recovery
        # lands on the *next* round's reference state (the delta streams are
        # identical by seeding); for the losing points, on the crashed
        # round's predecessor.
        expected_round = crash_round + 1 if point == "post-commit" else crash_round
        expected_state, expected_entries = ref_states[expected_round - 1]
        assert _signature(recovered) == expected_state

        engine2 = PackageQueryEngine(database=recovered, cache=surviving_cache)
        served = engine2.execute(self.QUERY, method="direct", cache="use")
        ground_truth = engine2.execute(self.QUERY, method="direct", cache="bypass")
        assert served.objective == ground_truth.objective
        assert (
            served.package.as_multiplicity_map()
            == ground_truth.package.as_multiplicity_map()
        )
        # Every surviving entry is anchored to the recovered version — an
        # entry claiming any other version would be the stale-hit bug.
        current = recovered.table("stream").version
        for entry in surviving_cache.entries_snapshot():
            assert entry["table_version"] == current
        # Re-querying the recovered catalog reproduces the reference cache
        # contents bit for bit (deterministic solver over bitwise-equal
        # tables) — including for post-commit, where the reference stored
        # its entry after the very update the crash run never acknowledged.
        assert surviving_cache.entries_snapshot() == expected_entries
