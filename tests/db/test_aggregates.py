"""Tests for aggregate functions."""

import math

import numpy as np
import pytest

from repro.db.aggregates import AggregateFunction, AggregateSpec, aggregate, aggregate_groups
from repro.errors import ExpressionError


class TestAggregateFunction:
    def test_parse(self):
        assert AggregateFunction.parse("sum") is AggregateFunction.SUM
        assert AggregateFunction.parse("Count") is AggregateFunction.COUNT

    def test_parse_unknown(self):
        with pytest.raises(ExpressionError):
            AggregateFunction.parse("median")

    def test_linearity(self):
        assert AggregateFunction.SUM.is_linear
        assert AggregateFunction.COUNT.is_linear
        assert AggregateFunction.AVG.is_linear
        assert not AggregateFunction.MIN.is_linear
        assert not AggregateFunction.MAX.is_linear


class TestAggregateSpec:
    def test_count_star_allowed(self):
        spec = AggregateSpec(AggregateFunction.COUNT)
        assert spec.output_name == "count_all"

    def test_sum_requires_column(self):
        with pytest.raises(ExpressionError):
            AggregateSpec(AggregateFunction.SUM)

    def test_alias_used_in_output_name(self):
        spec = AggregateSpec(AggregateFunction.SUM, "kcal", alias="total_kcal")
        assert spec.output_name == "total_kcal"


class TestAggregate:
    def test_count(self, small_numeric_table):
        assert aggregate(small_numeric_table, AggregateSpec(AggregateFunction.COUNT)) == 5.0

    def test_sum(self, small_numeric_table):
        assert aggregate(small_numeric_table, AggregateSpec(AggregateFunction.SUM, "a")) == 15.0

    def test_avg(self, small_numeric_table):
        assert aggregate(small_numeric_table, AggregateSpec(AggregateFunction.AVG, "a")) == 3.0

    def test_min_max(self, small_numeric_table):
        assert aggregate(small_numeric_table, AggregateSpec(AggregateFunction.MIN, "b")) == 10.0
        assert aggregate(small_numeric_table, AggregateSpec(AggregateFunction.MAX, "b")) == 50.0

    def test_weighted_count(self, small_numeric_table):
        weights = np.array([2, 0, 1, 0, 3], dtype=float)
        assert aggregate(small_numeric_table, AggregateSpec(AggregateFunction.COUNT), weights) == 6.0

    def test_weighted_sum_is_multiset_semantics(self, small_numeric_table):
        weights = np.array([2, 0, 1, 0, 0], dtype=float)
        # 2 copies of a=1 plus 1 copy of a=3.
        assert aggregate(small_numeric_table, AggregateSpec(AggregateFunction.SUM, "a"), weights) == 5.0

    def test_weighted_avg(self, small_numeric_table):
        weights = np.array([1, 0, 0, 0, 1], dtype=float)
        assert aggregate(small_numeric_table, AggregateSpec(AggregateFunction.AVG, "a"), weights) == 3.0

    def test_weighted_min_ignores_zero_weight_rows(self, small_numeric_table):
        weights = np.array([0, 0, 1, 1, 1], dtype=float)
        assert aggregate(small_numeric_table, AggregateSpec(AggregateFunction.MIN, "a"), weights) == 3.0

    def test_avg_of_empty_is_nan(self, small_numeric_table):
        weights = np.zeros(5)
        assert math.isnan(aggregate(small_numeric_table, AggregateSpec(AggregateFunction.AVG, "a"), weights))

    def test_bad_weights_shape(self, small_numeric_table):
        with pytest.raises(ExpressionError):
            aggregate(small_numeric_table, AggregateSpec(AggregateFunction.SUM, "a"), np.ones(3))


class TestAggregateGroups:
    def test_count_per_group(self):
        group_ids = np.array([0, 0, 1, 2, 2, 2])
        counts = aggregate_groups(np.zeros(6), group_ids, AggregateFunction.COUNT, 3)
        assert counts.tolist() == [2.0, 1.0, 3.0]

    def test_sum_per_group(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        group_ids = np.array([0, 0, 1, 2, 2, 2])
        sums = aggregate_groups(values, group_ids, AggregateFunction.SUM, 3)
        assert sums.tolist() == [3.0, 3.0, 15.0]

    def test_avg_per_group_with_empty_group(self):
        values = np.array([2.0, 4.0])
        group_ids = np.array([0, 0])
        averages = aggregate_groups(values, group_ids, AggregateFunction.AVG, 2)
        assert averages[0] == 3.0
        assert math.isnan(averages[1])

    def test_min_max_per_group(self):
        values = np.array([5.0, 1.0, 7.0, 2.0])
        group_ids = np.array([0, 0, 1, 1])
        minimums = aggregate_groups(values, group_ids, AggregateFunction.MIN, 2)
        maximums = aggregate_groups(values, group_ids, AggregateFunction.MAX, 2)
        assert minimums.tolist() == [1.0, 2.0]
        assert maximums.tolist() == [5.0, 7.0]
