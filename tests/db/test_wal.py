"""Unit tests for the write-ahead log: framing, torn tails, storage backends."""

import pickle

import numpy as np
import pytest

from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.db.wal import (
    FileLogStorage,
    MemoryLogStorage,
    WalRecord,
    WriteAheadLog,
    decode_stream,
    encode_record,
)
from repro.errors import WalError


def _table(rows=4, name="t", version=0):
    values = np.arange(rows, dtype=float)
    return Table(
        Schema.numeric(["a", "b"]),
        {"a": values, "b": values * 10.0},
        name=name,
        version=version,
    )


def _update_record(table=None):
    table = table if table is not None else _table()
    delta = table.make_delta(insert=[(99.0, 990.0)], delete=[0])
    return WalRecord.update(table.name, delta, "maintain")


class TestRecordFraming:
    def test_encode_decode_round_trip(self):
        records = [
            WalRecord.create("t", _table()),
            _update_record(),
            WalRecord.drop("t"),
            WalRecord.checkpoint({"t": 3}),
        ]
        data = b"".join(encode_record(r) for r in records)
        decoded, valid, torn = decode_stream(data)
        assert not torn
        assert valid == len(data)
        assert [r.kind for r in decoded] == ["create", "update", "drop", "checkpoint"]
        assert decoded[3].versions == {"t": 3}

    def test_empty_stream(self):
        assert decode_stream(b"") == ([], 0, False)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WalError, match="unknown WAL record kind"):
            WalRecord(kind="vacuum")

    @pytest.mark.parametrize("cut", [1, 4, 11, 12, 40])
    def test_torn_tail_truncated_at_any_byte(self, cut):
        first = encode_record(WalRecord.drop("t"))
        second = encode_record(_update_record())
        assert cut < len(second)
        decoded, valid, torn = decode_stream(first + second[:cut])
        assert torn
        assert valid == len(first)
        assert [r.kind for r in decoded] == ["drop"]

    def test_corrupt_crc_ends_replay(self):
        first = encode_record(WalRecord.drop("t"))
        second = bytearray(encode_record(WalRecord.drop("u")))
        second[-1] ^= 0xFF  # flip a payload byte; CRC no longer verifies
        decoded, valid, torn = decode_stream(first + bytes(second))
        assert torn
        assert valid == len(first)
        assert len(decoded) == 1

    def test_corrupt_magic_ends_replay(self):
        frame = bytearray(encode_record(WalRecord.drop("t")))
        frame[0] = ord("X")
        decoded, valid, torn = decode_stream(bytes(frame))
        assert (decoded, valid, torn) == ([], 0, True)

    def test_foreign_payload_of_framed_length_ends_replay(self):
        # A frame whose CRC verifies but whose payload is not a WalRecord
        # (someone else's pickle) must not be replayed as a commit.
        import struct
        import zlib

        payload = pickle.dumps({"not": "a record"})
        frame = struct.pack(">4sII", b"RWAL", len(payload), zlib.crc32(payload)) + payload
        decoded, valid, torn = decode_stream(frame)
        assert (decoded, valid, torn) == ([], 0, True)


class TestWriteAheadLog:
    def test_lsn_sequencing(self):
        wal = WriteAheadLog(MemoryLogStorage())
        committed = [wal.append(WalRecord.drop(f"t{i}")) for i in range(3)]
        assert [r.lsn for r in committed] == [0, 1, 2]
        assert [r.lsn for r in wal.records()] == [0, 1, 2]
        assert wal.next_lsn == 3
        assert len(wal) == 3

    def test_append_is_durable_immediately(self):
        storage = MemoryLogStorage()
        wal = WriteAheadLog(storage)
        wal.append(WalRecord.drop("t"))
        assert storage.buffered == b""  # synced, not just buffered
        records, _, torn = decode_stream(storage.durable)
        assert not torn and len(records) == 1

    def test_reopen_resumes_lsn_and_truncates_tear(self):
        storage = MemoryLogStorage()
        wal = WriteAheadLog(storage)
        wal.append(WalRecord.drop("a"))
        wal.append(WalRecord.drop("b"))
        torn = storage.durable + encode_record(WalRecord.drop("c"))[:-3]
        reopened = WriteAheadLog(MemoryLogStorage(torn))
        assert reopened.recovered_torn_tail
        assert [r.table_name for r in reopened.records()] == ["a", "b"]
        assert reopened.append(WalRecord.drop("d")).lsn == 2
        assert not WriteAheadLog(MemoryLogStorage(reopened.storage.read())).recovered_torn_tail

    def test_reset_compacts_to_given_records(self):
        wal = WriteAheadLog(MemoryLogStorage())
        for i in range(4):
            wal.append(WalRecord.drop(f"t{i}"))
        wal.reset([WalRecord.checkpoint({"t": 4})])
        records = wal.records()
        assert [r.kind for r in records] == ["checkpoint"]
        assert records[0].lsn == 4  # LSNs keep advancing across compaction
        assert wal.append(WalRecord.drop("u")).lsn == 5

    def test_closed_log_refuses_appends(self):
        wal = WriteAheadLog(MemoryLogStorage())
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append(WalRecord.drop("t"))
        with pytest.raises(WalError, match="closed"):
            wal.reset()


class TestFileLogStorage:
    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "wal" / "log.wal"
        wal = WriteAheadLog(path)  # parent directory is created on demand
        wal.append(WalRecord.drop("a"))
        wal.append(_update_record())
        wal.close()

        reopened = WriteAheadLog(FileLogStorage(path))
        assert [r.kind for r in reopened.records()] == ["drop", "update"]
        assert reopened.next_lsn == 2
        reopened.close()

    def test_torn_file_tail_truncated_on_open(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path)
        wal.append(WalRecord.drop("a"))
        wal.close()
        with open(path, "ab") as handle:
            handle.write(encode_record(WalRecord.drop("b"))[:-2])

        reopened = WriteAheadLog(path)
        assert reopened.recovered_torn_tail
        assert [r.table_name for r in reopened.records()] == ["a"]
        # The truncation is physical: the file is back on a frame boundary.
        records, _, torn = decode_stream(path.read_bytes())
        assert not torn and len(records) == 1
        reopened.close()

    def test_reset_replaces_file_atomically(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path)
        for i in range(3):
            wal.append(WalRecord.drop(f"t{i}"))
        wal.reset()
        assert path.read_bytes() == b""
        assert not path.with_name("log.wal.tmp").exists()
        wal.close()


class TestMemoryLogStorage:
    def test_buffered_bytes_only_durable_after_sync(self):
        storage = MemoryLogStorage()
        storage.append(b"abc")
        assert storage.read() == b""
        storage.sync()
        assert storage.read() == b"abc"
        storage.append(b"def")
        storage.reset(b"xyz")
        assert (storage.durable, storage.buffered) == (b"xyz", b"")
