"""Snapshot-consistent reads: pinned versions, release semantics, execution."""

import pickle

import numpy as np
import pytest

from repro.core.engine import PackageQueryEngine
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.db.catalog import Database
from repro.db.snapshot import PinnedTable, SnapshotHandle
from repro.errors import SnapshotError
from repro.paql.builder import query_over
from repro.partition.quadtree import QuadTreePartitioner

ATTRS = ["x", "y"]


def _table(rows=12, seed=5, name="stream"):
    rng = np.random.default_rng(seed)
    return Table(
        Schema.numeric(ATTRS),
        {"x": rng.uniform(1.0, 50.0, rows), "y": rng.uniform(1.0, 50.0, rows)},
        name=name,
    )


@pytest.fixture
def db():
    db = Database()
    db.create_table(_table())
    db.register_partitioning(
        "stream", QuadTreePartitioner(4).partition(db.table("stream"), ATTRS)
    )
    return db


def _bump(db, rows=((3.0, 4.0),)):
    db.update_table("stream", db.table("stream").make_delta(insert=list(rows)))


class TestSnapshotPinning:
    def test_pinned_view_survives_commits(self, db):
        snap = db.snapshot()
        pinned = snap.table("stream")
        for _ in range(3):
            _bump(db)
        assert db.table("stream").version == 3
        assert snap.table("stream") is pinned
        assert snap.table("stream").version == 0
        assert snap.versions() == {"stream": 0}
        # The pinned partitioning still describes the pinned version.
        assert snap.partitioning("stream").version == 0
        assert db.partitioning("stream").version == 3

    def test_two_snapshots_pin_different_moments(self, db):
        old = db.snapshot()
        _bump(db)
        new = db.snapshot()
        assert (old.table("stream").version, new.table("stream").version) == (0, 1)
        assert db.snapshots.pinned_versions("stream") == [0, 1]
        old.release()
        assert db.snapshots.pinned_versions("stream") == [1]
        new.release()
        assert db.snapshots.active_count == 0

    def test_acquire_subset_of_tables(self, db):
        db.create_table(_table(name="other", seed=9))
        snap = db.snapshot(names=["other"])
        assert snap.table_names() == ["other"]
        with pytest.raises(SnapshotError, match="not pinned"):
            snap.table("stream")
        snap.release()

    def test_stale_partitioning_not_pinned(self, db):
        # Leave the partitioning behind: it now describes version 0 while the
        # table moves to 1, so a snapshot of version 1 must exclude it.
        db.update_table(
            "stream", db.table("stream").make_delta(insert=[(1.0, 2.0)]), policy="stale"
        )
        snap = db.snapshot()
        assert not snap.has_partitioning("stream")
        with pytest.raises(SnapshotError, match="missing or stale"):
            snap.partitioning("stream")
        snap.release()


class TestReleaseSemantics:
    def test_reads_after_release_raise(self, db):
        snap = db.snapshot()
        snap.release()
        assert snap.released
        with pytest.raises(SnapshotError, match="released"):
            snap.table("stream")
        snap.release()  # idempotent

    def test_context_manager_releases(self, db):
        with db.snapshot() as snap:
            assert db.snapshots.active_count == 1
            assert snap.table("stream").version == 0
        assert snap.released
        assert db.snapshots.active_count == 0

    def test_manager_forgets_released_handles(self, db):
        handles = [db.snapshot() for _ in range(3)]
        handles[1].release()
        assert [h.snapshot_id for h in db.snapshots.active_handles()] == [
            handles[0].snapshot_id,
            handles[2].snapshot_id,
        ]


class TestSnapshotExecution:
    QUERY = query_over("stream").count_between(1, 2).minimize_sum("x").build()

    @pytest.fixture
    def engine(self, db):
        return PackageQueryEngine(database=db)

    def test_result_is_computed_over_the_pinned_version(self, engine):
        before = engine.execute(self.QUERY, method="direct", cache="bypass")
        snap = engine.snapshot()
        # Delete every original row; the live answer changes completely.
        survivors = [(100.0 + i, 100.0) for i in range(3)]
        engine.update_table(
            "stream",
            engine.table("stream").make_delta(
                insert=survivors, delete=np.arange(engine.table("stream").num_rows)
            ),
        )
        live = engine.execute(self.QUERY, method="direct", cache="bypass")
        pinned = engine.execute(self.QUERY, method="direct", snapshot=snap)
        assert pinned.objective == before.objective
        assert (
            pinned.package.as_multiplicity_map() == before.package.as_multiplicity_map()
        )
        assert live.objective != pinned.objective
        assert pinned.details["snapshot"] == {
            "id": snap.snapshot_id,
            "table_version": 0,
        }
        snap.release()

    def test_snapshot_execution_bypasses_the_cache(self, engine):
        warm = engine.execute(self.QUERY, method="direct", cache="use")
        assert warm.details["cache"]["status"] == "miss"
        with engine.snapshot() as snap:
            result = engine.execute(self.QUERY, method="direct", snapshot=snap, cache="use")
        assert result.details["cache"]["status"] == "bypass"
        assert "snapshot" in result.details["cache"]["reason"]
        # The snapshot run neither served from nor polluted the cache.
        assert len(engine.cache) == 1
        again = engine.execute(self.QUERY, method="direct", cache="use")
        assert again.details["cache"]["status"] == "hit"

    def test_sketchrefine_uses_the_pinned_partitioning(self, engine):
        snap = engine.snapshot()
        _bump(engine.database)
        result = engine.execute(self.QUERY, method="sketchrefine", snapshot=snap)
        assert result.details["snapshot"]["table_version"] == 0
        assert result.feasible
        snap.release()

    def test_released_snapshot_refused(self, engine):
        snap = engine.snapshot()
        snap.release()
        with pytest.raises(SnapshotError, match="released"):
            engine.execute(self.QUERY, method="direct", snapshot=snap)


class TestHandlePickling:
    def test_round_trip_detaches_the_manager(self, db):
        snap = db.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.versions() == snap.versions()
        assert clone.table("stream").equals(snap.table("stream"))
        assert clone.partitioning("stream").version == 0
        # The clone is detached: releasing it must not touch the live
        # manager, which still tracks the original handle.
        clone.release()
        assert db.snapshots.active_count == 1
        snap.release()

    def test_pinned_table_round_trip(self, db):
        pin = db.snapshot().pins["stream"]
        clone = pickle.loads(pickle.dumps(pin))
        assert isinstance(clone, PinnedTable)
        assert clone.version == pin.version
        assert clone.table.equals(pin.table)
        assert sorted(clone.partitionings) == sorted(pin.partitionings)
